"""Repo-root pytest bootstrap: make ``src/`` importable.

Lets ``python -m pytest`` work from a fresh checkout without the
``PYTHONPATH=src`` incantation (which also still works).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
