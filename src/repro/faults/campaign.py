"""Fault-injection campaigns: model debugger vs code debugger.

For every injected fault the campaign runs the same scenario twice:

* **model level** — GMDF with requirement monitors attached to the engine's
  command stream (plus crash detection);
* **code level** — the source debugger with up to four hardware watchpoints
  carrying value-range predicates (plus crash detection). The watchpoints
  deliberately have no sequencing knowledge: that is what a code-level
  debugger can express.

Detection and detection latency are recorded per fault; aggregation by
category reproduces the paper's claim that the model debugger's "primary
job" — design errors — is where it pulls ahead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.codegen.instrument import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.reflect import system_to_model
from repro.comdes.system import System
from repro.comm.channel import ActiveChannel, CompositeChannel
from repro.comm.rs232 import Rs232Link
from repro.debugger.gdb import SourceDebugger
from repro.engine.checks import MonitorSuite
from repro.engine.engine import DebuggerEngine
from repro.errors import TargetFault
from repro.faults.design import DESIGN_FAULT_KINDS, FaultDescriptor, inject_design_fault
from repro.faults.implementation import IMPL_FAULT_KINDS, inject_implementation_fault
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.mapping import default_comdes_table
from repro.rtos.kernel import DtmKernel
from repro.sim.kernel import Simulator
from repro.target.firmware import FirmwareImage

#: code-level watch: (symbol, predicate-or-None, description)
CodeWatchSpec = Tuple[str, Optional[Callable[[int], bool]], str]


class FaultOutcome:
    """Detection result of one fault under both debuggers."""

    __slots__ = ("fault", "model_detected", "model_latency_us", "model_how",
                 "code_detected", "code_latency_us", "code_how")

    def __init__(self, fault: FaultDescriptor,
                 model_detected: bool, model_latency_us: Optional[int],
                 model_how: str,
                 code_detected: bool, code_latency_us: Optional[int],
                 code_how: str) -> None:
        self.fault = fault
        self.model_detected = model_detected
        self.model_latency_us = model_latency_us
        self.model_how = model_how
        self.code_detected = code_detected
        self.code_latency_us = code_latency_us
        self.code_how = code_how

    def __repr__(self) -> str:
        return (f"<FaultOutcome {self.fault.fault_id} "
                f"model={'HIT' if self.model_detected else 'miss'} "
                f"code={'HIT' if self.code_detected else 'miss'}>")


class CampaignResult:
    """Aggregated campaign outcomes."""

    def __init__(self, outcomes: Sequence[FaultOutcome],
                 false_positives: int) -> None:
        self.outcomes = list(outcomes)
        self.false_positives = false_positives

    def of_category(self, category: str) -> List[FaultOutcome]:
        """Outcomes of one fault category."""
        return [o for o in self.outcomes if o.fault.category == category]

    def detection_rate(self, category: str, debugger: str) -> Optional[float]:
        """Fraction detected: debugger is 'model' or 'code'."""
        selected = self.of_category(category)
        if not selected:
            return None
        flag = ("model_detected" if debugger == "model" else "code_detected")
        return sum(getattr(o, flag) for o in selected) / len(selected)

    def mean_latency_us(self, category: str, debugger: str) -> Optional[float]:
        """Mean detection latency among detected faults."""
        attr = ("model_latency_us" if debugger == "model"
                else "code_latency_us")
        values = [getattr(o, attr) for o in self.of_category(category)
                  if getattr(o, attr) is not None]
        if not values:
            return None
        return sum(values) / len(values)

    def summary_rows(self) -> List[Dict[str, object]]:
        """Per-category summary for table printing."""
        rows = []
        for category in ("design", "implementation"):
            if not self.of_category(category):
                continue
            rows.append({
                "category": category,
                "faults": len(self.of_category(category)),
                "model_rate": self.detection_rate(category, "model"),
                "code_rate": self.detection_rate(category, "code"),
                "model_latency_us": self.mean_latency_us(category, "model"),
                "code_latency_us": self.mean_latency_us(category, "code"),
            })
        return rows


def _run_model_debugger(system: System, firmware: FirmwareImage,
                        monitor_factory: Callable[[], MonitorSuite],
                        duration_us: int) -> Tuple[bool, Optional[int], str]:
    """Run GMDF over the faulty target; returns (detected, latency, how)."""
    sim = Simulator()
    kernel = DtmKernel(system, firmware, sim=sim, latched=True)
    composite = CompositeChannel()
    for node in system.nodes():
        channel = ActiveChannel(sim, kernel.board_of(node), firmware,
                                link=Rs232Link())
        kernel.add_job_hook(node, lambda actor, t, ch=channel: ch.begin_job(t))
        composite.add(channel)
    model = system_to_model(system)
    gdm = AbstractionEngine(default_comdes_table(model.metamodel)).build(model)
    engine = DebuggerEngine(gdm, channel=composite, capture_frames=False)
    suite = monitor_factory()
    suite.attach(engine)
    try:
        kernel.run(duration_us)
    except TargetFault:
        return True, sim.now, "crash"
    if suite.any_violation:
        return True, suite.first_violation_time(), "monitor"
    return False, None, ""


def _run_code_debugger(system: System, firmware: FirmwareImage,
                       watch_specs: Sequence[CodeWatchSpec],
                       duration_us: int) -> Tuple[bool, Optional[int], str]:
    """Run the source-debugger baseline; returns (detected, latency, how)."""
    sim = Simulator()
    kernel = DtmKernel(system, firmware, sim=sim, latched=True)
    hits: List[int] = []
    for node in system.nodes():
        debugger = SourceDebugger(kernel.board_of(node), firmware)
        installed = 0
        for symbol, predicate, description in watch_specs:
            if installed >= 4:
                break
            if not firmware.symbols.has(symbol):
                continue
            debugger.watch(symbol, predicate, description)
            installed += 1
        debugger.on_hit = lambda hit, s=sim: hits.append(s.now)
    try:
        kernel.run(duration_us)
    except TargetFault:
        return True, sim.now, "crash"
    if hits:
        return True, min(hits), "watch"
    return False, None, ""


def run_campaign(
    system_factory: Callable[[], System],
    monitor_factory: Callable[[], MonitorSuite],
    code_watch_specs: Sequence[CodeWatchSpec],
    design_kinds: Sequence[str] = tuple(DESIGN_FAULT_KINDS),
    impl_kinds: Sequence[str] = tuple(IMPL_FAULT_KINDS),
    seeds: Sequence[int] = (1, 2, 3),
    duration_us: int = 3_000_000,
    plan: Optional[InstrumentationPlan] = None,
) -> CampaignResult:
    """Inject faults, run both debuggers on each, aggregate detection."""
    plan = plan if plan is not None else InstrumentationPlan.full()
    outcomes: List[FaultOutcome] = []

    # Control run: the fault-free system must trigger nothing.
    pristine = system_factory()
    pristine_fw = generate_firmware(pristine, plan)
    detected, _, _ = _run_model_debugger(pristine, pristine_fw,
                                         monitor_factory, duration_us)
    code_detected, _, _ = _run_code_debugger(pristine, pristine_fw,
                                             code_watch_specs, duration_us)
    false_positives = int(detected) + int(code_detected)

    for kind in design_kinds:
        for seed in seeds:
            mutant, fault = inject_design_fault(system_factory(), kind, seed)
            if mutant is None:
                continue
            firmware = generate_firmware(mutant, plan)
            model_result = _run_model_debugger(mutant, firmware,
                                               monitor_factory, duration_us)
            code_result = _run_code_debugger(mutant, firmware,
                                             code_watch_specs, duration_us)
            outcomes.append(FaultOutcome(fault, *model_result, *code_result))

    for kind in impl_kinds:
        for seed in seeds:
            base = system_factory()
            base_fw = generate_firmware(base, plan)
            mutant_fw, fault = inject_implementation_fault(base_fw, kind, seed)
            if mutant_fw is None:
                continue
            model_result = _run_model_debugger(base, mutant_fw,
                                               monitor_factory, duration_us)
            code_result = _run_code_debugger(base, mutant_fw,
                                             code_watch_specs, duration_us)
            outcomes.append(FaultOutcome(fault, *model_result, *code_result))

    return CampaignResult(outcomes, false_positives)
