"""Fault-injection campaigns: model debugger vs code debugger.

For every injected fault the campaign runs the same scenario twice:

* **model level** — GMDF with requirement monitors attached to the engine's
  command stream (plus crash detection);
* **code level** — the source debugger with up to four hardware watchpoints
  carrying value-range predicates (plus crash detection). The watchpoints
  deliberately have no sequencing knowledge: that is what a code-level
  debugger can express.

Detection and detection latency are recorded per fault; aggregation by
category reproduces the paper's claim that the model debugger's "primary
job" — design errors — is where it pulls ahead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.codegen.instrument import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.reflect import system_to_model
from repro.comdes.system import System
from repro.comm.channel import ActiveChannel, CompositeChannel
from repro.comm.jtag import JtagProbe, TapController
from repro.comm.link import JtagLink, write_patches
from repro.comm.rs232 import Rs232Link
from repro.debugger.gdb import SourceDebugger
from repro.engine.checks import MonitorSuite
from repro.engine.engine import DebuggerEngine
from repro.engine.trace import ExecutionTrace
from repro.errors import FleetError, TargetFault
from repro.faults.design import DESIGN_FAULT_KINDS, FaultDescriptor, inject_design_fault
from repro.faults.implementation import (
    IMPL_FAULT_KINDS,
    inject_implementation_fault,
    split_memory_patches,
)
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.mapping import default_comdes_table
from repro.rtos.kernel import DtmKernel
from repro.sim.kernel import Simulator
from repro.target.board import DebugPort
from repro.target.firmware import FirmwareImage

#: code-level watch: (symbol, predicate-or-None, description)
CodeWatchSpec = Tuple[str, Optional[Callable[[int], bool]], str]

#: watch specs, given directly or as a zero-argument factory (the factory
#: form is what the process-pool runner ships to workers)
WatchSpecsInput = Union[Sequence[CodeWatchSpec],
                        Callable[[], Sequence[CodeWatchSpec]]]

#: memory patches applied over the debug link before the run starts
MemoryPatches = Sequence[Tuple[int, int]]


class FaultOutcome:
    """Detection result of one fault under both debuggers.

    ``classified_as`` carries the differential oracle's verdict
    (:func:`repro.engine.classify.classify_bug`) for faults the model
    debugger detected: ``"design"``, ``"implementation"`` or
    ``"consistent"``; empty when the fault went undetected (nothing to
    classify).
    """

    __slots__ = ("fault", "model_detected", "model_latency_us", "model_how",
                 "code_detected", "code_latency_us", "code_how",
                 "classified_as")

    def __init__(self, fault: FaultDescriptor,
                 model_detected: bool, model_latency_us: Optional[int],
                 model_how: str,
                 code_detected: bool, code_latency_us: Optional[int],
                 code_how: str, classified_as: str = "") -> None:
        self.fault = fault
        self.model_detected = model_detected
        self.model_latency_us = model_latency_us
        self.model_how = model_how
        self.code_detected = code_detected
        self.code_latency_us = code_latency_us
        self.code_how = code_how
        self.classified_as = classified_as

    def __repr__(self) -> str:
        return (f"<FaultOutcome {self.fault.fault_id} "
                f"model={'HIT' if self.model_detected else 'miss'} "
                f"code={'HIT' if self.code_detected else 'miss'}>")


class CampaignResult:
    """Aggregated campaign outcomes.

    ``failures`` is empty for inline campaigns; a lenient fleet merge
    (``merge_results(..., strict=False)``) parks its structured
    worker-side failures there so both code paths return the same shape.
    """

    def __init__(self, outcomes: Sequence[FaultOutcome],
                 false_positives: int) -> None:
        self.outcomes = list(outcomes)
        self.false_positives = false_positives
        self.failures: List[object] = []
        #: merged campaign TraceStore when the run collected traces
        self.trace_store = None

    def of_category(self, category: str) -> List[FaultOutcome]:
        """Outcomes of one fault category."""
        return [o for o in self.outcomes if o.fault.category == category]

    def detection_rate(self, category: str, debugger: str) -> Optional[float]:
        """Fraction detected: debugger is 'model' or 'code'."""
        selected = self.of_category(category)
        if not selected:
            return None
        flag = ("model_detected" if debugger == "model" else "code_detected")
        return sum(getattr(o, flag) for o in selected) / len(selected)

    def mean_latency_us(self, category: str, debugger: str) -> Optional[float]:
        """Mean detection latency among detected faults."""
        attr = ("model_latency_us" if debugger == "model"
                else "code_latency_us")
        values = [getattr(o, attr) for o in self.of_category(category)
                  if getattr(o, attr) is not None]
        if not values:
            return None
        return sum(values) / len(values)

    def classification_accuracy(self,
                                category: Optional[str] = None
                                ) -> Optional[float]:
        """Fraction of classified detections whose oracle verdict matches
        the injected category (the classifier's campaign-scale score)."""
        selected = (self.outcomes if category is None
                    else self.of_category(category))
        classified = [o for o in selected if o.classified_as]
        if not classified:
            return None
        return (sum(o.classified_as == o.fault.category for o in classified)
                / len(classified))

    def summary_rows(self) -> List[Dict[str, object]]:
        """Per-category summary for table printing."""
        rows = []
        for category in ("design", "implementation", "comm"):
            if not self.of_category(category):
                continue
            rows.append({
                "category": category,
                "faults": len(self.of_category(category)),
                "model_rate": self.detection_rate(category, "model"),
                "code_rate": self.detection_rate(category, "code"),
                "model_latency_us": self.mean_latency_us(category, "model"),
                "code_latency_us": self.mean_latency_us(category, "code"),
            })
        return rows


def _patch_boards(kernel: DtmKernel, system: System,
                  patches: MemoryPatches) -> None:
    """Apply fault memory patches to every node board over JTAG.

    Bulk patching rides the TAP's BLOCKWRITE auto-increment: contiguous
    patch runs become single block transactions on a throwaway
    :class:`JtagLink`, the same path bench hardware uses to corrupt RAM
    without reflashing.
    """
    for node in system.nodes():
        board = kernel.board_of(node)
        link = JtagLink(JtagProbe(TapController(DebugPort(board))))
        write_patches(link, patches)


def _run_model_debugger(system: System, firmware: FirmwareImage,
                        monitor_factory: Callable[[], MonitorSuite],
                        duration_us: int,
                        memory_patches: MemoryPatches = (),
                        trace_store: Optional[object] = None,
                        chaos: Optional[object] = None,
                        ) -> Tuple[bool, Optional[int], str]:
    """Run GMDF over the faulty target; returns (detected, latency, how).

    With ``trace_store`` the engine records through a spilling ring
    (``ExecutionTrace`` with the shared
    :data:`~repro.tracedb.store.DEFAULT_SPILL_CACHE_EVENTS` hot cache):
    the full model-level execution trace lands on disk for post-campaign
    replay while the in-memory footprint stays flat.

    With ``chaos`` (a :class:`~repro.comm.chaos.ChaosConfig`) every
    node's serial transport is wrapped in a
    :class:`~repro.comm.chaos.ChaosLink` seeded per node, so the model
    debugger observes the target through a deterministically faulty
    wire — the comm-fault campaign plane.
    """
    sim = Simulator()
    kernel = DtmKernel(system, firmware, sim=sim, latched=True)
    if memory_patches:
        _patch_boards(kernel, system, memory_patches)
    composite = CompositeChannel()
    for node in system.nodes():
        channel = ActiveChannel(sim, kernel.board_of(node), firmware,
                                link=Rs232Link())
        if chaos is not None:
            from repro.comm.chaos import ChaosLink
            from repro.util.seeds import derive_seed
            channel.debug_link = ChaosLink(
                channel.debug_link,
                chaos.with_seed(derive_seed(chaos.seed, "node", node)))
        kernel.add_job_hook(node, lambda actor, t, ch=channel: ch.begin_job(t))
        composite.add(channel)
    model = system_to_model(system)
    gdm = AbstractionEngine(default_comdes_table(model.metamodel)).build(model)
    if trace_store is not None:
        from repro.tracedb.store import DEFAULT_SPILL_CACHE_EVENTS
        trace = ExecutionTrace(capacity=DEFAULT_SPILL_CACHE_EVENTS,
                               spill=trace_store)
    else:
        trace = None
    engine = DebuggerEngine(gdm, channel=composite, capture_frames=False,
                            trace=trace)
    suite = monitor_factory()
    suite.attach(engine)
    try:
        kernel.run(duration_us)
    except TargetFault:
        return True, sim.now, "crash"
    if suite.any_violation:
        return True, suite.first_violation_time(), "monitor"
    return False, None, ""


def _run_code_debugger(system: System, firmware: FirmwareImage,
                       watch_specs: Sequence[CodeWatchSpec],
                       duration_us: int,
                       memory_patches: MemoryPatches = ()
                       ) -> Tuple[bool, Optional[int], str]:
    """Run the source-debugger baseline; returns (detected, latency, how)."""
    sim = Simulator()
    kernel = DtmKernel(system, firmware, sim=sim, latched=True)
    if memory_patches:
        _patch_boards(kernel, system, memory_patches)
    hits: List[int] = []
    for node in system.nodes():
        debugger = SourceDebugger(kernel.board_of(node), firmware)
        installed = 0
        for symbol, predicate, description in watch_specs:
            if installed >= 4:
                break
            if not firmware.symbols.has(symbol):
                continue
            debugger.watch(symbol, predicate, description)
            installed += 1
        debugger.on_hit = lambda hit, s=sim: hits.append(s.now)
    try:
        kernel.run(duration_us)
    except TargetFault:
        return True, sim.now, "crash"
    if hits:
        return True, min(hits), "watch"
    return False, None, ""


def run_control_experiment(
    system_factory: Callable[[], System],
    monitor_factory: Callable[[], MonitorSuite],
    watch_specs: Sequence[CodeWatchSpec],
    duration_us: int,
    plan: InstrumentationPlan,
    base_firmware: Optional[FirmwareImage] = None,
    trace_store: Optional[object] = None,
) -> Tuple[bool, bool]:
    """Fault-free run under both debuggers; returns detection flags.

    Anything detected here is a false positive. ``trace_store``
    optionally collects the model debugger's full execution trace.
    """
    pristine = system_factory()
    firmware = (base_firmware if base_firmware is not None
                else generate_firmware(pristine, plan))
    detected, _, _ = _run_model_debugger(pristine, firmware,
                                         monitor_factory, duration_us,
                                         trace_store=trace_store)
    code_detected, _, _ = _run_code_debugger(pristine, firmware,
                                             watch_specs, duration_us)
    return detected, code_detected


def run_fault_experiment(
    system_factory: Callable[[], System],
    monitor_factory: Callable[[], MonitorSuite],
    watch_specs: Sequence[CodeWatchSpec],
    category: str,
    kind: str,
    seed: int,
    duration_us: int,
    plan: InstrumentationPlan,
    base_firmware: Optional[FirmwareImage] = None,
    trace_store: Optional[object] = None,
) -> Optional[FaultOutcome]:
    """Inject one fault and score it under both debuggers.

    This is the unit of work both the inline loop and the fleet workers
    execute — one code path, so parallel campaigns reproduce serial
    results exactly. Returns ``None`` when the injector declines (the
    kind does not apply to this system). ``base_firmware`` optionally
    reuses a pre-generated pristine image (implementation faults only;
    codegen is deterministic, so this is a pure time save).
    ``trace_store`` collects the model debugger's execution trace.
    """
    if category == "design":
        mutant, fault = inject_design_fault(system_factory(), kind, seed)
        if mutant is None:
            return None
        firmware = generate_firmware(mutant, plan)
        model_result = _run_model_debugger(mutant, firmware,
                                           monitor_factory, duration_us,
                                           trace_store=trace_store)
        code_result = _run_code_debugger(mutant, firmware,
                                         watch_specs, duration_us)
        verdict = _classify(mutant, firmware, model_result[0])
        return FaultOutcome(fault, *model_result, *code_result,
                            classified_as=verdict)

    if category == "implementation":
        base = system_factory()
        base_fw = (base_firmware if base_firmware is not None
                   else generate_firmware(base, plan))
        mutant_fw, fault = inject_implementation_fault(base_fw, kind, seed)
        if mutant_fw is None:
            return None
        # Code corruptions stay in the flashed image; data-word
        # corruptions are applied to the live boards over the debug
        # link (batched BLOCKWRITE) — fault injection over JTAG.
        run_fw, patches = split_memory_patches(base_fw, mutant_fw)
        model_result = _run_model_debugger(base, run_fw, monitor_factory,
                                           duration_us,
                                           memory_patches=patches,
                                           trace_store=trace_store)
        code_result = _run_code_debugger(base, run_fw, watch_specs,
                                         duration_us,
                                         memory_patches=patches)
        # The oracle replays the full mutant image (patches baked in):
        # a fresh differential board has no debug link to patch over.
        verdict = _classify(base, mutant_fw, model_result[0])
        return FaultOutcome(fault, *model_result, *code_result,
                            classified_as=verdict)

    if category == "comm":
        # Pristine system and firmware; the fault lives on the wire the
        # model debugger observes through. The code debugger reads the
        # target directly (no serial hop), so it runs clean — the
        # comparison isolates how transport faults degrade model-level
        # observability. No differential classification: there is no
        # design or implementation bug to classify.
        from repro.faults.comm import comm_chaos_config, comm_fault_descriptor
        base = system_factory()
        base_fw = (base_firmware if base_firmware is not None
                   else generate_firmware(base, plan))
        fault = comm_fault_descriptor(kind, seed)
        chaos = comm_chaos_config(kind, seed)
        model_result = _run_model_debugger(base, base_fw, monitor_factory,
                                           duration_us,
                                           trace_store=trace_store,
                                           chaos=chaos)
        code_result = _run_code_debugger(base, base_fw, watch_specs,
                                         duration_us)
        return FaultOutcome(fault, *model_result, *code_result,
                            classified_as="")

    raise FleetError(f"unknown experiment category {category!r}")


def _classify(system: System, firmware: FirmwareImage,
              model_detected: bool) -> str:
    """Differential-oracle verdict for a detected fault ('' if undetected)."""
    if not model_detected:
        return ""
    from repro.engine.classify import classify_bug
    return classify_bug(system, firmware, violation_observed=True).verdict.value


def _validate_seed_plan(seeds: Sequence[int], master_seed: Optional[int],
                        seeds_per_kind: Optional[int]) -> None:
    """One source of truth for the seeds_per_kind/master_seed pairing."""
    if seeds_per_kind is not None and master_seed is None:
        raise FleetError(
            f"seeds_per_kind={seeds_per_kind} needs a master_seed to "
            f"derive from; without one the campaign would silently fall "
            f"back to the {len(seeds)} explicit seed(s)")


def campaign_seeds(
    category: str,
    kind: str,
    seeds: Sequence[int],
    master_seed: Optional[int] = None,
    seeds_per_kind: Optional[int] = None,
) -> Sequence[int]:
    """The per-kind seed list a campaign enumerates.

    With ``master_seed=None`` this is just *seeds* (every kind shares
    one small list — the original corpus shape). With a master seed,
    each ``category/kind`` gets its own deterministic
    :func:`~repro.fleet.pool.seed_stream` of ``seeds_per_kind`` seeds
    (default: ``len(seeds)``) — corpus size scales with one knob, and
    no two kinds ever reuse a seed, so campaigns enumerate genuinely
    distinct scenarios as they grow.
    """
    _validate_seed_plan(seeds, master_seed, seeds_per_kind)
    if master_seed is None:
        return seeds
    from repro.fleet.pool import seed_stream  # deferred: cycle via worker
    count = seeds_per_kind if seeds_per_kind is not None else len(seeds)
    return seed_stream(master_seed, f"{category}/{kind}", count)


def run_campaign(
    system_factory: Callable[[], System],
    monitor_factory: Callable[[], MonitorSuite],
    code_watch_specs: WatchSpecsInput,
    design_kinds: Sequence[str] = tuple(DESIGN_FAULT_KINDS),
    impl_kinds: Sequence[str] = tuple(IMPL_FAULT_KINDS),
    comm_kinds: Sequence[str] = (),
    seeds: Sequence[int] = (1, 2, 3),
    duration_us: int = 3_000_000,
    plan: Optional[InstrumentationPlan] = None,
    runner: Optional[object] = None,
    master_seed: Optional[int] = None,
    seeds_per_kind: Optional[int] = None,
    trace_dir: Optional[str] = None,
) -> CampaignResult:
    """Inject faults, run both debuggers on each, aggregate detection.

    With ``runner=None`` experiments run inline, one after another. Pass
    a :class:`repro.fleet.FleetRunner` (worker processes for scale-out),
    a :class:`repro.fleet.SerialRunner`, or a
    :class:`repro.fleet.BatchRunner` (in-process, jobs grouped into
    identical-firmware cohorts by fingerprint — the right default on
    core-starved hosts) to execute the same corpus through the fleet
    subsystem, which requires the three factories to be importable
    module-level callables (``code_watch_specs`` given as a factory,
    not a list). Every runner is a policy shell over the one elastic
    scheduler core (:mod:`repro.fleet.sched`), and all of them produce
    identical results through the canonical merge — any steal schedule
    or worker count is byte-identical to ``SerialRunner`` at the same
    master seed.

    ``comm_kinds`` (off by default) adds the transport-fault plane:
    each kind in :data:`~repro.faults.comm.COMM_FAULT_KINDS` runs the
    pristine system with a seeded
    :class:`~repro.comm.chaos.ChaosLink` degrading the model debugger's
    wire. ``master_seed``/``seeds_per_kind`` switch seed selection to
    :func:`campaign_seeds` derivation (per-kind deterministic streams).
    ``trace_dir`` turns on trace collection: every job spills its model
    debugger's execution trace to a per-job store under that directory
    and the merged, canonically-ordered campaign store comes back as
    ``CampaignResult.trace_store``. Collection runs through the fleet
    job path (``runner=None`` falls back to a
    :class:`~repro.fleet.pool.SerialRunner`), so it needs importable
    factories too — and serial and parallel campaigns produce
    byte-identical campaign stores.
    """
    plan = plan if plan is not None else InstrumentationPlan.full()

    # argument errors fail before any experiment burns wall-clock (the
    # control run alone simulates the full duration twice)
    _validate_seed_plan(seeds, master_seed, seeds_per_kind)

    if trace_dir is not None:
        # fail on a reused trace_dir *now*, not after the whole corpus ran
        from repro.tracedb.collect import ensure_fresh_trace_dir
        ensure_fresh_trace_dir(trace_dir)
        if runner is None:
            from repro.fleet.pool import SerialRunner
            runner = SerialRunner()

    if runner is not None:
        from repro.fleet.jobs import enumerate_campaign_jobs
        from repro.fleet.merge import merge_results
        specs = enumerate_campaign_jobs(
            system_factory, monitor_factory, code_watch_specs,
            design_kinds=design_kinds, impl_kinds=impl_kinds, seeds=seeds,
            duration_us=duration_us, plan=plan,
            master_seed=master_seed, seeds_per_kind=seeds_per_kind,
            trace_dir=trace_dir, comm_kinds=comm_kinds,
        )
        return merge_results(specs, runner.run(specs), trace_dir=trace_dir)

    watch_specs = (code_watch_specs() if callable(code_watch_specs)
                   else code_watch_specs)
    outcomes: List[FaultOutcome] = []

    # Control run: the fault-free system must trigger nothing.
    detected, code_detected = run_control_experiment(
        system_factory, monitor_factory, watch_specs, duration_us, plan)
    false_positives = int(detected) + int(code_detected)

    for category, kinds in (("design", design_kinds),
                            ("implementation", impl_kinds),
                            ("comm", comm_kinds)):
        for kind in kinds:
            for seed in campaign_seeds(category, kind, seeds,
                                       master_seed, seeds_per_kind):
                outcome = run_fault_experiment(
                    system_factory, monitor_factory, watch_specs,
                    category, kind, seed, duration_us, plan)
                if outcome is not None:
                    outcomes.append(outcome)

    return CampaignResult(outcomes, false_positives)
