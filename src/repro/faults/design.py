"""Design-error injectors: mutate the *model* before code generation.

Each injector deep-copies the system, applies one seeded mutation of its
kind, and returns the mutated system plus a descriptor. Mutations keep the
model structurally valid (it still compiles) — they are *semantic* errors,
the kind a modeler actually makes.
"""

from __future__ import annotations

import copy
import random
from typing import List, Optional, Tuple

from repro.comdes.blocks import GainFB, StateMachineFB, ThresholdFB
from repro.comdes.expr import Const, Expr, lnot
from repro.comdes.system import System
from repro.errors import ReproError


class FaultDescriptor:
    """What was injected where."""

    __slots__ = ("fault_id", "category", "kind", "location", "description")

    def __init__(self, fault_id: str, category: str, kind: str,
                 location: str, description: str) -> None:
        self.fault_id = fault_id
        self.category = category
        self.kind = kind
        self.location = location
        self.description = description

    def __repr__(self) -> str:
        return f"<Fault {self.fault_id} [{self.category}/{self.kind}] {self.location}>"


def _state_machine_blocks(system: System) -> List[Tuple[str, StateMachineFB]]:
    found = []
    for actor in system.actors.values():
        for block in actor.network.blocks:
            if isinstance(block, StateMachineFB):
                found.append((actor.name, block))
    return found


def _guard_constants(expr: Expr) -> List[Const]:
    return [node for node in expr.walk() if isinstance(node, Const)]


def _fault_remove_transition(system: System, rng: random.Random) -> Optional[str]:
    machines = _state_machine_blocks(system)
    if not machines:
        return None
    actor_name, block = rng.choice(machines)
    machine = block.machine
    # Removing a self-loop usually freezes counters; prefer cross transitions.
    candidates = [t for t in machine.transitions if t.source != t.target]
    if not candidates:
        return None
    victim = rng.choice(candidates)
    machine.transitions.remove(victim)
    return (f"{actor_name}.{block.name}: removed transition "
            f"{victim.source}->{victim.target}")


def _fault_guard_constant(system: System, rng: random.Random) -> Optional[str]:
    machines = _state_machine_blocks(system)
    rng.shuffle(machines)
    for actor_name, block in machines:
        # A guard that *is* a constant ("always") stays truthy under small
        # perturbations — mutating it yields an equivalent mutant, so only
        # constants nested inside a comparison are candidates.
        transitions = [
            t for t in block.machine.transitions
            if not isinstance(t.guard, Const) and _guard_constants(t.guard)
        ]
        if not transitions:
            continue
        victim = rng.choice(transitions)
        const = rng.choice(_guard_constants(victim.guard))
        old = const.value
        const.value = old + rng.choice((-2, -1, 1, 2, 10))
        return (f"{actor_name}.{block.name}: guard constant of "
                f"{victim.source}->{victim.target} changed {old} -> {const.value}")
    return None


def _fault_wrong_target(system: System, rng: random.Random) -> Optional[str]:
    machines = _state_machine_blocks(system)
    rng.shuffle(machines)
    for actor_name, block in machines:
        machine = block.machine
        if len(machine.states) < 2:
            continue
        candidates = [t for t in machine.transitions if t.source != t.target]
        if not candidates:
            continue
        victim = rng.choice(candidates)
        others = [s for s in machine.states if s != victim.target]
        old = victim.target
        victim.target = rng.choice(others)
        return (f"{actor_name}.{block.name}: transition from {victim.source} "
                f"retargeted {old} -> {victim.target}")
    return None


def _fault_wrong_initial(system: System, rng: random.Random) -> Optional[str]:
    machines = _state_machine_blocks(system)
    rng.shuffle(machines)
    for actor_name, block in machines:
        machine = block.machine
        others = [s for s in machine.states if s != machine.initial]
        if not others:
            continue
        old = machine.initial
        machine.initial = rng.choice(others)
        return f"{actor_name}.{block.name}: initial state {old} -> {machine.initial}"
    return None


def _fault_action_constant(system: System, rng: random.Random) -> Optional[str]:
    machines = _state_machine_blocks(system)
    rng.shuffle(machines)
    for actor_name, block in machines:
        actions = [
            (t, a) for t in block.machine.transitions for a in t.actions
            if _guard_constants(a.expr)
        ]
        if not actions:
            continue
        transition, action = rng.choice(actions)
        const = rng.choice(_guard_constants(action.expr))
        old = const.value
        const.value = old + rng.choice((-1, 1, 5))
        return (f"{actor_name}.{block.name}: action {action.target} constant "
                f"{old} -> {const.value} on {transition.source}->{transition.target}")
    return None


def _fault_gain_sign(system: System, rng: random.Random) -> Optional[str]:
    gains = [
        (actor.name, block)
        for actor in system.actors.values()
        for block in actor.network.blocks
        if isinstance(block, GainFB)
    ]
    if not gains:
        return None
    actor_name, block = rng.choice(gains)
    block.num = -block.num
    return f"{actor_name}.{block.name}: gain sign flipped to {block.num}/{block.den}"


def _fault_threshold_limit(system: System, rng: random.Random) -> Optional[str]:
    thresholds = [
        (actor.name, block)
        for actor in system.actors.values()
        for block in actor.network.blocks
        if isinstance(block, ThresholdFB)
    ]
    if not thresholds:
        return None
    actor_name, block = rng.choice(thresholds)
    old = block.limit
    block.limit = old + rng.choice((-old // 2 - 1, old // 2 + 1))
    return f"{actor_name}.{block.name}: threshold limit {old} -> {block.limit}"


def _fault_swapped_guards(system: System, rng: random.Random) -> Optional[str]:
    machines = _state_machine_blocks(system)
    rng.shuffle(machines)
    for actor_name, block in machines:
        by_source: dict = {}
        for t in block.machine.transitions:
            by_source.setdefault(t.source, []).append(t)
        multi = [ts for ts in by_source.values() if len(ts) >= 2]
        if not multi:
            continue
        group = rng.choice(multi)
        a, b = rng.sample(group, 2)
        a.guard, b.guard = b.guard, a.guard
        return (f"{actor_name}.{block.name}: guards swapped between "
                f"{a.source}->{a.target} and {b.source}->{b.target}")
    return None


def _fault_guard_inversion(system: System, rng: random.Random) -> Optional[str]:
    """Logically invert one transition guard (fires exactly when it
    should not) — the classic condition-negation modeling slip."""
    machines = _state_machine_blocks(system)
    rng.shuffle(machines)
    for actor_name, block in machines:
        # Inverting a constant-true guard yields a never-firing self-loop
        # twin of remove_transition; prefer real predicates.
        candidates = [t for t in block.machine.transitions
                      if not isinstance(t.guard, Const)]
        if not candidates:
            continue
        victim = rng.choice(candidates)
        victim.guard = lnot(victim.guard)
        return (f"{actor_name}.{block.name}: guard inverted on "
                f"{victim.source}->{victim.target}")
    return None


#: kind name -> injector
DESIGN_FAULT_KINDS = {
    "remove_transition": _fault_remove_transition,
    "guard_constant": _fault_guard_constant,
    "wrong_target": _fault_wrong_target,
    "wrong_initial": _fault_wrong_initial,
    "action_constant": _fault_action_constant,
    "gain_sign": _fault_gain_sign,
    "threshold_limit": _fault_threshold_limit,
    "swapped_guards": _fault_swapped_guards,
    "guard_inversion": _fault_guard_inversion,
}


def inject_design_fault(system: System, kind: str,
                        seed: int) -> Tuple[Optional[System], Optional[FaultDescriptor]]:
    """Deep-copy *system* and inject one fault of *kind*.

    Returns (mutant, descriptor), or (None, None) if the kind is not
    applicable to this system (e.g. no threshold blocks).
    """
    if kind not in DESIGN_FAULT_KINDS:
        raise ReproError(
            f"unknown design fault kind {kind!r}; "
            f"options: {sorted(DESIGN_FAULT_KINDS)}"
        )
    mutant = copy.deepcopy(system)
    rng = random.Random(seed)
    description = DESIGN_FAULT_KINDS[kind](mutant, rng)
    if description is None:
        return None, None
    descriptor = FaultDescriptor(
        fault_id=f"design/{kind}/{seed}", category="design", kind=kind,
        location=description.split(":")[0], description=description,
    )
    return mutant, descriptor
