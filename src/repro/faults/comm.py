"""Comm-fault injectors: seeded wire faults on the debug transport.

The third fault plane of the campaign corpus. Design faults mutate the
model, implementation faults corrupt the firmware image — comm faults
leave both pristine and degrade the *transport* the model debugger
observes through, by wrapping the active channel's serial link in a
:class:`~repro.comm.chaos.ChaosLink`. What the campaign measures here is
robustness of the observation pipeline itself: a lossy or reordering
wire must degrade detection gracefully (missed or late commands), never
crash the debugger or corrupt its verdicts.

Each kind maps to a :class:`~repro.comm.chaos.ChaosConfig` preset; the
per-experiment seed goes into the config, so the whole fault schedule is
a deterministic function of ``(kind, seed)`` — two runs of the same comm
fault are byte-identical, exactly like the other fault planes.
"""

from __future__ import annotations

from repro.comm.chaos import ChaosConfig
from repro.errors import ReproError
from repro.faults.design import FaultDescriptor


def _loss(seed: int) -> ChaosConfig:
    return ChaosConfig(seed=seed, frame_loss=0.2)


def _reorder(seed: int) -> ChaosConfig:
    return ChaosConfig(seed=seed, frame_reorder=0.3, reorder_delay_us=3000)


def _corrupt(seed: int) -> ChaosConfig:
    return ChaosConfig(seed=seed, frame_corrupt=0.2)


#: kind -> (config factory, one-line description); ordered dict order is
#: the canonical enumeration order of the comm corpus
COMM_FAULT_KINDS = {
    "frame_loss": (_loss, "drop 20% of command frames on the wire"),
    "frame_reorder": (_reorder,
                      "delay 30% of frames by 3ms past their successors"),
    "frame_corrupt": (_corrupt,
                      "flip one wire bit in 20% of frames (checksum drops)"),
}


def comm_chaos_config(kind: str, seed: int) -> ChaosConfig:
    """The seeded :class:`ChaosConfig` behind one comm-fault coordinate."""
    try:
        factory, _ = COMM_FAULT_KINDS[kind]
    except KeyError:
        raise ReproError(
            f"unknown comm fault kind {kind!r}; "
            f"options: {tuple(COMM_FAULT_KINDS)}") from None
    return factory(seed)


def comm_fault_descriptor(kind: str, seed: int) -> FaultDescriptor:
    """Descriptor for one comm fault (validates the kind)."""
    _, description = COMM_FAULT_KINDS[kind]
    return FaultDescriptor(
        fault_id=f"comm/{kind}/{seed}",
        category="comm",
        kind=kind,
        location="wire",
        description=description,
    )
