"""Fault injection for the detection experiments.

The paper distinguishes two bug classes a runtime model debugger can find:

* **design errors** — inconsistencies between requirements and the system
  model (injected here by mutating the model before code generation);
* **implementation errors** — introduced during model transformation
  (injected by mutating the generated code while the model stays correct).

A third plane targets the debugger itself rather than the system under
debug:

* **comm faults** — seeded wire faults (frame loss, reordering,
  corruption) on the transport the model debugger observes through,
  injected by wrapping the serial link in a
  :class:`~repro.comm.chaos.ChaosLink`. They measure observability
  robustness: a degraded wire must degrade detection gracefully, never
  crash the debugger.

:mod:`repro.faults.campaign` runs both debuggers (model-level GMDF and the
code-level baseline) against each faulty variant and scores detection.
"""

from repro.faults.design import DESIGN_FAULT_KINDS, FaultDescriptor, inject_design_fault
from repro.faults.implementation import IMPL_FAULT_KINDS, inject_implementation_fault
from repro.faults.comm import (
    COMM_FAULT_KINDS,
    comm_chaos_config,
    comm_fault_descriptor,
)
from repro.faults.campaign import (
    CampaignResult,
    FaultOutcome,
    campaign_seeds,
    run_campaign,
)

__all__ = [
    "FaultDescriptor",
    "DESIGN_FAULT_KINDS", "inject_design_fault",
    "IMPL_FAULT_KINDS", "inject_implementation_fault",
    "COMM_FAULT_KINDS", "comm_chaos_config", "comm_fault_descriptor",
    "FaultOutcome", "CampaignResult", "campaign_seeds", "run_campaign",
]
