"""Fault injection for the detection experiments.

The paper distinguishes two bug classes a runtime model debugger can find:

* **design errors** — inconsistencies between requirements and the system
  model (injected here by mutating the model before code generation);
* **implementation errors** — introduced during model transformation
  (injected by mutating the generated code while the model stays correct).

:mod:`repro.faults.campaign` runs both debuggers (model-level GMDF and the
code-level baseline) against each faulty variant and scores detection.
"""

from repro.faults.design import DESIGN_FAULT_KINDS, FaultDescriptor, inject_design_fault
from repro.faults.implementation import IMPL_FAULT_KINDS, inject_implementation_fault
from repro.faults.campaign import (
    CampaignResult,
    FaultOutcome,
    campaign_seeds,
    run_campaign,
)

__all__ = [
    "FaultDescriptor",
    "DESIGN_FAULT_KINDS", "inject_design_fault",
    "IMPL_FAULT_KINDS", "inject_implementation_fault",
    "FaultOutcome", "CampaignResult", "campaign_seeds", "run_campaign",
]
