"""Implementation-error injectors: mutate *generated code*, model untouched.

These emulate bugs introduced during model transformation or manual glue
coding (the paper's "hybrid-coding procedure"). Mutations are applied to a
copy of a firmware image; instructions belonging to the debug
instrumentation itself are excluded so the command channel stays honest.
"""

from __future__ import annotations

import copy
import random
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.faults.design import FaultDescriptor
from repro.target.firmware import FirmwareImage
from repro.target.isa import Instr

_OP_SWAPS = {
    "ADD": "SUB", "SUB": "ADD",
    "LT": "LE", "LE": "LT", "GT": "GE", "GE": "GT",
    "MIN": "MAX", "MAX": "MIN",
    "EQ": "NE", "NE": "EQ",
}


def _instrumentation_pcs(firmware: FirmwareImage) -> set:
    """Instruction indices that implement EMIT sequences (id push included)."""
    excluded = set()
    for pc, instr in enumerate(firmware.code):
        if instr.op == "EMIT":
            excluded.update({pc, pc - 1, pc - 2, pc - 3})
    return excluded


def _mutable_pcs(firmware: FirmwareImage, ops: Tuple[str, ...]) -> List[int]:
    excluded = _instrumentation_pcs(firmware)
    return [pc for pc, instr in enumerate(firmware.code)
            if instr.op in ops and pc not in excluded]


def _fault_const_corrupt(firmware: FirmwareImage,
                         rng: random.Random) -> Optional[str]:
    candidates = _mutable_pcs(firmware, ("PUSH",))
    if not candidates:
        return None
    pc = rng.choice(candidates)
    old = firmware.code[pc]
    delta = rng.choice((-2, -1, 1, 2))
    firmware.code[pc] = Instr("PUSH", old.arg + delta, src_path=old.src_path)
    return f"pc={pc}: PUSH {old.arg} corrupted to {old.arg + delta}"


def _fault_op_swap(firmware: FirmwareImage, rng: random.Random) -> Optional[str]:
    candidates = _mutable_pcs(firmware, tuple(_OP_SWAPS))
    if not candidates:
        return None
    pc = rng.choice(candidates)
    old = firmware.code[pc]
    new_op = _OP_SWAPS[old.op]
    firmware.code[pc] = Instr(new_op, src_path=old.src_path)
    return f"pc={pc}: {old.op} swapped to {new_op}"


def _fault_store_drop(firmware: FirmwareImage, rng: random.Random) -> Optional[str]:
    candidates = _mutable_pcs(firmware, ("STORE",))
    if not candidates:
        return None
    pc = rng.choice(candidates)
    old = firmware.code[pc]
    symbol = firmware.symbols.at_addr(old.arg)
    firmware.code[pc] = Instr("POP", src_path=old.src_path)
    name = symbol.name if symbol else f"0x{old.arg:08x}"
    return f"pc={pc}: STORE to {name} dropped (value discarded)"


def _fault_load_wrong_addr(firmware: FirmwareImage,
                           rng: random.Random) -> Optional[str]:
    candidates = _mutable_pcs(firmware, ("LOAD",))
    if not candidates:
        return None
    rng.shuffle(candidates)
    for pc in candidates:
        old = firmware.code[pc]
        for delta in rng.sample((-1, 1, 2, -2), 4):
            neighbour = firmware.symbols.at_addr(old.arg + delta)
            if neighbour is not None:
                firmware.code[pc] = Instr("LOAD", old.arg + delta,
                                          src_path=old.src_path)
                return f"pc={pc}: LOAD retargeted to {neighbour.name}"
    return None


def _fault_jump_offby(firmware: FirmwareImage, rng: random.Random) -> Optional[str]:
    candidates = _mutable_pcs(firmware, ("JZ", "JNZ"))
    if not candidates:
        return None
    rng.shuffle(candidates)
    for pc in candidates:
        old = firmware.code[pc]
        target = old.arg + rng.choice((-1, 1))
        if 0 <= target < len(firmware.code):
            firmware.code[pc] = Instr(old.op, target, src_path=old.src_path)
            return f"pc={pc}: {old.op} target off by one ({old.arg} -> {target})"
    return None


def _fault_inverted_branch(firmware: FirmwareImage,
                           rng: random.Random) -> Optional[str]:
    candidates = _mutable_pcs(firmware, ("JZ", "JNZ"))
    if not candidates:
        return None
    pc = rng.choice(candidates)
    old = firmware.code[pc]
    new_op = "JNZ" if old.op == "JZ" else "JZ"
    firmware.code[pc] = Instr(new_op, old.arg, src_path=old.src_path)
    return f"pc={pc}: branch inverted {old.op} -> {new_op}"


def _fault_init_corrupt(firmware: FirmwareImage,
                        rng: random.Random) -> Optional[str]:
    state_symbols = [s for s in firmware.symbols.symbols(kind="state")
                     if firmware.data_init.get(s.addr)]
    if not state_symbols:
        return None
    symbol = rng.choice(state_symbols)
    old = firmware.data_init[symbol.addr]
    firmware.data_init[symbol.addr] = old + rng.choice((-1, 1))
    return (f"data: initial value of {symbol.name} corrupted "
            f"{old} -> {firmware.data_init[symbol.addr]}")


def _fault_dead_store_zero(firmware: FirmwareImage,
                           rng: random.Random) -> Optional[str]:
    candidates = _mutable_pcs(firmware, ("STORE",))
    if not candidates:
        return None
    pc = rng.choice(candidates)
    old = firmware.code[pc]
    symbol = firmware.symbols.at_addr(old.arg)
    # Replace the stored value with zero: POP the real value, PUSH 0... a
    # single-slot rewrite keeps addresses stable: STORE -> POP, then the
    # *next* write never happens, so instead corrupt semantics by storing
    # to the same address after zeroing via data_init is impossible inline.
    # Model it as "STORE writes a stuck-at-zero cell": swap to POP and zero
    # the initial value.
    firmware.code[pc] = Instr("POP", src_path=old.src_path)
    if symbol is not None:
        firmware.data_init[symbol.addr] = 0
        name = symbol.name
    else:
        name = f"0x{old.arg:08x}"
    return f"pc={pc}: {name} behaves stuck-at-zero (store dropped, init zeroed)"


def _fault_stuck_at_signal(firmware: FirmwareImage,
                           rng: random.Random) -> Optional[str]:
    """A latched input word reads a stuck constant: one ``LOAD`` of an
    ``<actor>.in.<port>`` cell becomes ``PUSH 0|1`` — the glue-code bug
    where a driver wires a signal to a literal instead of the bus."""
    candidates = []
    for pc in _mutable_pcs(firmware, ("LOAD",)):
        symbol = firmware.symbols.at_addr(firmware.code[pc].arg)
        if symbol is not None and ".in." in symbol.name:
            candidates.append((pc, symbol))
    if not candidates:
        return None
    pc, symbol = rng.choice(candidates)
    old = firmware.code[pc]
    stuck = rng.choice((0, 1))
    firmware.code[pc] = Instr("PUSH", stuck, src_path=old.src_path)
    return f"pc={pc}: {symbol.name} reads stuck-at {stuck}"


def split_memory_patches(base: FirmwareImage, mutant: FirmwareImage
                         ) -> Tuple[FirmwareImage, List[Tuple[int, int]]]:
    """Split a firmware mutation into (code image, data memory patches).

    The returned image carries the mutant's *code* but the base's
    pristine ``data_init``; the data-word corruptions come back as
    ``(addr, value)`` patches. The campaign applies those patches to the
    live board over the debug link (one batched BLOCKWRITE transaction)
    — fault injection over JTAG, exactly how bench hardware does it —
    instead of baking them into the flashed image. End state is
    identical: patches land before the first instruction runs.
    """
    patched = copy.copy(mutant)
    patched.data_init = dict(base.data_init)
    addrs = set(base.data_init) | set(mutant.data_init)
    patches = [
        (addr, mutant.data_init.get(addr, 0))
        for addr in sorted(addrs)
        if base.data_init.get(addr, 0) != mutant.data_init.get(addr, 0)
    ]
    return patched, patches


#: kind name -> injector
IMPL_FAULT_KINDS = {
    "const_corrupt": _fault_const_corrupt,
    "op_swap": _fault_op_swap,
    "store_drop": _fault_store_drop,
    "load_wrong_addr": _fault_load_wrong_addr,
    "jump_offby": _fault_jump_offby,
    "inverted_branch": _fault_inverted_branch,
    "init_corrupt": _fault_init_corrupt,
    "stuck_at_zero": _fault_dead_store_zero,
    "stuck_at_signal": _fault_stuck_at_signal,
}


def inject_implementation_fault(firmware: FirmwareImage, kind: str,
                                seed: int
                                ) -> Tuple[Optional[FirmwareImage], Optional[FaultDescriptor]]:
    """Copy *firmware* and inject one code-level fault of *kind*."""
    if kind not in IMPL_FAULT_KINDS:
        raise ReproError(
            f"unknown implementation fault kind {kind!r}; "
            f"options: {sorted(IMPL_FAULT_KINDS)}"
        )
    mutant = copy.deepcopy(firmware)
    rng = random.Random(seed)
    description = IMPL_FAULT_KINDS[kind](mutant, rng)
    if description is None:
        return None, None
    descriptor = FaultDescriptor(
        fault_id=f"impl/{kind}/{seed}", category="implementation", kind=kind,
        location=description.split(":")[0], description=description,
    )
    return mutant, descriptor
