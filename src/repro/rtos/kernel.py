"""The DTM kernel: periodic actor tasks over boards, schedulers and the bus.

Semantics per actor job:

1. **Release** at ``offset + k*period``. If the target is stalled by the
   debugger, the job is skipped (the paper's model-level breakpoint pauses
   the application).
2. **Input latching**: consumed signals are read from the node's bus view
   and written into the actor's latched input words.
3. **Functional execution** on the node's board (generated code). The job's
   CPU demand is the measured cycle count.
4. **Completion** is computed by the node's preemptive fixed-priority
   scheduler (interference from other jobs delays it).
5. **Output publication**: with ``latched=True`` the outputs captured at
   completion become visible exactly at the deadline instant (DTM); with
   ``latched=False`` they become visible at completion (the jitter
   ablation). Deadline misses publish at completion and are counted.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.comdes.actor import Actor
from repro.comdes.system import System
from repro.errors import SchedulerError
from repro.obs.runtime import OBS
from repro.rtos.jitter import JitterMeter
from repro.rtos.network import SignalBus
from repro.rtos.scheduler import NodeScheduler
from repro.rtos.task import ActiveJob, JobRecord, LoadTask
from repro.sim.kernel import Simulator
from repro.target.board import Board
from repro.target.firmware import FirmwareImage

#: hook called before a job's functional execution: (actor_name, t_release)
JobHook = Callable[[str, int], None]


class _NodeRuntime:
    """Board + scheduler of one computation node."""

    def __init__(self, sim: Simulator, node: str, firmware: FirmwareImage,
                 board: Optional[Board]) -> None:
        self.node = node
        self.board = board if board is not None else Board()
        self.board.load_firmware(firmware)
        self.scheduler = NodeScheduler(sim, node)
        self.job_hooks: List[JobHook] = []


class DtmKernel:
    """Executes a COMDES system under Distributed Timed Multitasking."""

    def __init__(
        self,
        system: System,
        firmware: FirmwareImage,
        sim: Optional[Simulator] = None,
        latched: bool = True,
        net_delay_us: int = 100,
        boards: Optional[Dict[str, Board]] = None,
        nodes: Optional[Sequence[str]] = None,
        record_capacity: Optional[int] = None,
        record_spill: Optional[object] = None,
    ) -> None:
        """``nodes`` restricts this kernel to a shard: boards are built
        and actor jobs dispatched only for the named nodes, while the
        signal bus keeps views for the whole system (remote values
        arrive via :meth:`SignalBus.inject` at epoch barriers — see
        :mod:`repro.rtos.sharding`). ``record_capacity`` bounds
        :attr:`records` to a ring of the newest N entries, mirroring
        ``ExecutionTrace(capacity=N)``, with evictions counted in
        :attr:`records_dropped`. ``record_spill`` attaches a
        :class:`~repro.tracedb.store.TraceStore` that receives every
        :class:`~repro.rtos.task.JobRecord` as it is appended — the ring
        becomes a hot cache, :attr:`records_dropped` stays 0, and
        :meth:`spilled_records` streams the full job history back. A
        spilling kernel with no explicit ``record_capacity`` defaults
        its ring to :data:`~repro.tracedb.store.DEFAULT_SPILL_CACHE_EVENTS`
        — spilling while
        also keeping an unbounded in-memory copy would defeat the
        flat-memory point.
        """
        self.system = system
        self.firmware = firmware
        self.sim = sim if sim is not None else Simulator()
        self.latched = latched
        if nodes is None:
            self.local_nodes = list(system.nodes())
        else:
            unknown = sorted(set(nodes) - set(system.nodes()))
            if unknown:
                raise SchedulerError(
                    f"shard names nodes the system does not have: {unknown}")
            self.local_nodes = list(nodes)
        local = set(self.local_nodes)
        self._nodes: Dict[str, _NodeRuntime] = {}
        for node in self.local_nodes:
            board = (boards or {}).get(node)
            self._nodes[node] = _NodeRuntime(self.sim, node, firmware, board)
        self.bus = SignalBus(self.sim, system.nodes(),
                             system.initial_board(), net_delay_us)
        self.jitter = JitterMeter()
        if record_capacity is not None and record_capacity <= 0:
            raise SchedulerError(
                f"record capacity must be positive, got {record_capacity}")
        if record_capacity is None and record_spill is not None:
            # deferred: keep rtos importable without the tracedb package
            from repro.tracedb.store import DEFAULT_SPILL_CACHE_EVENTS
            record_capacity = DEFAULT_SPILL_CACHE_EVENTS
        self.record_capacity = record_capacity
        # the persist-first/overwrite-at-head policy is the SAME helper
        # ExecutionTrace uses — structural mirror, not by-convention
        from repro.tracedb.spillring import SpillRing
        self._ring = SpillRing(record_capacity, record_spill)
        self.deadline_misses = 0
        self.jobs_skipped = 0
        if OBS.metrics is not None:
            # scheduler health as kernel.* registry series, read once
            # per snapshot — the release/complete paths stay untouched
            OBS.metrics.bind_stats(
                "kernel",
                lambda: {"deadline_misses": self.deadline_misses,
                         "jobs_skipped": self.jobs_skipped,
                         "records_dropped": self.records_dropped},
                owner=self)
        self._job_index: Dict[str, int] = {
            name: 0 for name, actor in system.actors.items()
            if actor.node in local
        }
        self._load_tasks: List[LoadTask] = []
        self._started = False

    # -- configuration -----------------------------------------------------

    def board_of(self, node: str) -> Board:
        """The board hosting *node*'s actors."""
        try:
            return self._nodes[node].board
        except KeyError:
            raise SchedulerError(f"unknown node {node!r}") from None

    def add_job_hook(self, node: str, hook: JobHook) -> None:
        """Call *hook(actor, t_release)* before each job on *node* runs."""
        self._nodes[node].job_hooks.append(hook)

    def add_load_task(self, load: LoadTask) -> None:
        """Register a synthetic interference task (jitter experiments)."""
        if load.node not in self._nodes:
            raise SchedulerError(f"load task on unknown node {load.node!r}")
        self._load_tasks.append(load)

    # -- execution --------------------------------------------------------

    def start(self) -> None:
        """Schedule all periodic releases (idempotent-guarded)."""
        if self._started:
            raise SchedulerError("kernel already started")
        self._started = True
        for actor in self.system.actors.values():
            if actor.node not in self._nodes:
                continue  # another shard's actor
            self.sim.every(actor.task.period_us, self._release_actor, actor,
                           start=actor.task.offset_us)
        for load in self._load_tasks:
            self.sim.every(load.period_us, self._release_load, load,
                           start=load.offset_us)

    def run(self, duration_us: int) -> None:
        """Start (if needed) and simulate until *duration_us*."""
        if not self._started:
            self.start()
        self.sim.run_until(duration_us)

    # -- actor jobs ----------------------------------------------------------

    def _release_actor(self, actor: Actor) -> None:
        now = self.sim.now
        live = OBS.live
        if live is not None:
            # the live plane's modeled clock: activation releases are
            # dense enough to bound window-flush latency, rare enough
            # (never per instruction) to keep the guard one None check
            live.tick(now)
        runtime = self._nodes[actor.node]
        index = self._job_index[actor.name]
        self._job_index[actor.name] += 1
        deadline_abs = now + actor.task.deadline_us

        if runtime.board.stalled:
            self.jobs_skipped += 1
            self._append_record(JobRecord(
                actor.name, index, now, None, deadline_abs, 0, skipped=True,
            ))
            return

        # Input latching at the release instant.
        for port, signal in actor.inputs.items():
            addr = self.firmware.symbols.addr_of(f"{actor.name}.in.{port}")
            runtime.board.memory.poke(addr, self.bus.read(actor.node, signal))

        for hook in runtime.job_hooks:
            hook(actor.name, now)

        result = runtime.board.run_task(actor.name)
        demand_us = runtime.board.cycles_to_us(result.cycles)

        # Outputs are captured now (they are functions of latched inputs);
        # visibility is deferred to completion/deadline below.
        outputs: Dict[str, int] = {}
        for port, signal in actor.outputs.items():
            addr = self.firmware.symbols.addr_of(f"{actor.name}.out.{port}")
            outputs[signal] = runtime.board.memory.peek(addr)

        job = ActiveJob(
            actor.name, actor.task.priority, now, deadline_abs, demand_us,
            on_complete=lambda t_done, a=actor, i=index, o=outputs,
                               r=now, d=deadline_abs, c=demand_us:
                self._on_job_complete(a, i, o, r, d, c, t_done),
        )
        runtime.scheduler.release(job)

    def _on_job_complete(self, actor: Actor, index: int,
                         outputs: Dict[str, int], release: int,
                         deadline_abs: int, demand_us: int,
                         t_done: int) -> None:
        record = JobRecord(actor.name, index, release, t_done, deadline_abs,
                           demand_us)
        self._append_record(record)
        if record.missed:
            self.deadline_misses += 1
        if OBS.spans is not None:
            # one activation slice per completed job, laned by node —
            # release/completion are modeled instants from the scheduler
            OBS.spans.emit(actor.name, release, t_done - release,
                           track=("node", actor.node), cat="activation",
                           args={"index": index,
                                 "missed": bool(record.missed)})
        if self.latched and not record.missed:
            # DTM: publish exactly at the deadline instant.
            self.sim.schedule_at(deadline_abs, self._publish, actor, release,
                                 outputs)
        else:
            self._publish(actor, release, outputs)

    def _publish(self, actor: Actor, release: int,
                 outputs: Dict[str, int]) -> None:
        now = self.sim.now
        for signal, value in outputs.items():
            self.bus.publish(actor.node, signal, value)
            self.jitter.record(signal, release, now)

    # -- load jobs --------------------------------------------------------

    def _release_load(self, load: LoadTask) -> None:
        now = self.sim.now
        runtime = self._nodes[load.node]
        job = ActiveJob(load.name, load.priority, now,
                        now + load.period_us, load.demand_us)
        runtime.scheduler.release(job)

    # -- records ------------------------------------------------------------

    def _append_record(self, record: JobRecord) -> None:
        """Append (overwriting the oldest when at capacity).

        With a spill store attached the record is persisted first
        (:class:`~repro.tracedb.spillring.SpillRing` semantics, shared
        with :class:`~repro.engine.trace.ExecutionTrace`), so eviction
        only drops the cached copy and the dropped counter stays 0 —
        the full job history remains streamable. The spill store stamps
        each record's seq, continuing a resumed store's line.
        """
        self._ring.append(record, encode=JobRecord.to_dict)

    @property
    def record_spill(self) -> Optional[object]:
        """The TraceStore receiving every record (read-only: the ring's)."""
        return self._ring.spill

    @property
    def records_dropped(self) -> int:
        """Records evicted without a spill store (0 while spilling)."""
        return self._ring.dropped

    @property
    def records(self) -> List[JobRecord]:
        """Job records, oldest first (the newest N in ring mode)."""
        return self._ring.snapshot()

    def spilled_records(self):
        """Stream the *full* job-record history from the spill store.

        Misconfiguration (no spill store) raises here at the call site,
        not at first iteration of the returned generator.
        """
        if self.record_spill is None:
            raise SchedulerError("kernel has no record spill store")
        self.record_spill.flush()

        def _stream():
            for data in self.record_spill.events():
                yield JobRecord.from_dict(data)

        return _stream()

    # -- queries ------------------------------------------------------------

    def records_for(self, actor_name: str) -> List[JobRecord]:
        """Completed/skipped job records of one actor."""
        return [r for r in self.records if r.actor == actor_name]

    def signal_value(self, node: str, signal: str) -> int:
        """Current bus view of *signal* on *node*."""
        return self.bus.read(node, signal)
