"""Job and task records used by the node scheduler."""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SchedulerError


class ActiveJob:
    """A released, not-yet-completed job competing for its node's CPU."""

    _seq = 0

    def __init__(self, name: str, priority: int, release: int,
                 deadline_abs: int, demand_us: int,
                 on_complete: Optional[Callable[[int], None]] = None) -> None:
        if demand_us < 0:
            raise SchedulerError(f"job {name}: negative demand {demand_us}")
        ActiveJob._seq += 1
        self.seq = ActiveJob._seq
        self.name = name
        self.priority = priority
        self.release = release
        self.deadline_abs = deadline_abs
        self.demand_us = demand_us
        self.remaining_us = demand_us
        self.on_complete = on_complete
        self.completion: Optional[int] = None

    def sort_key(self):
        """Priority order: smaller number wins; FIFO among equals."""
        return (self.priority, self.release, self.seq)

    def __repr__(self) -> str:
        return (f"<ActiveJob {self.name} P{self.priority} rel={self.release} "
                f"rem={self.remaining_us}us>")


class JobRecord:
    """Bookkeeping for a finished (or skipped) job."""

    __slots__ = ("actor", "index", "release", "completion", "deadline_abs",
                 "missed", "demand_us", "skipped")

    def __init__(self, actor: str, index: int, release: int,
                 completion: Optional[int], deadline_abs: int,
                 demand_us: int, skipped: bool = False) -> None:
        self.actor = actor
        self.index = index
        self.release = release
        self.completion = completion
        self.deadline_abs = deadline_abs
        self.demand_us = demand_us
        self.skipped = skipped
        self.missed = (completion is not None and completion > deadline_abs)

    @property
    def response_us(self) -> Optional[int]:
        """Completion minus release (None for skipped jobs)."""
        if self.completion is None:
            return None
        return self.completion - self.release

    def to_dict(self) -> dict:
        """Serializable form (spill-store records).

        ``t_target`` mirrors the release instant so the store's
        time-range index prunes job-record segments the same way it
        prunes trace-event segments.
        """
        return {"actor": self.actor, "index": self.index,
                "release": self.release, "completion": self.completion,
                "deadline_abs": self.deadline_abs,
                "demand_us": self.demand_us, "skipped": self.skipped,
                "t_target": self.release}

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        """Inverse of :meth:`to_dict` (extra store keys ignored)."""
        return cls(data["actor"], data["index"], data["release"],
                   data["completion"], data["deadline_abs"],
                   data["demand_us"], skipped=data["skipped"])

    def __repr__(self) -> str:
        status = "skipped" if self.skipped else (
            "MISS" if self.missed else "ok")
        return (f"<JobRecord {self.actor}#{self.index} rel={self.release} "
                f"comp={self.completion} {status}>")


class LoadTask:
    """A synthetic interference task: consumes CPU time, touches no model.

    Used by the jitter experiment to create response-time variance for the
    victim task.
    """

    def __init__(self, name: str, node: str, period_us: int, demand_us: int,
                 priority: int, offset_us: int = 0) -> None:
        if period_us <= 0 or demand_us < 0:
            raise SchedulerError(
                f"load task {name}: period must be positive and demand "
                f"non-negative (got T={period_us}, C={demand_us})"
            )
        if demand_us > period_us:
            raise SchedulerError(
                f"load task {name}: demand {demand_us} exceeds period {period_us}"
            )
        self.name = name
        self.node = node
        self.period_us = period_us
        self.demand_us = demand_us
        self.priority = priority
        self.offset_us = offset_us
