"""Multi-board sharding: DTM execution split across node-subset kernels.

The ROADMAP wall this removes: ``DtmKernel`` keeps one :class:`Board`
per node, but a monolithic kernel interleaves every node's jobs on one
simulator, so large distributed systems serialize on one interpreter.
:class:`ShardedDtmKernel` partitions the system's nodes into shards and
runs each shard as its *own* kernel — its own simulator clock, boards
and scheduler — synchronized only at epoch barriers.

Why that is exact, not approximate: DTM's signal bus delivers a
cross-node publication ``net_delay_us`` after it is made, so a node's
execution inside a window shorter than that delay can only depend on
publications from *before* the window — classic conservative parallel
discrete-event simulation with the network delay as lookahead. Shards
therefore advance in lockstep epochs of ``epoch_us <= net_delay_us``;
at each barrier every shard hands over the publications it made, and
they are scheduled into the other shards at their true arrival instants
(``t_publish + net_delay_us``). One extra assumption keeps event order
bit-identical to the monolithic kernel: task periods must exceed the
network delay (checked at construction), so a release event at an
arrival instant was always scheduled before the publication it races —
same winner in both executions.

Two backends behind one API:

* ``backend="inline"`` — shard kernels interleave in-process (the
  "interleave via the Simulator" option): zero IPC, the determinism
  reference, and the way to bound memory per kernel via
  ``record_capacity``;
* ``backend="process"`` — each shard lives in a persistent
  :class:`~repro.fleet.shards.ShardHost` worker process and epochs
  dispatch through the shared fleet scheduler core
  (:class:`~repro.fleet.sched.ElasticScheduler` over pinned
  single-epoch work units): every shard's epoch is *sent* before any
  reply is awaited, so node boards genuinely execute in parallel on
  multicore hosts instead of serializing on one synchronous pipe
  round-trip per shard. Requires declarative inputs
  (``system_ref`` + ``plan``): workers rebuild system and firmware
  locally, per the fleet rule that recipes cross processes and live
  boards never do.

Both backends produce identical records, jitter samples and bus views —
``tests/test_sharding.py`` pins sharded == monolithic equivalence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.codegen.instrument import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.system import System
from repro.errors import FleetError, SchedulerError
from repro.fleet.sched import ElasticScheduler, WorkUnit
from repro.fleet.shards import (
    Injection,
    Publication,
    ShardHost,
    ShardReport,
    build_shard_kernel,
    run_shard_epoch,
    shard_report,
)
from repro.rtos.jitter import JitterMeter
from repro.rtos.task import JobRecord
from repro.target.firmware import FirmwareImage


def partition_nodes(nodes: Sequence[str], shards: int) -> List[List[str]]:
    """Round-robin the sorted node names into *shards* non-empty groups."""
    if shards < 1:
        raise SchedulerError(f"shard count must be >= 1, got {shards}")
    ordered = sorted(nodes)
    shards = min(shards, len(ordered))
    groups: List[List[str]] = [[] for _ in range(shards)]
    for position, node in enumerate(ordered):
        groups[position % shards].append(node)
    return groups


class _InlineShard:
    """In-process shard: same protocol as :class:`ShardHost`, no pipe."""

    def __init__(self, system: System, firmware: FirmwareImage,
                 nodes: Sequence[str], latched: bool, net_delay_us: int,
                 record_capacity: Optional[int]) -> None:
        self.nodes = list(nodes)
        self._outbox: List[Publication] = []
        self._collected: Optional[List[Publication]] = None
        self.kernel = build_shard_kernel(system, firmware, nodes, latched,
                                         net_delay_us, record_capacity,
                                         self._outbox)

    def dispatch_run(self, t2: int,
                     injections: Sequence[Injection]) -> None:
        # in-process "dispatch" executes eagerly; collect() hands it over
        self._collected = run_shard_epoch(self.kernel, t2, injections,
                                          self._outbox)

    def collect(self) -> List[Publication]:
        collected, self._collected = self._collected, None
        if collected is None:
            raise FleetError("collect() without a dispatched epoch")
        return collected

    def run_to(self, t2: int,
               injections: Sequence[Injection]) -> List[Publication]:
        self.dispatch_run(t2, injections)
        return self.collect()

    def report(self) -> ShardReport:
        return shard_report(self.kernel)

    def close(self) -> None:
        pass


class _EpochItem:
    """One shard's epoch command as a schedulable work item.

    ``index`` doubles as the shard/slot number — the canonical result
    key of the scheduler's unit abstraction, exactly like a job spec's
    corpus index.
    """

    __slots__ = ("index", "t2", "injections")

    def __init__(self, index: int, t2: int,
                 injections: List[Injection]) -> None:
        self.index = index
        self.t2 = t2
        self.injections = injections


class _ShardBackend:
    """Scheduler backend over persistent shard hosts (or inline shards).

    Slot *i* is shard *i*; epoch units are pinned there because the
    shard's kernel state lives in that process. ``dispatch`` sends the
    epoch without waiting and ``poll`` collects every outstanding reply
    — all sends strictly before any receive, which is what makes one
    epoch's process shards execute concurrently. A dead shard raises
    from ``collect`` (persistent state is unrecoverable: a crashed
    shard is a diagnosis, not a retry candidate).
    """

    supports_steal = False
    supports_kill = False

    def __init__(self, shards: Sequence[object]) -> None:
        self.shards = list(shards)
        self.slot_count = len(self.shards)
        self._inflight: List[tuple] = []

    def dispatch(self, slot: int, uid: int, items: Sequence[object]) -> None:
        item = items[0]
        self.shards[slot].dispatch_run(item.t2, item.injections)
        self._inflight.append((slot, uid))

    def poll(self, timeout_s) -> List[tuple]:
        inflight, self._inflight = self._inflight, []
        events: List[tuple] = []
        for slot, uid in inflight:
            events.append(("result", slot, uid, self.shards[slot].collect()))
            events.append(("done", slot, uid))
        return events

    def close(self) -> None:
        pass


class ShardedDtmKernel:
    """DTM execution over node shards advancing in lookahead epochs."""

    BACKENDS = ("inline", "process")

    def __init__(
        self,
        system: System,
        firmware: Optional[FirmwareImage] = None,
        shards: int = 2,
        latched: bool = True,
        net_delay_us: int = 100,
        epoch_us: Optional[int] = None,
        record_capacity: Optional[int] = None,
        backend: str = "inline",
        system_ref: Optional[str] = None,
        plan: Optional[InstrumentationPlan] = None,
    ) -> None:
        if backend not in self.BACKENDS:
            raise FleetError(f"backend must be one of {self.BACKENDS}, "
                             f"got {backend!r}")
        self.system = system
        self.net_delay_us = net_delay_us
        self.partition = partition_nodes(system.nodes(), shards)
        multi_shard = len(self.partition) > 1
        if multi_shard and net_delay_us <= 0:
            raise SchedulerError(
                "multi-shard execution needs a positive network delay: "
                "the delay is the conservative-sync lookahead")
        self.epoch_us = epoch_us if epoch_us is not None else net_delay_us
        if multi_shard and not 0 < self.epoch_us <= net_delay_us:
            raise SchedulerError(
                f"epoch must be in (0, net_delay_us]; got epoch "
                f"{self.epoch_us} vs delay {net_delay_us}")
        if multi_shard:
            slow = [a.name for a in system.actors.values()
                    if a.task.period_us <= net_delay_us]
            if slow:
                raise SchedulerError(
                    f"sharded order parity needs every task period above the "
                    f"network delay ({net_delay_us}us); violating: {slow}")

        if backend == "process":
            if system_ref is None:
                raise FleetError(
                    "backend='process' rebuilds each shard in a worker: "
                    "pass system_ref='module:qualname' (and optionally a "
                    "plan) instead of live objects")
            plan = plan if plan is not None else InstrumentationPlan.none()
            self._shards: List[object] = [
                ShardHost(system_ref, plan, nodes, latched, net_delay_us,
                          record_capacity)
                for nodes in self.partition
            ]
        else:
            if firmware is None:
                firmware = generate_firmware(
                    system, plan if plan is not None
                    else InstrumentationPlan.none())
            self._shards = [
                _InlineShard(system, firmware, nodes, latched, net_delay_us,
                             record_capacity)
                for nodes in self.partition
            ]
        self.backend = backend
        #: epoch dispatch runs through the shared fleet scheduler core,
        #: one pinned single-item unit per shard per epoch
        self._sched = ElasticScheduler(_ShardBackend(self._shards))
        self._now = 0
        #: publications from the last epoch, not yet handed to the shards
        self._pending: List[List[Publication]] = [[] for _ in self._shards]
        self._closed = False

    # -- execution ---------------------------------------------------------

    def run(self, duration_us: int) -> None:
        """Advance all shards to *duration_us* in lockstep epochs."""
        if self._closed:
            raise FleetError("sharded kernel already closed")
        if duration_us < self._now:
            raise SchedulerError(
                f"cannot run backwards to {duration_us} from {self._now}")
        epoch = self.epoch_us if len(self._shards) > 1 else max(
            duration_us - self._now, 1)
        while self._now < duration_us:
            t2 = min(self._now + epoch, duration_us)
            units = []
            for i, pending in enumerate(self._pending):
                injections = [(t + self.net_delay_us, signal, value)
                              for t, _node, signal, value in pending]
                units.append(WorkUnit([_EpochItem(i, t2, injections)],
                                      pinned=i))
            by_shard = self._sched.run(units)
            harvested: List[List[Publication]] = [
                by_shard[i] for i in range(len(self._shards))]
            # Barrier: everything shard i published this epoch arrives at
            # every other shard next epoch, at t_publish + delay.
            self._pending = [
                [pub for j, pubs in enumerate(harvested) if j != i
                 for pub in pubs]
                for i in range(len(self._shards))
            ]
            self._now = t2

    # -- merged views ------------------------------------------------------

    def _reports(self) -> List[ShardReport]:
        return [shard.report() for shard in self._shards]

    @property
    def records(self) -> List[JobRecord]:
        """All shards' job records in canonical (release, actor, index)
        order — equal to the monolithic kernel's per-actor sequences."""
        merged = [record for report in self._reports()
                  for record in report.records]
        merged.sort(key=lambda r: (r.release, r.actor, r.index))
        return merged

    def records_for(self, actor_name: str) -> List[JobRecord]:
        """Completed/skipped job records of one actor."""
        return [r for r in self.records if r.actor == actor_name]

    @property
    def deadline_misses(self) -> int:
        return sum(report.deadline_misses for report in self._reports())

    @property
    def jobs_skipped(self) -> int:
        return sum(report.jobs_skipped for report in self._reports())

    @property
    def records_dropped(self) -> int:
        return sum(report.records_dropped for report in self._reports())

    @property
    def jitter(self) -> JitterMeter:
        """A merged jitter meter over all shards."""
        meter = JitterMeter()
        for report in self._reports():
            meter.load_records(report.jitter_records)
        return meter

    def signal_value(self, node: str, signal: str) -> int:
        """Current bus view of *signal* on *node* (its owning shard's).

        Only the owning shard is queried — on the process backend that
        is one pipe round trip, not a report from every worker.
        """
        for shard in self._shards:
            if node in shard.nodes:
                try:
                    return shard.report().views[node][signal]
                except KeyError:
                    raise SchedulerError(
                        f"no view of signal {signal!r} on node {node!r}"
                    ) from None
        raise SchedulerError(f"unknown node {node!r}")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop worker processes (no-op for the inline backend)."""
        if not self._closed:
            self._closed = True
            for shard in self._shards:
                shard.close()

    def __enter__(self) -> "ShardedDtmKernel":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<ShardedDtmKernel {len(self._shards)} shard(s) "
                f"{self.backend} t={self._now}us>")
