"""Distributed Timed Multitasking (DTM) runtime.

COMDES's execution model: actors run as periodic tasks under fixed-priority
preemptive scheduling; **inputs are latched at task release** and **outputs
become visible exactly at the deadline instant**, which removes I/O jitter
at both task and transaction level (paper §III). The ``latched`` switch
exists so the jitter-elimination claim can be measured as an ablation (E8).
"""

from repro.rtos.task import ActiveJob, JobRecord, LoadTask
from repro.rtos.scheduler import NodeScheduler
from repro.rtos.network import SignalBus
from repro.rtos.jitter import JitterMeter
from repro.rtos.kernel import DtmKernel
from repro.rtos.sharding import ShardedDtmKernel, partition_nodes

__all__ = [
    "ActiveJob", "JobRecord", "LoadTask",
    "NodeScheduler",
    "SignalBus",
    "JitterMeter",
    "DtmKernel",
    "ShardedDtmKernel", "partition_nodes",
]
