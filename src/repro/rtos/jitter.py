"""I/O jitter instrumentation.

The DTM claim (paper §III): latching outputs at the deadline instant
eliminates I/O jitter. The meter records, per signal, when each job was
released and when its output actually became visible; jitter is the spread
of that phase across jobs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class JitterMeter:
    """Records output publication instants per signal."""

    def __init__(self) -> None:
        self._records: Dict[str, List[Tuple[int, int]]] = {}

    def record(self, signal: str, release: int, t_publish: int) -> None:
        """Note that the job released at *release* published at *t_publish*."""
        self._records.setdefault(signal, []).append((release, t_publish))

    def export_records(self) -> Dict[str, List[Tuple[int, int]]]:
        """Plain-data snapshot of all samples (crosses process pipes)."""
        return {signal: list(samples)
                for signal, samples in self._records.items()}

    def load_records(self, records: Dict[str, List[Tuple[int, int]]]) -> None:
        """Absorb an :meth:`export_records` snapshot."""
        for signal, samples in records.items():
            merged = self._records.setdefault(signal, [])
            merged.extend(tuple(s) for s in samples)
            merged.sort()

    def signals(self) -> List[str]:
        """Signals with at least one record."""
        return sorted(self._records)

    def phases(self, signal: str, skip: int = 0) -> List[int]:
        """Publication phase (publish - release) of each job, after *skip*."""
        return [pub - rel for rel, pub in self._records.get(signal, [])[skip:]]

    def jitter_us(self, signal: str, skip: int = 0) -> Optional[int]:
        """Peak-to-peak phase variation; None if fewer than 2 samples."""
        phases = self.phases(signal, skip)
        if len(phases) < 2:
            return None
        return max(phases) - min(phases)

    def mean_phase_us(self, signal: str, skip: int = 0) -> Optional[float]:
        """Average publication phase."""
        phases = self.phases(signal, skip)
        if not phases:
            return None
        return sum(phases) / len(phases)

    def inter_publication_jitter_us(self, signal: str, skip: int = 0) -> Optional[int]:
        """Peak-to-peak variation of the interval between publications."""
        pubs = [pub for _, pub in self._records.get(signal, [])[skip:]]
        if len(pubs) < 3:
            return None
        intervals = [b - a for a, b in zip(pubs, pubs[1:])]
        return max(intervals) - min(intervals)
