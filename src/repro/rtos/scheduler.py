"""Fixed-priority preemptive scheduling of one node's CPU.

Event-driven: the scheduler only acts at releases and completions. Between
events the running job's remaining demand drains linearly, so a tentative
completion event is kept for the current job and re-planned whenever the
job set changes — the textbook technique for exact preemptive simulation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SchedulerError
from repro.rtos.task import ActiveJob
from repro.sim.kernel import ScheduledEvent, Simulator


class NodeScheduler:
    """Preemptive fixed-priority scheduler for one node."""

    def __init__(self, sim: Simulator, node: str) -> None:
        self.sim = sim
        self.node = node
        self._jobs: List[ActiveJob] = []
        self._running: Optional[ActiveJob] = None
        self._last_update: int = 0
        self._completion_event: Optional[ScheduledEvent] = None
        self.preemptions = 0
        self.jobs_completed = 0

    @property
    def busy(self) -> bool:
        """Whether any job is currently active on this node."""
        return bool(self._jobs)

    def release(self, job: ActiveJob) -> None:
        """Admit a job at the current simulation time."""
        if job.release != self.sim.now:
            raise SchedulerError(
                f"job {job.name} released at t={self.sim.now} but stamped "
                f"{job.release}"
            )
        self._update_progress()
        self._jobs.append(job)
        self._replan()

    def _update_progress(self) -> None:
        now = self.sim.now
        if self._running is not None:
            elapsed = now - self._last_update
            self._running.remaining_us -= elapsed
            if self._running.remaining_us < 0:
                raise SchedulerError(
                    f"job {self._running.name} overran its demand accounting"
                )
        self._last_update = now

    def _replan(self) -> None:
        """Pick the highest-priority job and (re)schedule its completion."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._jobs:
            self._running = None
            return
        best = min(self._jobs, key=ActiveJob.sort_key)
        if self._running is not None and best is not self._running:
            self.preemptions += 1
        self._running = best
        self._last_update = self.sim.now
        self._completion_event = self.sim.schedule(
            best.remaining_us, self._complete, best
        )

    def _complete(self, job: ActiveJob) -> None:
        self._update_progress()
        if job.remaining_us != 0:
            raise SchedulerError(
                f"job {job.name} completed with {job.remaining_us}us remaining"
            )
        self._jobs.remove(job)
        self._completion_event = None
        self._running = None
        job.completion = self.sim.now
        self.jobs_completed += 1
        if job.on_complete is not None:
            job.on_complete(self.sim.now)
        self._replan()
