"""Analytic response-time analysis (RTA) for fixed-priority task sets.

The classic Joseph & Pandya / Audsley recurrence:

    R_i = C_i + sum over higher-priority j of ceil(R_i / T_j) * C_j

iterated to a fixed point. Used as an independent oracle for the simulated
scheduler — measured worst-case response times must never exceed the
analytic bound (and the bound must be tight in the synchronous-release
critical instant the simulation can construct).
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Optional, Sequence

from repro.errors import SchedulerError


class AnalyzedTask(NamedTuple):
    """Inputs to the analysis: period, worst-case execution time, priority."""

    name: str
    period_us: int
    wcet_us: int
    priority: int          # smaller = more important
    deadline_us: Optional[int] = None

    @property
    def effective_deadline(self) -> int:
        return self.deadline_us if self.deadline_us is not None else self.period_us


class RtaResult(NamedTuple):
    """Per-task verdict."""

    task: AnalyzedTask
    response_us: Optional[int]   # None = unbounded (overload)
    schedulable: bool


def response_time(task: AnalyzedTask,
                  higher: Sequence[AnalyzedTask],
                  horizon_us: int = 10_000_000) -> Optional[int]:
    """Fixed point of the RTA recurrence; None if it exceeds the horizon."""
    if task.wcet_us <= 0:
        raise SchedulerError(f"task {task.name}: WCET must be positive")
    response = task.wcet_us
    while True:
        interference = sum(
            math.ceil(response / other.period_us) * other.wcet_us
            for other in higher
        )
        nxt = task.wcet_us + interference
        if nxt == response:
            return response
        if nxt > horizon_us:
            return None
        response = nxt


def analyze(tasks: Sequence[AnalyzedTask]) -> List[RtaResult]:
    """RTA for a whole task set (ties broken by declaration order)."""
    ordered = sorted(enumerate(tasks), key=lambda e: (e[1].priority, e[0]))
    results: Dict[str, RtaResult] = {}
    higher: List[AnalyzedTask] = []
    for _, task in ordered:
        response = response_time(task, higher)
        schedulable = (response is not None
                       and response <= task.effective_deadline)
        results[task.name] = RtaResult(task, response, schedulable)
        higher.append(task)
    return [results[t.name] for t in tasks]


def utilization(tasks: Sequence[AnalyzedTask]) -> float:
    """Total processor utilization sum(C/T)."""
    return sum(t.wcet_us / t.period_us for t in tasks)
