"""The distributed signal bus: non-blocking state messages between nodes.

Each node holds its own view of every signal (last value received). A
publication updates the producer's node immediately and other nodes after a
transport delay — the "network of distributed embedded actors communicating
by exchanging labeled messages" of the paper, at the fidelity the debugger
experiments need (who saw which value when).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ModelError
from repro.sim.kernel import Simulator

#: publication observer: (t_publish, producer_node, signal, value)
PublishHook = Callable[[int, str, str, int], None]


class SignalBus:
    """Per-node signal views with delayed cross-node propagation."""

    def __init__(self, sim: Simulator, nodes: Sequence[str],
                 signal_inits: Dict[str, int], net_delay_us: int = 100) -> None:
        if net_delay_us < 0:
            raise ModelError(f"net delay must be non-negative, got {net_delay_us}")
        self.sim = sim
        self.net_delay_us = net_delay_us
        self._views: Dict[str, Dict[str, int]] = {
            node: dict(signal_inits) for node in nodes
        }
        self.messages_sent = 0
        self.cross_node_messages = 0
        #: sharding tap: observes local publications so a sharded kernel
        #: can forward them to the other shards at the epoch barrier
        self.on_publish: Optional[PublishHook] = None

    def nodes(self) -> List[str]:
        """All node names with a view."""
        return list(self._views)

    def read(self, node: str, signal: str) -> int:
        """Read *signal* as currently visible on *node*."""
        try:
            return self._views[node][signal]
        except KeyError:
            raise ModelError(f"no view of signal {signal!r} on node {node!r}") from None

    def publish(self, producer_node: str, signal: str, value: int) -> None:
        """Publish a new value now; remote nodes see it after the delay."""
        if producer_node not in self._views:
            raise ModelError(f"unknown node {producer_node!r}")
        if self.on_publish is not None:
            self.on_publish(self.sim.now, producer_node, signal, value)
        self.messages_sent += 1
        self._views[producer_node][signal] = value
        for node in self._views:
            if node == producer_node:
                continue
            self.cross_node_messages += 1
            if self.net_delay_us == 0:
                self._views[node][signal] = value
            else:
                self.sim.schedule(self.net_delay_us, self._apply, node,
                                  signal, value)

    def _apply(self, node: str, signal: str, value: int) -> None:
        self._views[node][signal] = value

    def inject(self, signal: str, value: int) -> None:
        """Apply a remote shard's publication to every local view.

        The receive side of cross-shard exchange: by the time an epoch
        barrier forwards a publication here, every node in this bus is a
        *remote* node relative to the producer, so all views update at
        the scheduled arrival instant — exactly what
        :meth:`publish`'s delayed ``_apply`` would have done in a
        monolithic kernel. Does not re-fire :attr:`on_publish`.
        """
        for views in self._views.values():
            views[signal] = value

    def snapshot(self, node: str) -> Dict[str, int]:
        """Copy of one node's full signal view."""
        return dict(self._views[node])
