"""GMDF: Graphical Model Debugger Framework for embedded systems.

A full reproduction of Zeng, Guo & Angelov (DATE 2010): model-driven
debugging of embedded software at the *model* level. See README.md for the
architecture and DESIGN.md for the paper-to-module mapping.

Quickstart::

    from repro import DebugSession, traffic_light_system, ms

    session = DebugSession(traffic_light_system(), channel_kind="active")
    session.setup().run(ms(100) * 20)
    print(session.snapshot_ascii())      # active state highlighted
    print(session.timing_diagram().render_ascii())
"""

__version__ = "1.0.0"

# Modeling (COMDES DSL)
from repro.comdes.actor import Actor, TaskSpec
from repro.comdes.blocks import StateMachineFB
from repro.comdes.builder import SystemBuilder
from repro.comdes.dataflow import ComponentNetwork, Connection, PortRef
from repro.comdes.examples import (
    blinker_system,
    cruise_control_system,
    production_cell_system,
    traffic_light_system,
)
from repro.comdes.fsm import Assign, StateMachine, Transition
from repro.comdes.reflect import system_to_model
from repro.comdes.signals import Signal
from repro.comdes.system import System
from repro.comdes.validate import validate_system

# Code generation + target
from repro.codegen import InstrumentationPlan, generate_firmware
from repro.target.board import Board

# Communication
from repro.comm.channel import ActiveChannel, PassiveChannel, WatchSpec
from repro.comm.jtag import JtagProbe, TapController
from repro.comm.protocol import Command, CommandKind

# RTOS
from repro.rtos.kernel import DtmKernel
from repro.rtos.sharding import ShardedDtmKernel
from repro.rtos.task import LoadTask

# GDM + engine (the paper's contribution)
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.guide import AbstractionGuide
from repro.gdm.mapping import MappingRule, MappingTable, default_comdes_table
from repro.gdm.model import CommandBinding, GdmModel
from repro.gdm.patterns import PatternKind, PatternSpec
from repro.engine.breakpoints import (
    SignalConditionBreakpoint,
    StateEntryBreakpoint,
)
from repro.engine.classify import BugClass, classify_bug
from repro.engine.engine import DebuggerEngine, EngineState
from repro.engine.inspector import ModelInspector
from repro.engine.replay import ReplayPlayer
from repro.engine.session import DebugSession, TransportBudget
from repro.engine.timing_diagram import TimingDiagram
from repro.gdm.command_setup import CommandSetupDialog
from repro.gdm.store import load_gdm, save_gdm
from repro.rtos.analysis import AnalyzedTask, analyze

# Baseline + faults + fleet
from repro.debugger.gdb import SourceDebugger
from repro.faults import run_campaign
from repro.fleet import FleetRunner, SerialRunner

# Utilities
from repro.sim.kernel import Simulator
from repro.util.timeunits import ms, sec, us

__all__ = [
    "__version__",
    # modeling
    "Signal", "StateMachine", "Transition", "Assign", "StateMachineFB",
    "ComponentNetwork", "Connection", "PortRef", "Actor", "TaskSpec",
    "System", "SystemBuilder", "validate_system", "system_to_model",
    "blinker_system", "traffic_light_system", "cruise_control_system",
    "production_cell_system",
    # codegen + target
    "InstrumentationPlan", "generate_firmware", "Board",
    # comm
    "Command", "CommandKind", "ActiveChannel", "PassiveChannel", "WatchSpec",
    "TapController", "JtagProbe",
    # rtos
    "DtmKernel", "ShardedDtmKernel", "LoadTask",
    # gdm + engine
    "PatternKind", "PatternSpec", "MappingRule", "MappingTable",
    "default_comdes_table", "AbstractionGuide", "AbstractionEngine",
    "GdmModel", "CommandBinding", "DebuggerEngine", "EngineState",
    "StateEntryBreakpoint", "SignalConditionBreakpoint",
    "ReplayPlayer", "TimingDiagram", "DebugSession", "TransportBudget",
    "ModelInspector",
    "CommandSetupDialog", "save_gdm", "load_gdm",
    "BugClass", "classify_bug",
    "AnalyzedTask", "analyze",
    # baseline + faults + fleet
    "SourceDebugger", "run_campaign", "FleetRunner", "SerialRunner",
    # utilities
    "Simulator", "us", "ms", "sec",
]
