"""Discrete-event simulation kernel.

Everything time-dependent in the reproduction — the virtual target board, the
RS-232/JTAG links, the RTOS scheduler, the debugger engine — runs on this
kernel. Time is integer microseconds (see :mod:`repro.util.timeunits`).
"""

from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.rng import RngStreams

__all__ = ["Simulator", "ScheduledEvent", "RngStreams"]
