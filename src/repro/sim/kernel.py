"""Event-queue simulator.

A classic calendar-queue kernel: callbacks are scheduled at absolute integer
timestamps and executed in (time, insertion order) order. Insertion order as
the tie-breaker makes simultaneous events deterministic, which the trace and
replay machinery relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class ScheduledEvent:
    """Handle to a pending callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if already fired)."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time} seq={self.seq} {state}>"


class Simulator:
    """Discrete-event simulator with integer-microsecond time."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[ScheduledEvent] = []
        self._executed: int = 0

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule *fn(*args)* at absolute *time* (must not be in the past)."""
        if time < self._now:
            raise ValueError(f"cannot schedule at t={time} before now={self._now}")
        self._seq += 1
        event = ScheduledEvent(time, self._seq, fn, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule *fn(*args)* after *delay* microseconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, fn, *args)

    def every(self, period: int, fn: Callable[..., Any], *args: Any,
              start: Optional[int] = None) -> ScheduledEvent:
        """Schedule *fn* periodically; returns the handle of the *next* firing.

        Cancelling the returned handle only cancels the next occurrence, so
        periodic activities that must be stoppable should instead check a
        flag inside *fn*. The first firing is at *start* (default: now +
        period).
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        first = start if start is not None else self._now + period

        def tick(*tick_args: Any) -> None:
            fn(*tick_args)
            self.schedule(period, tick, *tick_args)

        return self.schedule_at(first, tick, *args)

    def step(self) -> bool:
        """Execute the next event; return False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            event.fn(*event.args)
            return True
        return False

    def run_until(self, time: int) -> int:
        """Run events with timestamp <= *time*; advance clock to *time*.

        Returns the number of events executed. Events scheduled during the
        run are honoured if they fall inside the horizon.
        """
        if time < self._now:
            raise ValueError(f"cannot run backwards to t={time} from now={self._now}")
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
            executed += 1
        self._now = time
        return executed

    def run(self, max_events: int = 1_000_000) -> int:
        """Run until the queue drains; guard against runaway self-scheduling."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
        return executed
