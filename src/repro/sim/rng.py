"""Named, seeded random-number streams.

Each consumer (workload generator, fault injector, interference load) draws
from its own stream derived from a master seed, so adding randomness to one
subsystem never perturbs another — a standard trick for reproducible
simulation studies.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A family of independent :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called *name*."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def reseed(self, master_seed: int) -> None:
        """Drop all streams and switch to a new master seed."""
        self.master_seed = master_seed
        self._streams.clear()
