"""End-to-end firmware generation and a lockstep execution harness.

``generate_firmware`` is the model transformation of Fig 1: COMDES system in,
firmware image out (optionally instrumented with the active command
interface). ``run_firmware_lockstep`` executes that firmware with the same
synchronous semantics as :meth:`System.lockstep_run`, which is how the test
suite proves generated code equals the reference interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.codegen.instrument import InstrumentationPlan
from repro.codegen.lower_blocks import GenContext, NetworkCodegen
from repro.comdes.system import System
from repro.comm.protocol import CommandKind
from repro.target.board import Board
from repro.target.firmware import FirmwareImage


def generate_firmware(system: System,
                      plan: Optional[InstrumentationPlan] = None,
                      name: Optional[str] = None) -> FirmwareImage:
    """Lower *system* to a firmware image, one task per actor."""
    plan = plan if plan is not None else InstrumentationPlan()
    ctx = GenContext(plan)
    entries: Dict[str, int] = {}

    # Declaration pass: actor I/O words first (stable low addresses help
    # when eyeballing memory dumps), then per-network symbols.
    generators: Dict[str, NetworkCodegen] = {}
    for actor in system.actors.values():
        input_symbols: Dict[str, str] = {}
        for port, signal in sorted(actor.inputs.items()):
            sym = f"{actor.name}.in.{port}"
            ctx.alloc(sym, "input", init=system.signals[signal].init)
            input_symbols[port] = sym
        for port, signal in sorted(actor.outputs.items()):
            ctx.alloc(f"{actor.name}.out.{port}", "output",
                      init=system.signals[signal].init)
        gen = NetworkCodegen(ctx, actor.network, actor.name, "", input_symbols)
        gen.declare()
        generators[actor.name] = gen
        if plan.task_markers:
            ctx.alloc(f"{actor.name}.~job", "scratch")
        if plan.signal_update:
            for port in sorted(actor.outputs):
                ctx.alloc(f"{actor.name}.~chg.{port}", "scratch")

    # Emission pass: one task per actor.
    for actor in system.actors.values():
        asm = ctx.asm
        gen = generators[actor.name]
        actor_path = f"actor:{actor.name}"
        entries[actor.name] = asm.position

        if plan.task_markers:
            job_addr = ctx.symbols.addr_of(f"{actor.name}.~job")
            asm.emit("LOAD", job_addr, src_path=actor_path)
            asm.emit("PUSH", 1, src_path=actor_path)
            asm.emit("ADD", src_path=actor_path)
            asm.emit("STORE", job_addr, src_path=actor_path)
            ctx.emit_command(CommandKind.TASK_START, actor_path,
                             value_addr=job_addr, src_path=actor_path)

        gen.emit_step()

        for port, signal in sorted(actor.outputs.items()):
            out_addr = ctx.symbols.addr_of(f"{actor.name}.out.{port}")
            src_addr = ctx.symbols.addr_of(gen.output_symbol(port))
            signal_path = f"signal:{signal}"
            if plan.signal_update:
                chg_addr = ctx.symbols.addr_of(f"{actor.name}.~chg.{port}")
                skip = asm.fresh_label(f"{actor.name}_{port}_skip")
                asm.emit("LOAD", out_addr, src_path=signal_path)   # previous
                asm.emit("LOAD", src_addr, src_path=signal_path)   # new
                asm.emit("NE", src_path=signal_path)
                asm.emit("STORE", chg_addr, src_path=signal_path)
                asm.emit("LOAD", src_addr, src_path=signal_path)
                asm.emit("STORE", out_addr, src_path=signal_path)
                asm.emit("LOAD", chg_addr, src_path=signal_path)
                asm.emit_jump("JZ", skip, src_path=signal_path)
                ctx.emit_command(CommandKind.SIG_UPDATE, signal_path,
                                 value_addr=out_addr, src_path=signal_path)
                asm.label(skip)
            else:
                asm.emit("LOAD", src_addr, src_path=signal_path)
                asm.emit("STORE", out_addr, src_path=signal_path)

        if plan.task_markers:
            job_addr = ctx.symbols.addr_of(f"{actor.name}.~job")
            ctx.emit_command(CommandKind.TASK_END, actor_path,
                             value_addr=job_addr, src_path=actor_path)
        asm.emit("HALT", src_path=actor_path)

    return FirmwareImage(
        name=name or f"{system.name}_fw",
        code=ctx.asm.assemble(),
        entries=entries,
        symbols=ctx.symbols,
        data_init=ctx.data_init,
        path_table=ctx.paths.table(),
    )


def run_firmware_lockstep(
    system: System,
    firmware: FirmwareImage,
    rounds: int,
    board: Optional[Board] = None,
    overrides: Mapping[str, Sequence[int]] = None,
) -> List[Dict[str, int]]:
    """Execute firmware with lockstep semantics matching ``System.lockstep_run``.

    Each round: write latched inputs from the signal board snapshot, run each
    actor's task on the CPU (priority order), then publish all outputs. The
    returned per-round signal histories are directly comparable with the
    reference interpreter's.
    """
    overrides = overrides or {}
    board = board if board is not None else Board()
    board.load_firmware(firmware)
    signal_board = system.initial_board()
    order = sorted(system.actors.values(), key=lambda a: (a.task.priority, a.name))
    history: List[Dict[str, int]] = []

    for round_index in range(rounds):
        for signal_name, values in overrides.items():
            if round_index < len(values):
                signal_board[signal_name] = values[round_index]
        snapshot = dict(signal_board)
        pending: Dict[str, int] = {}
        for actor in order:
            for port, signal in actor.inputs.items():
                addr = firmware.symbols.addr_of(f"{actor.name}.in.{port}")
                board.memory.poke(addr, snapshot[signal])
            board.run_task(actor.name)
            for port, signal in actor.outputs.items():
                addr = firmware.symbols.addr_of(f"{actor.name}.out.{port}")
                pending[signal] = board.memory.peek(addr)
        signal_board.update(pending)
        history.append(dict(signal_board))
    return history
