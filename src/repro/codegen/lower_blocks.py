"""Network and block lowering.

Generated code replays the interpreter's three phases in the same order
(Moore outputs, Mealy blocks in combinational order, Moore state advances),
so firmware and reference interpreter stay step-for-step equivalent — the
precondition for the paper's premise that a *correct* code generator leaves
only design errors for the model debugger to find.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.comdes.blocks import (
    AbsFB,
    AddFB,
    CompareFB,
    ConstantFB,
    CounterFB,
    DelayFB,
    EdgeDetectFB,
    EmaFB,
    FunctionBlock,
    GainFB,
    IntegratorFB,
    LimiterFB,
    MulFB,
    MuxFB,
    PiFB,
    SequenceFB,
    StateMachineFB,
    SubFB,
    ThresholdFB,
)
from repro.comdes.composite import CompositeFB
from repro.comdes.dataflow import ComponentNetwork
from repro.comdes.modal import ModalFB
from repro.codegen.lower_expr import lower_expr
from repro.comm.protocol import CommandKind
from repro.errors import CodegenError
from repro.target.assembler import Assembler
from repro.target.firmware import SymbolTable

_COMPARE_OPCODE = {"eq": "EQ", "ne": "NE", "lt": "LT",
                   "le": "LE", "gt": "GT", "ge": "GE"}


class PathRegistry:
    """Assigns compact numeric ids to model-element paths for the wire."""

    def __init__(self) -> None:
        self._by_path: Dict[str, int] = {}
        self._by_id: Dict[int, str] = {}

    def id_of(self, path: str) -> int:
        """Return (allocating if needed) the id of *path*."""
        if path not in self._by_path:
            next_id = len(self._by_path) + 1
            self._by_path[path] = next_id
            self._by_id[next_id] = path
        return self._by_path[path]

    def table(self) -> Dict[int, str]:
        """id -> path mapping for the firmware image."""
        return dict(self._by_id)


class GenContext:
    """Shared state of one firmware generation run."""

    def __init__(self, plan) -> None:
        self.asm = Assembler()
        self.symbols = SymbolTable()
        self.paths = PathRegistry()
        self.plan = plan
        self.data_init: Dict[int, int] = {}

    def alloc(self, name: str, kind: str, init: int = 0) -> int:
        """Allocate a symbol, record its initial value, return its address."""
        symbol = self.symbols.allocate(name, kind)
        if init != 0:
            self.data_init[symbol.addr] = init
        return symbol.addr

    def emit_command(self, kind: CommandKind, path: str,
                     value_already_on_stack: bool = False,
                     value_addr: int = None, value_imm: int = None,
                     src_path: str = None) -> None:
        """Emit the EMIT sequence: PUSH id, <value>, EMIT kind."""
        self.asm.emit("PUSH", self.paths.id_of(path), src_path=src_path)
        if value_already_on_stack:
            # id must be below the value: the caller left the value on top,
            # so swap after pushing the id.
            self.asm.emit("SWAP", src_path=src_path)
        elif value_addr is not None:
            self.asm.emit("LOAD", value_addr, src_path=src_path)
        else:
            self.asm.emit("PUSH", value_imm or 0, src_path=src_path)
        self.asm.emit("EMIT", int(kind), src_path=src_path)


class NetworkCodegen:
    """Lowers one component network (recursively for modal/composite blocks).

    ``input_symbols`` maps each network-level input port to the RAM symbol
    holding its value (for the top-level network these are the actor's
    latched input words).
    """

    def __init__(self, ctx: GenContext, network: ComponentNetwork,
                 actor_name: str, scope: str,
                 input_symbols: Dict[str, str]) -> None:
        self.ctx = ctx
        self.network = network
        self.actor_name = actor_name
        self.scope = scope
        self.input_symbols = dict(input_symbols)
        missing = set(network.input_ports) - set(self.input_symbols)
        if missing:
            raise CodegenError(
                f"network {network.name}: no input symbols for {sorted(missing)}"
            )
        self._resolution: Dict[Tuple[str, str], str] = {}
        self._children: Dict[str, "NetworkCodegen"] = {}
        self._declared = False

    # -- naming ------------------------------------------------------------

    def _prefix(self) -> str:
        return (f"{self.actor_name}.{self.scope}" if self.scope
                else self.actor_name)

    def port_symbol(self, block: str, port: str) -> str:
        """Symbol name of a block output port."""
        return f"{self._prefix()}.{block}.{port}"

    def state_symbol(self, block: str, var: str) -> str:
        """Symbol name of a block state variable."""
        return f"{self._prefix()}.{block}.${var}"

    def scratch_symbol(self, block: str, tag: str) -> str:
        """Symbol name of a compiler temporary."""
        return f"{self._prefix()}.{block}.~{tag}"

    def block_scope(self, block: FunctionBlock) -> str:
        """Scope string matching :mod:`repro.comdes.reflect` path conventions."""
        return f"{self.scope}.{block.name}" if self.scope else block.name

    def output_symbol(self, net_port: str) -> str:
        """Symbol holding a network output port's value after a step."""
        ref = self.network.output_ports[net_port]
        return self.port_symbol(ref.block, ref.port)

    def input_driver(self, block: FunctionBlock, port: str) -> str:
        """Symbol feeding a block input port."""
        try:
            return self._resolution[(block.name, port)]
        except KeyError:
            raise CodegenError(
                f"network {self.network.name}: no driver for "
                f"{block.name}.{port}"
            ) from None

    def _addr(self, symbol_name: str) -> int:
        return self.ctx.symbols.addr_of(symbol_name)

    # -- declaration pass ---------------------------------------------------

    def declare(self) -> None:
        """Allocate all symbols (recursively) before any code references them."""
        if self._declared:
            raise CodegenError(f"network {self.network.name} declared twice")
        self._declared = True

        for conn in self.network.connections:
            self._resolution[(conn.dst.block, conn.dst.port)] = (
                self.port_symbol(conn.src.block, conn.src.port)
            )
        for net_port, dsts in self.network.input_ports.items():
            for dst in dsts:
                self._resolution[(dst.block, dst.port)] = (
                    self.input_symbols[net_port]
                )

        for block in self.network.blocks:
            self._declare_block(block)

    def _declare_block(self, block: FunctionBlock) -> None:
        ctx = self.ctx
        persistent_outputs = isinstance(block, (StateMachineFB, ModalFB))
        out_kind = "state" if persistent_outputs else "scratch"
        for port in block.outputs:
            ctx.alloc(self.port_symbol(block.name, port), out_kind)

        if isinstance(block, StateMachineFB):
            machine = block.machine
            ctx.alloc(self.state_symbol(block.name, "_state"), "state",
                      init=machine.states.index(machine.initial))
            for var, init in machine.variables.items():
                ctx.alloc(self.state_symbol(block.name, var), "state", init=init)
        elif isinstance(block, ModalFB):
            ctx.alloc(self.scratch_symbol(block.name, "idx"), "scratch")
            for mode in block.modes:
                inner_inputs = {
                    port: self.input_driver(block, port)
                    for port in block.data_inputs
                }
                child = NetworkCodegen(
                    ctx, mode.network, self.actor_name,
                    f"{self.block_scope(block)}.{mode.name}", inner_inputs,
                )
                child.declare()
                self._children[f"{block.name}.{mode.name}"] = child
        elif isinstance(block, CompositeFB):
            inner_inputs = {
                port: self.input_driver(block, port) for port in block.inputs
            }
            child = NetworkCodegen(
                ctx, block.network, self.actor_name,
                self.block_scope(block), inner_inputs,
            )
            child.declare()
            self._children[block.name] = child
        elif isinstance(block, DelayFB):
            ctx.alloc(self.state_symbol(block.name, "z"), "state", init=block.init)
        elif isinstance(block, SequenceFB):
            ctx.alloc(self.state_symbol(block.name, "idx"), "state")
            for i, value in enumerate(block.values):
                ctx.alloc(f"{self._prefix()}.{block.name}.#{i}", "state",
                          init=value)
        elif isinstance(block, ThresholdFB):
            ctx.alloc(self.state_symbol(block.name, "on"), "state")
        elif isinstance(block, IntegratorFB):
            ctx.alloc(self.state_symbol(block.name, "acc"), "state",
                      init=block.init)
        elif isinstance(block, PiFB):
            ctx.alloc(self.state_symbol(block.name, "acc"), "state")
        elif isinstance(block, EmaFB):
            ctx.alloc(self.state_symbol(block.name, "avg"), "state",
                      init=block.init)
        elif isinstance(block, CounterFB):
            ctx.alloc(self.state_symbol(block.name, "count"), "state")
            ctx.alloc(self.state_symbol(block.name, "prev"), "state")
        elif isinstance(block, EdgeDetectFB):
            ctx.alloc(self.state_symbol(block.name, "prev"), "state")

    # -- emission pass ----------------------------------------------------

    def emit_step(self) -> None:
        """Emit code for one synchronous step of this network."""
        if not self._declared:
            raise CodegenError(f"network {self.network.name}: declare() first")
        moore = sorted((b for b in self.network.blocks if b.is_moore),
                       key=lambda b: b.name)
        for block in moore:
            self._emit_moore_output(block)
        for block in self.network._topo:
            self._emit_mealy(block)
        for block in moore:
            self._emit_moore_advance(block)

    # Moore phase ----------------------------------------------------------

    def _emit_moore_output(self, block: FunctionBlock) -> None:
        asm = self.ctx.asm
        src = f"block:{self.actor_name}.{self.block_scope(block)}"
        y_addr = self._addr(self.port_symbol(block.name, "y"))
        if isinstance(block, ConstantFB):
            asm.emit("PUSH", block.value, src_path=src)
            asm.emit("STORE", y_addr, src_path=src)
        elif isinstance(block, DelayFB):
            asm.emit("LOAD", self._addr(self.state_symbol(block.name, "z")),
                     src_path=src)
            asm.emit("STORE", y_addr, src_path=src)
        elif isinstance(block, SequenceFB):
            base = self._addr(f"{self._prefix()}.{block.name}.#0")
            asm.emit("LOAD", self._addr(self.state_symbol(block.name, "idx")),
                     src_path=src)
            asm.emit("PUSH", base, src_path=src)
            asm.emit("ADD", src_path=src)
            asm.emit("LDI", src_path=src)
            asm.emit("STORE", y_addr, src_path=src)
        else:
            raise CodegenError(f"no Moore-output lowering for {block.kind!r}")

    def _emit_moore_advance(self, block: FunctionBlock) -> None:
        asm = self.ctx.asm
        src = f"block:{self.actor_name}.{self.block_scope(block)}"
        if isinstance(block, ConstantFB):
            return
        if isinstance(block, DelayFB):
            asm.emit("LOAD", self._addr(self.input_driver(block, "u")),
                     src_path=src)
            asm.emit("STORE", self._addr(self.state_symbol(block.name, "z")),
                     src_path=src)
        elif isinstance(block, SequenceFB):
            idx_addr = self._addr(self.state_symbol(block.name, "idx"))
            asm.emit("LOAD", idx_addr, src_path=src)
            asm.emit("PUSH", 1, src_path=src)
            asm.emit("ADD", src_path=src)
            if block.repeat:
                asm.emit("PUSH", len(block.values), src_path=src)
                asm.emit("MOD", src_path=src)
            else:
                asm.emit("PUSH", len(block.values) - 1, src_path=src)
                asm.emit("MIN", src_path=src)
            asm.emit("STORE", idx_addr, src_path=src)
        else:
            raise CodegenError(f"no Moore-advance lowering for {block.kind!r}")

    # Mealy phase ------------------------------------------------------------

    def _emit_mealy(self, block: FunctionBlock) -> None:
        if isinstance(block, StateMachineFB):
            self._emit_state_machine(block)
        elif isinstance(block, ModalFB):
            self._emit_modal(block)
        elif isinstance(block, CompositeFB):
            self._emit_composite(block)
        else:
            self._emit_basic(block)

    def _emit_basic(self, block: FunctionBlock) -> None:
        asm = self.ctx.asm
        src = f"block:{self.actor_name}.{self.block_scope(block)}"
        y_addr = self._addr(self.port_symbol(block.name, "y"))

        def load(port: str) -> None:
            asm.emit("LOAD", self._addr(self.input_driver(block, port)),
                     src_path=src)

        if isinstance(block, GainFB):
            load("u")
            asm.emit("PUSH", block.num, src_path=src)
            asm.emit("MUL", src_path=src)
            asm.emit("PUSH", block.den, src_path=src)
            asm.emit("DIV", src_path=src)
        elif isinstance(block, AddFB):
            load("a")
            load("b")
            asm.emit("ADD", src_path=src)
        elif isinstance(block, SubFB):
            load("a")
            load("b")
            asm.emit("SUB", src_path=src)
        elif isinstance(block, MulFB):
            load("a")
            load("b")
            asm.emit("MUL", src_path=src)
        elif isinstance(block, CompareFB):
            load("a")
            load("b")
            asm.emit(_COMPARE_OPCODE[block.op], src_path=src)
        elif isinstance(block, LimiterFB):
            load("u")
            asm.emit("PUSH", block.lo, src_path=src)
            asm.emit("MAX", src_path=src)
            asm.emit("PUSH", block.hi, src_path=src)
            asm.emit("MIN", src_path=src)
        elif isinstance(block, MuxFB):
            label_b = asm.fresh_label("mux_b")
            label_end = asm.fresh_label("mux_end")
            load("sel")
            asm.emit_jump("JZ", label_b, src_path=src)
            load("a")
            asm.emit_jump("JMP", label_end, src_path=src)
            asm.label(label_b)
            load("b")
            asm.label(label_end)
        elif isinstance(block, ThresholdFB):
            on_addr = self._addr(self.state_symbol(block.name, "on"))
            load("u")
            asm.emit("PUSH", block.limit, src_path=src)
            asm.emit("LOAD", on_addr, src_path=src)
            asm.emit("PUSH", block.hysteresis, src_path=src)
            asm.emit("MUL", src_path=src)
            asm.emit("SUB", src_path=src)      # limit - on*hysteresis
            asm.emit("GE", src_path=src)
            asm.emit("DUP", src_path=src)
            asm.emit("STORE", on_addr, src_path=src)
        elif isinstance(block, IntegratorFB):
            acc_addr = self._addr(self.state_symbol(block.name, "acc"))
            asm.emit("LOAD", acc_addr, src_path=src)
            load("u")
            asm.emit("PUSH", block.num, src_path=src)
            asm.emit("MUL", src_path=src)
            asm.emit("PUSH", block.den, src_path=src)
            asm.emit("DIV", src_path=src)
            asm.emit("ADD", src_path=src)
            asm.emit("PUSH", block.lo, src_path=src)
            asm.emit("MAX", src_path=src)
            asm.emit("PUSH", block.hi, src_path=src)
            asm.emit("MIN", src_path=src)
            asm.emit("DUP", src_path=src)
            asm.emit("STORE", acc_addr, src_path=src)
        elif isinstance(block, AbsFB):
            label_pos = asm.fresh_label(f"{block.name}_pos")
            load("u")
            asm.emit("DUP", src_path=src)
            asm.emit("PUSH", 0, src_path=src)
            asm.emit("LT", src_path=src)
            asm.emit_jump("JZ", label_pos, src_path=src)
            asm.emit("NEG", src_path=src)
            asm.label(label_pos)
        elif isinstance(block, EmaFB):
            avg_addr = self._addr(self.state_symbol(block.name, "avg"))
            asm.emit("LOAD", avg_addr, src_path=src)
            load("u")
            asm.emit("LOAD", avg_addr, src_path=src)
            asm.emit("SUB", src_path=src)
            asm.emit("PUSH", block.num, src_path=src)
            asm.emit("MUL", src_path=src)
            asm.emit("PUSH", block.den, src_path=src)
            asm.emit("DIV", src_path=src)
            asm.emit("ADD", src_path=src)
            asm.emit("DUP", src_path=src)
            asm.emit("STORE", avg_addr, src_path=src)
        elif isinstance(block, CounterFB):
            count_addr = self._addr(self.state_symbol(block.name, "count"))
            prev_addr = self._addr(self.state_symbol(block.name, "prev"))
            label_norst = asm.fresh_label(f"{block.name}_norst")
            label_update = asm.fresh_label(f"{block.name}_upd")
            label_noedge = asm.fresh_label(f"{block.name}_noedge")
            # rst wins: count = 0
            load("rst")
            asm.emit_jump("JZ", label_norst, src_path=src)
            asm.emit("PUSH", 0, src_path=src)
            asm.emit("STORE", count_addr, src_path=src)
            asm.emit_jump("JMP", label_update, src_path=src)
            asm.label(label_norst)
            # rising = (prev == 0) and (inc != 0)
            asm.emit("LOAD", prev_addr, src_path=src)
            asm.emit("PUSH", 0, src_path=src)
            asm.emit("EQ", src_path=src)
            load("inc")
            asm.emit("PUSH", 0, src_path=src)
            asm.emit("NE", src_path=src)
            asm.emit("AND", src_path=src)
            asm.emit_jump("JZ", label_noedge, src_path=src)
            asm.emit("LOAD", count_addr, src_path=src)
            asm.emit("PUSH", 1, src_path=src)
            asm.emit("ADD", src_path=src)
            if block.modulus:
                asm.emit("PUSH", block.modulus, src_path=src)
                asm.emit("MOD", src_path=src)
            asm.emit("STORE", count_addr, src_path=src)
            asm.label(label_noedge)
            asm.label(label_update)
            load("inc")
            asm.emit("PUSH", 0, src_path=src)
            asm.emit("NE", src_path=src)
            asm.emit("STORE", prev_addr, src_path=src)
            asm.emit("LOAD", count_addr, src_path=src)
        elif isinstance(block, EdgeDetectFB):
            prev_addr = self._addr(self.state_symbol(block.name, "prev"))
            # y = (prev == 0) and (u != 0), using the OLD prev.
            asm.emit("LOAD", prev_addr, src_path=src)
            asm.emit("PUSH", 0, src_path=src)
            asm.emit("EQ", src_path=src)
            load("u")
            asm.emit("PUSH", 0, src_path=src)
            asm.emit("NE", src_path=src)
            asm.emit("AND", src_path=src)
            # prev = (u != 0)
            load("u")
            asm.emit("PUSH", 0, src_path=src)
            asm.emit("NE", src_path=src)
            asm.emit("STORE", prev_addr, src_path=src)
        elif isinstance(block, PiFB):
            acc_addr = self._addr(self.state_symbol(block.name, "acc"))
            # acc' = clamp(acc + e*ki)
            asm.emit("LOAD", acc_addr, src_path=src)
            load("e")
            asm.emit("PUSH", block.ki_num, src_path=src)
            asm.emit("MUL", src_path=src)
            asm.emit("PUSH", block.ki_den, src_path=src)
            asm.emit("DIV", src_path=src)
            asm.emit("ADD", src_path=src)
            asm.emit("PUSH", block.lo, src_path=src)
            asm.emit("MAX", src_path=src)
            asm.emit("PUSH", block.hi, src_path=src)
            asm.emit("MIN", src_path=src)
            asm.emit("DUP", src_path=src)
            asm.emit("STORE", acc_addr, src_path=src)
            # y = clamp(e*kp + acc')
            load("e")
            asm.emit("PUSH", block.kp_num, src_path=src)
            asm.emit("MUL", src_path=src)
            asm.emit("PUSH", block.kp_den, src_path=src)
            asm.emit("DIV", src_path=src)
            asm.emit("ADD", src_path=src)
            asm.emit("PUSH", block.lo, src_path=src)
            asm.emit("MAX", src_path=src)
            asm.emit("PUSH", block.hi, src_path=src)
            asm.emit("MIN", src_path=src)
        else:
            raise CodegenError(f"no lowering for block kind {block.kind!r}")
        asm.emit("STORE", y_addr, src_path=src)

    # state machine ---------------------------------------------------------

    def _emit_state_machine(self, block: StateMachineFB) -> None:
        asm = self.ctx.asm
        plan = self.ctx.plan
        machine = block.machine
        scope = self.block_scope(block)
        state_addr = self._addr(self.state_symbol(block.name, "_state"))

        def resolve(name: str) -> int:
            if name in machine.inputs:
                return self._addr(self.input_driver(block, name))
            if name in machine.outputs:
                return self._addr(self.port_symbol(block.name, name))
            return self._addr(self.state_symbol(block.name, name))

        label_done = asm.fresh_label(f"{block.name}_done")
        state_labels = {
            state: asm.fresh_label(f"{block.name}_{state}")
            for state in machine.states
        }

        # Dispatch on the current state index.
        for index, state in enumerate(machine.states):
            src = f"sm:{self.actor_name}.{scope}"
            asm.emit("LOAD", state_addr, src_path=src)
            asm.emit("PUSH", index, src_path=src)
            asm.emit("EQ", src_path=src)
            asm.emit_jump("JNZ", state_labels[state], src_path=src)
        asm.emit_jump("JMP", label_done)

        indexed = list(enumerate(machine.transitions))
        for state in machine.states:
            asm.label(state_labels[state])
            for t_index, transition in indexed:
                if transition.source != state:
                    continue
                t_path = (f"trans:{self.actor_name}.{scope}."
                          f"{t_index}.{transition.source}->{transition.target}")
                label_next = asm.fresh_label(f"{block.name}_t{t_index}_next")
                lower_expr(asm, transition.guard, resolve, src_path=t_path)
                asm.emit_jump("JZ", label_next, src_path=t_path)
                for action in transition.actions:
                    lower_expr(asm, action.expr, resolve, src_path=t_path)
                    asm.emit("STORE", resolve(action.target), src_path=t_path)
                target_index = machine.states.index(transition.target)
                asm.emit("PUSH", target_index, src_path=t_path)
                asm.emit("STORE", state_addr, src_path=t_path)
                if plan.transitions:
                    self.ctx.emit_command(
                        CommandKind.TRANS_FIRED, t_path,
                        value_imm=t_index, src_path=t_path,
                    )
                is_self_loop = transition.target == transition.source
                if plan.state_enter and (plan.self_loops or not is_self_loop):
                    target_path = (f"state:{self.actor_name}.{scope}."
                                   f"{transition.target}")
                    self.ctx.emit_command(
                        CommandKind.STATE_ENTER, target_path,
                        value_imm=target_index, src_path=t_path,
                    )
                asm.emit_jump("JMP", label_done, src_path=t_path)
                asm.label(label_next)
            asm.emit_jump("JMP", label_done)
        asm.label(label_done)

    # modal / composite -----------------------------------------------------

    def _emit_modal(self, block: ModalFB) -> None:
        asm = self.ctx.asm
        src = f"block:{self.actor_name}.{self.block_scope(block)}"
        idx_addr = self._addr(self.scratch_symbol(block.name, "idx"))
        sel_addr = self._addr(self.input_driver(block, "mode"))

        asm.emit("LOAD", sel_addr, src_path=src)
        asm.emit("PUSH", 0, src_path=src)
        asm.emit("MAX", src_path=src)
        asm.emit("PUSH", len(block.modes) - 1, src_path=src)
        asm.emit("MIN", src_path=src)
        asm.emit("STORE", idx_addr, src_path=src)

        label_end = asm.fresh_label(f"{block.name}_end")
        mode_labels = {
            mode.name: asm.fresh_label(f"{block.name}_{mode.name}")
            for mode in block.modes
        }
        for index, mode in enumerate(block.modes):
            asm.emit("LOAD", idx_addr, src_path=src)
            asm.emit("PUSH", index, src_path=src)
            asm.emit("EQ", src_path=src)
            asm.emit_jump("JNZ", mode_labels[mode.name], src_path=src)
        asm.emit_jump("JMP", label_end, src_path=src)

        for mode in block.modes:
            asm.label(mode_labels[mode.name])
            child = self._children[f"{block.name}.{mode.name}"]
            child.emit_step()
            for port in block.outputs:
                asm.emit("LOAD", self._addr(child.output_symbol(port)),
                         src_path=src)
                asm.emit("STORE",
                         self._addr(self.port_symbol(block.name, port)),
                         src_path=src)
            asm.emit_jump("JMP", label_end, src_path=src)
        asm.label(label_end)

    def _emit_composite(self, block: CompositeFB) -> None:
        asm = self.ctx.asm
        src = f"block:{self.actor_name}.{self.block_scope(block)}"
        child = self._children[block.name]
        child.emit_step()
        for port in block.outputs:
            asm.emit("LOAD", self._addr(child.output_symbol(port)),
                     src_path=src)
            asm.emit("STORE", self._addr(self.port_symbol(block.name, port)),
                     src_path=src)
