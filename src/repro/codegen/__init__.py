"""Model-to-code transformation (the MDD "model transformation" box, Fig 1).

Lowers a COMDES system to firmware for the virtual target. The generator can
weave in the **active command interface**: EMIT instructions that send debug
commands (state entries, signal updates, task markers) over the UART, as
selected by an :class:`~repro.codegen.instrument.InstrumentationPlan`. With
an empty plan the generated code is byte-identical to production firmware —
the baseline for the instrumentation-overhead experiment (E7).
"""

from repro.codegen.instrument import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware, run_firmware_lockstep

__all__ = ["InstrumentationPlan", "generate_firmware", "run_firmware_lockstep"]
