"""Expression lowering: guard/action ASTs -> stack code.

Post-order traversal; each node leaves exactly one value on the stack.
The differential property tests in ``tests/test_codegen_diff.py`` check the
compiled code agrees with :meth:`Expr.eval` on random expressions.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.comdes.expr import Binary, Const, Expr, Unary, Var
from repro.errors import CodegenError
from repro.target.assembler import Assembler

#: expression operator -> CPU opcode
_BINARY_OPCODE = {
    "add": "ADD", "sub": "SUB", "mul": "MUL", "div": "DIV", "mod": "MOD",
    "min": "MIN", "max": "MAX", "and": "AND", "or": "OR",
    "eq": "EQ", "ne": "NE", "lt": "LT", "le": "LE", "gt": "GT", "ge": "GE",
}

_UNARY_OPCODE = {"neg": "NEG", "not": "NOT"}

#: resolver signature: variable name -> RAM address
AddrResolver = Callable[[str], int]


def lower_expr(asm: Assembler, expr: Expr, resolve: AddrResolver,
               src_path: Optional[str] = None) -> None:
    """Emit code that leaves ``expr``'s value on top of the stack."""
    if isinstance(expr, Const):
        asm.emit("PUSH", expr.value, src_path=src_path)
    elif isinstance(expr, Var):
        asm.emit("LOAD", resolve(expr.name), src_path=src_path)
    elif isinstance(expr, Unary):
        lower_expr(asm, expr.operand, resolve, src_path)
        asm.emit(_UNARY_OPCODE[expr.op], src_path=src_path)
    elif isinstance(expr, Binary):
        lower_expr(asm, expr.left, resolve, src_path)
        lower_expr(asm, expr.right, resolve, src_path)
        asm.emit(_BINARY_OPCODE[expr.op], src_path=src_path)
    else:
        raise CodegenError(f"cannot lower expression node {type(expr).__name__}")
