"""Instrumentation plans for the active command interface.

The paper's active solution has "the application code itself send out
commands by means of extra functional codes". A plan selects which model
events get an EMIT in the generated code; the empty plan generates clean
production code (what the passive JTAG channel debugs).
"""

from __future__ import annotations


class InstrumentationPlan:
    """Which debug commands the generated code emits."""

    def __init__(self, state_enter: bool = True, signal_update: bool = True,
                 transitions: bool = False, task_markers: bool = False,
                 self_loops: bool = False) -> None:
        self.state_enter = state_enter
        self.signal_update = signal_update
        self.transitions = transitions
        self.task_markers = task_markers
        #: also emit STATE_ENTER for self-loop transitions (noisy; off by default)
        self.self_loops = self_loops

    @classmethod
    def none(cls) -> "InstrumentationPlan":
        """No instrumentation at all — clean production code."""
        return cls(state_enter=False, signal_update=False,
                   transitions=False, task_markers=False)

    @classmethod
    def full(cls) -> "InstrumentationPlan":
        """Every event instrumented (including transitions and task markers)."""
        return cls(state_enter=True, signal_update=True,
                   transitions=True, task_markers=True)

    @property
    def any_enabled(self) -> bool:
        """Whether this plan emits anything."""
        return (self.state_enter or self.signal_update
                or self.transitions or self.task_markers)

    def __repr__(self) -> str:
        flags = [name for name in ("state_enter", "signal_update",
                                   "transitions", "task_markers", "self_loops")
                 if getattr(self, name)]
        return f"<InstrumentationPlan {'+'.join(flags) or 'none'}>"
