"""A source-level debugger over the virtual target.

Works the way GDB does on an embedded board: code breakpoints at
instruction addresses (settable from the source map, i.e. "break on this
model element's code"), a small number of *hardware* watchpoints on data
words, single-stepping, and symbol inspection. It deliberately knows
nothing about models — it is the code-level baseline.

Memory inspection routes through a :class:`~repro.comm.link.DebugLink`
(default: the zero-cost in-process :class:`~repro.comm.link.DirectLink`),
so pointing the same debugger at a JTAG link prices every ``inspect`` as
a real probe transaction — and ``inspect_many`` batches a whole variable
view into one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.comm.link import DebugLink, DirectLink
from repro.debugger.watch import Watchpoint
from repro.errors import DebuggerError
from repro.target.assembler import disassemble
from repro.target.board import Board
from repro.target.cpu import RunResult
from repro.target.firmware import FirmwareImage

#: real debug units have 2-8 comparators; 4 is typical (e.g. Cortex-M DWT)
HW_WATCHPOINT_SLOTS = 4


class WatchHit:
    """One tripped watchpoint."""

    __slots__ = ("watchpoint", "value", "previous", "pc", "cycles")

    def __init__(self, watchpoint: Watchpoint, value: int,
                 previous: Optional[int], pc: int, cycles: int) -> None:
        self.watchpoint = watchpoint
        self.value = value
        self.previous = previous
        self.pc = pc
        self.cycles = cycles

    def __repr__(self) -> str:
        return (f"<WatchHit {self.watchpoint.symbol} -> {self.value} "
                f"at pc={self.pc}>")


class SourceDebugger:
    """GDB-style control of one board."""

    def __init__(self, board: Board, firmware: FirmwareImage,
                 link: Optional[DebugLink] = None) -> None:
        self.board = board
        self.firmware = firmware
        if link is None:
            link = DirectLink(board)
        # Inspection traffic is its own budget-attribution channel; a
        # caller-provided link keeps whatever label its layer assigned.
        if link.label == type(link).kind:
            link.label = "inspect"
        self.link = link
        self.watchpoints: List[Watchpoint] = []
        self.hits: List[WatchHit] = []
        self._shadow: dict = {}
        self.on_hit: Optional[Callable[[WatchHit], None]] = None
        board.memory.set_write_hook(self._write_hook)

    # -- breakpoints -----------------------------------------------------------

    def break_at(self, pc: int) -> None:
        """Set a code breakpoint at an instruction address."""
        if not (0 <= pc < len(self.firmware.code)):
            raise DebuggerError(f"breakpoint pc {pc} outside code")
        self.board.cpu.breakpoints.add(pc)

    def break_at_path(self, src_path: str) -> List[int]:
        """Break at every instruction generated from a model element.

        This is what a developer armed with the source map can do — still a
        code-level notion (addresses), not a model-level one.
        """
        pcs = self.firmware.instructions_for_path(src_path)
        if not pcs:
            raise DebuggerError(f"no code generated from {src_path!r}")
        for pc in pcs:
            self.board.cpu.breakpoints.add(pc)
        return pcs

    def clear_breakpoints(self) -> None:
        """Remove all code breakpoints."""
        self.board.cpu.breakpoints.clear()

    # -- watchpoints --------------------------------------------------------

    def watch(self, symbol: str, predicate=None,
              description: str = "") -> Watchpoint:
        """Set a hardware watchpoint on a firmware symbol."""
        if len(self.watchpoints) >= HW_WATCHPOINT_SLOTS:
            raise DebuggerError(
                f"all {HW_WATCHPOINT_SLOTS} hardware watchpoint slots in use"
            )
        addr = self.firmware.symbols.addr_of(symbol)
        watchpoint = Watchpoint(symbol, addr, predicate, description)
        self.watchpoints.append(watchpoint)
        self._shadow[addr] = self.board.memory.peek(addr)
        return watchpoint

    def _write_hook(self, addr: int, value: int) -> None:
        for watchpoint in self.watchpoints:
            if watchpoint.addr != addr:
                continue
            previous = self._shadow.get(addr)
            if watchpoint.check(value, previous):
                hit = WatchHit(watchpoint, value, previous,
                               self.board.cpu.pc, self.board.cpu.cycles)
                self.hits.append(hit)
                if self.on_hit is not None:
                    self.on_hit(hit)
        if addr in self._shadow:
            self._shadow[addr] = value

    # -- execution control ----------------------------------------------------

    def run_task(self, task: str, max_instructions: int = 1_000_000) -> RunResult:
        """Run one job of *task*, honouring code breakpoints."""
        self.board.cpu.reset_task(self.firmware.entry_of(task))
        return self.board.cpu.run(max_instructions=max_instructions,
                                  break_on_breakpoints=True)

    def continue_(self, max_instructions: int = 1_000_000) -> RunResult:
        """Continue after a breakpoint stop."""
        if self.board.cpu.halted:
            raise DebuggerError("target is not stopped mid-task")
        return self.board.cpu.run(max_instructions=max_instructions,
                                  break_on_breakpoints=True)

    def step_instruction(self) -> RunResult:
        """Execute exactly one instruction."""
        if self.board.cpu.halted:
            raise DebuggerError("target is not stopped mid-task")
        return self.board.cpu.run(single_step=True)

    # -- inspection --------------------------------------------------------

    def inspect(self, symbol: str) -> int:
        """Read a symbol's current value (one link transaction)."""
        value, _ = self.link.read_word(self.firmware.symbols.addr_of(symbol))
        return value

    def inspect_many(self, symbols: Sequence[str]) -> Dict[str, int]:
        """Read several symbols in one batched link transaction.

        The addresses are grouped into contiguous runs by the link, so a
        variable view refreshing dozens of symbols costs one round trip —
        same batching the passive channel's poll plan uses.
        """
        if not symbols:
            return {}
        addrs = [self.firmware.symbols.addr_of(name) for name in symbols]
        values, _ = self.link.read_scatter(addrs)
        return dict(zip(symbols, values))

    def list_source(self, around_pc: Optional[int] = None,
                    context: int = 4) -> str:
        """Disassembly listing around a pc (defaults to the current pc)."""
        pc = around_pc if around_pc is not None else self.board.cpu.pc
        start = max(0, pc - context)
        return disassemble(self.firmware.code, start=start,
                           count=2 * context + 1, mark_pc=pc)

    def backtrace(self) -> str:
        """A GDB-flavoured stop report."""
        cpu = self.board.cpu
        symbol = None
        frame = f"pc={cpu.pc} cycles={cpu.cycles} stack={cpu.stack}"
        if 0 <= cpu.pc < len(self.firmware.code):
            src = self.firmware.code[cpu.pc].src_path
            if src:
                symbol = src
        return f"#0 {frame}" + (f" in <{symbol}>" if symbol else "")
