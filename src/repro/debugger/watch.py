"""Watchpoints: conditions over raw memory words.

A watchpoint sees addresses and integers — it has no notion of states,
transitions or model sequencing. That asymmetry against model-level
monitors is exactly what the detection experiment measures.
"""

from __future__ import annotations

from typing import Callable, Optional


#: predicate over the new value; None means "any change"
WatchPredicate = Optional[Callable[[int], bool]]


class Watchpoint:
    """A (hardware) watchpoint on one RAM word."""

    def __init__(self, symbol: str, addr: int,
                 predicate: WatchPredicate = None,
                 description: str = "") -> None:
        self.symbol = symbol
        self.addr = addr
        self.predicate = predicate
        self.description = description or (
            f"watch {symbol} ({'change' if predicate is None else 'condition'})"
        )
        self.enabled = True
        self.hits = 0

    def check(self, value: int, previous: Optional[int]) -> bool:
        """Whether a write of *value* (from *previous*) trips this watchpoint."""
        if not self.enabled:
            return False
        if self.predicate is not None:
            tripped = self.predicate(value)
        else:
            tripped = previous is None or value != previous
        if tripped:
            self.hits += 1
        return tripped

    def __repr__(self) -> str:
        return f"<Watchpoint {self.symbol}@0x{self.addr:08x} hits={self.hits}>"
