"""Code-level baseline debugger (the GDB/DDD of the paper's related work).

GMDF's value proposition is debugging at the *model* level; the natural
baseline is a source-level debugger over the generated code: breakpoints on
instructions, hardware watchpoints on variables, symbol inspection. The
detection experiment (E9) runs both debuggers against the same injected
faults.
"""

from repro.debugger.gdb import SourceDebugger, WatchHit
from repro.debugger.watch import Watchpoint

__all__ = ["SourceDebugger", "WatchHit", "Watchpoint"]
