"""IEEE 1149.1 (JTAG) test access port and host probe.

The passive command interface: the probe scans monitored variables out of
the target's RAM through a faithful 16-state TAP controller — zero target
instructions executed, zero target cycles consumed. The TAP state machine
follows the standard's TMS transition diagram exactly (property-tested:
five TMS=1 clocks reach Test-Logic-Reset from any state).

Data registers implemented behind the IR:

========= ======= ====================================================
IDCODE    0b0001  32-bit device identification (capture)
MEMADDR    0b0010  32-bit memory address register (update)
MEMREAD    0b0011  capture loads RAM[address] for shifting out
MEMWRITE   0b0100  update stores the shifted value to RAM[address]
HALT       0b0101  update-IR stalls the target's task dispatching
RESUME     0b0110  update-IR releases the stall
BLOCKREAD  0b0111  like MEMREAD, but capture auto-increments the address
BLOCKWRITE 0b1000  like MEMWRITE, but update auto-increments the address
BYPASS     0b1111  single-bit bypass register
========== ======= ====================================================

BLOCKREAD and BLOCKWRITE are the batching registers (ARM MEM-AP style
auto-increment accesses): load the base once through MEMADDR, select the
block register once, then every Capture-DR reads — or every Update-DR
writes — the *next* consecutive word. N words cost one IR setup plus N
DR scans instead of N full MEMADDR/MEMREAD (or MEMWRITE) round trips,
which is what lets fault-injection memory patches and watch-set polls
ride a single USB transaction.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.usb import UsbTransport
from repro.errors import JtagError
from repro.target.board import DebugPort

IR_WIDTH = 4


class Instruction(enum.IntEnum):
    """Implemented IR opcodes."""

    IDCODE = 0b0001
    MEMADDR = 0b0010
    MEMREAD = 0b0011
    MEMWRITE = 0b0100
    HALT = 0b0101
    RESUME = 0b0110
    BLOCKREAD = 0b0111
    BLOCKWRITE = 0b1000
    BYPASS = 0b1111


class TapState(enum.Enum):
    """The 16 controller states of IEEE 1149.1."""

    TEST_LOGIC_RESET = "Test-Logic-Reset"
    RUN_TEST_IDLE = "Run-Test/Idle"
    SELECT_DR_SCAN = "Select-DR-Scan"
    CAPTURE_DR = "Capture-DR"
    SHIFT_DR = "Shift-DR"
    EXIT1_DR = "Exit1-DR"
    PAUSE_DR = "Pause-DR"
    EXIT2_DR = "Exit2-DR"
    UPDATE_DR = "Update-DR"
    SELECT_IR_SCAN = "Select-IR-Scan"
    CAPTURE_IR = "Capture-IR"
    SHIFT_IR = "Shift-IR"
    EXIT1_IR = "Exit1-IR"
    PAUSE_IR = "Pause-IR"
    EXIT2_IR = "Exit2-IR"
    UPDATE_IR = "Update-IR"


#: state -> (next on TMS=0, next on TMS=1), straight from the standard
TAP_TRANSITIONS: Dict[TapState, Tuple[TapState, TapState]] = {
    TapState.TEST_LOGIC_RESET: (TapState.RUN_TEST_IDLE, TapState.TEST_LOGIC_RESET),
    TapState.RUN_TEST_IDLE: (TapState.RUN_TEST_IDLE, TapState.SELECT_DR_SCAN),
    TapState.SELECT_DR_SCAN: (TapState.CAPTURE_DR, TapState.SELECT_IR_SCAN),
    TapState.CAPTURE_DR: (TapState.SHIFT_DR, TapState.EXIT1_DR),
    TapState.SHIFT_DR: (TapState.SHIFT_DR, TapState.EXIT1_DR),
    TapState.EXIT1_DR: (TapState.PAUSE_DR, TapState.UPDATE_DR),
    TapState.PAUSE_DR: (TapState.PAUSE_DR, TapState.EXIT2_DR),
    TapState.EXIT2_DR: (TapState.SHIFT_DR, TapState.UPDATE_DR),
    TapState.UPDATE_DR: (TapState.RUN_TEST_IDLE, TapState.SELECT_DR_SCAN),
    TapState.SELECT_IR_SCAN: (TapState.CAPTURE_IR, TapState.TEST_LOGIC_RESET),
    TapState.CAPTURE_IR: (TapState.SHIFT_IR, TapState.EXIT1_IR),
    TapState.SHIFT_IR: (TapState.SHIFT_IR, TapState.EXIT1_IR),
    TapState.EXIT1_IR: (TapState.PAUSE_IR, TapState.UPDATE_IR),
    TapState.PAUSE_IR: (TapState.PAUSE_IR, TapState.EXIT2_IR),
    TapState.EXIT2_IR: (TapState.SHIFT_IR, TapState.UPDATE_IR),
    TapState.UPDATE_IR: (TapState.RUN_TEST_IDLE, TapState.SELECT_DR_SCAN),
}


class TapController:
    """Bit-level TAP controller wired to a board's debug port."""

    def __init__(self, port: DebugPort) -> None:
        self.port = port
        self.state = TapState.TEST_LOGIC_RESET
        self.ir = int(Instruction.IDCODE)
        self._shift: int = 0
        self._shift_width: int = 32
        self._address: int = 0
        self.tck_count = 0

    def _dr_width(self) -> int:
        try:
            instruction = Instruction(self.ir)
        except ValueError:
            return 1  # unknown IR values select BYPASS, per the standard
        return 1 if instruction is Instruction.BYPASS else 32

    def drive(self, tms: int, tdi: int = 0) -> int:
        """One TCK cycle: sample TMS/TDI, return TDO."""
        if tms not in (0, 1) or tdi not in (0, 1):
            raise JtagError(f"TMS/TDI must be 0 or 1, got tms={tms} tdi={tdi}")
        self.tck_count += 1

        tdo = 0
        if self.state is TapState.SHIFT_DR or self.state is TapState.SHIFT_IR:
            width = (IR_WIDTH if self.state is TapState.SHIFT_IR
                     else self._shift_width)
            tdo = self._shift & 1
            self._shift = (self._shift >> 1) | (tdi << (width - 1))

        previous = self.state
        self.state = TAP_TRANSITIONS[previous][tms]

        # Entry actions of the new state. The reset state *holds* the IR at
        # IDCODE for as long as the controller sits in it (the standard keeps
        # reset asserted in Test-Logic-Reset).
        del previous
        if self.state is TapState.TEST_LOGIC_RESET:
            self.ir = int(Instruction.IDCODE)
        elif self.state is TapState.CAPTURE_IR:
            self._shift = 0b0001  # mandated capture pattern LSBs = 01
            self._shift_width = IR_WIDTH
        elif self.state is TapState.CAPTURE_DR:
            self._shift_width = self._dr_width()
            self._shift = self._capture_dr()
        elif self.state is TapState.UPDATE_IR:
            self.ir = self._shift & ((1 << IR_WIDTH) - 1)
            self._apply_ir_side_effect()
        elif self.state is TapState.UPDATE_DR:
            self._update_dr()
        return tdo

    def _capture_dr(self) -> int:
        try:
            instruction = Instruction(self.ir)
        except ValueError:
            return 0
        if instruction is Instruction.IDCODE:
            return self.port.idcode
        if instruction is Instruction.MEMREAD:
            if not self.port.board.memory.contains(self._address):
                return 0xDEADDEAD  # fault pattern, like real debug APs
            return self.port.read_word(self._address) & 0xFFFFFFFF
        if instruction is Instruction.BLOCKREAD:
            address = self._address
            self._address = (address + 1) & 0xFFFFFFFF  # MEM-AP auto-increment
            if not self.port.board.memory.contains(address):
                return 0xDEADDEAD
            return self.port.read_word(address) & 0xFFFFFFFF
        if instruction is Instruction.MEMADDR:
            return self._address
        return 0

    def _update_dr(self) -> None:
        try:
            instruction = Instruction(self.ir)
        except ValueError:
            return
        if instruction is Instruction.MEMADDR:
            self._address = self._shift & 0xFFFFFFFF
        elif instruction is Instruction.MEMWRITE:
            if self.port.board.memory.contains(self._address):
                self.port.write_word(self._address, self._shift & 0xFFFFFFFF)
        elif instruction is Instruction.BLOCKWRITE:
            address = self._address
            self._address = (address + 1) & 0xFFFFFFFF  # MEM-AP auto-increment
            if self.port.board.memory.contains(address):
                self.port.write_word(address, self._shift & 0xFFFFFFFF)

    def _apply_ir_side_effect(self) -> None:
        if self.ir == Instruction.HALT:
            self.port.halt()
        elif self.ir == Instruction.RESUME:
            self.port.resume()


def group_runs(addrs: Sequence[int]) -> List[Tuple[int, int]]:
    """Group addresses into maximal contiguous ``(base, count)`` runs.

    Input order and duplicates do not matter; runs come back sorted by
    base. This is the scatter-read planner: each run becomes one
    MEMADDR + BLOCKREAD sequence, so watch sets that live next to each
    other in data RAM (the common case — codegen allocates sequentially)
    collapse into very few block transfers.
    """
    runs: List[Tuple[int, int]] = []
    for addr in sorted(set(addrs)):
        if runs and addr == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((addr, 1))
    return runs


def _sign32(raw: int) -> int:
    return raw - (1 << 32) if raw >= (1 << 31) else raw


class JtagProbe:
    """Host-side probe: drives the TAP and accounts for scan time.

    ``*_timed`` variants return ``(result, cost_us)`` where the cost covers
    TCK cycles at ``tck_hz`` plus (optionally) a USB transaction — the
    latency the passive channel pays per poll.
    """

    def __init__(self, tap: TapController, tck_hz: int = 4_000_000,
                 transport: Optional[UsbTransport] = None) -> None:
        if tck_hz <= 0:
            raise JtagError(f"tck_hz must be positive, got {tck_hz}")
        self.tap = tap
        self.tck_hz = tck_hz
        self.transport = transport
        self.operations = 0

    # -- low-level sequences -----------------------------------------------

    def _clock(self, tms: int, tdi: int = 0) -> int:
        return self.tap.drive(tms, tdi)

    def reset(self) -> None:
        """Force Test-Logic-Reset (5x TMS=1) and park in Run-Test/Idle."""
        for _ in range(5):
            self._clock(1)
        self._clock(0)

    def _shift_register(self, ir_scan: bool, value: int, width: int) -> int:
        """From Run-Test/Idle: scan *width* bits through IR or DR, back to RTI."""
        if self.tap.state is TapState.TEST_LOGIC_RESET:
            self._clock(0)  # freshly powered TAP: step into Run-Test/Idle
        if self.tap.state is not TapState.RUN_TEST_IDLE:
            raise JtagError(f"probe must start scans from Run-Test/Idle, "
                            f"not {self.tap.state.value}")
        self._clock(1)                      # -> Select-DR-Scan
        if ir_scan:
            self._clock(1)                  # -> Select-IR-Scan
        self._clock(0)                      # -> Capture-xR
        self._clock(0)                      # -> Shift-xR
        captured = 0
        for bit in range(width):
            last = bit == width - 1
            tdo = self._clock(1 if last else 0, (value >> bit) & 1)
            captured |= tdo << bit          # -> Exit1-xR on the last bit
        self._clock(1)                      # -> Update-xR
        self._clock(0)                      # -> Run-Test/Idle
        return captured

    def shift_ir(self, instruction: int) -> None:
        """Load a 4-bit instruction into the IR."""
        self._shift_register(True, int(instruction), IR_WIDTH)

    def shift_dr(self, value: int, width: int = 32) -> int:
        """Scan *width* bits through the current DR; returns captured bits."""
        return self._shift_register(False, value, width)

    # -- high-level operations ----------------------------------------------

    def _timed(self, fn) -> Tuple[int, int]:
        start = self.tap.tck_count
        result = fn()
        cycles = self.tap.tck_count - start
        cost = math.ceil(cycles * 1_000_000 / self.tck_hz)
        self.operations += 1
        return result, cost

    def read_idcode_timed(self) -> Tuple[int, int]:
        """Read the device IDCODE; returns (idcode, cost_us)."""
        def op() -> int:
            self.shift_ir(Instruction.IDCODE)
            return self.shift_dr(0, 32)
        value, cost = self._timed(op)
        if self.transport is not None:
            cost += self.transport.transaction_cost_us(1)
        return value, cost

    def read_word_timed(self, addr: int,
                        charge_transport: bool = True) -> Tuple[int, int]:
        """Read one RAM word; returns (value, cost_us)."""
        def op() -> int:
            self.shift_ir(Instruction.MEMADDR)
            self.shift_dr(addr, 32)
            self.shift_ir(Instruction.MEMREAD)
            return self.shift_dr(0, 32)
        raw, cost = self._timed(op)
        if charge_transport and self.transport is not None:
            cost += self.transport.transaction_cost_us(2)
        return _sign32(raw), cost

    def read_word(self, addr: int) -> int:
        """Read one RAM word (cost ignored)."""
        return self.read_word_timed(addr)[0]

    def read_block_timed(self, base: int, count: int,
                         charge_transport: bool = True
                         ) -> Tuple[List[int], int]:
        """Read *count* consecutive RAM words starting at *base*.

        One MEMADDR load, one BLOCKREAD IR select, then *count* DR scans
        riding the auto-increment — and at most **one** USB transaction,
        however large the block. Returns ``(values, cost_us)``.
        """
        if count <= 0:
            raise JtagError(f"block count must be positive, got {count}")

        def op() -> List[int]:
            self.shift_ir(Instruction.MEMADDR)
            self.shift_dr(base, 32)
            self.shift_ir(Instruction.BLOCKREAD)
            return [_sign32(self.shift_dr(0, 32)) for _ in range(count)]

        values, cost = self._timed(op)
        if charge_transport and self.transport is not None:
            cost += self.transport.transaction_cost_us(1 + count)
        return values, cost

    def read_scatter_timed(self, addrs: Sequence[int],
                           charge_transport: bool = True
                           ) -> Tuple[List[int], int]:
        """Read arbitrary RAM words, batched into contiguous block runs.

        The run plan comes from :func:`group_runs`; every run is one
        MEMADDR + BLOCKREAD sequence on the same scan chain, and the whole
        scatter read is charged as a **single** USB transaction. Returns
        values aligned with *addrs* (duplicates allowed) plus the cost.
        """
        if not addrs:
            raise JtagError("scatter read needs at least one address")
        runs = group_runs(addrs)

        def op() -> Dict[int, int]:
            values: Dict[int, int] = {}
            for base, count in runs:
                self.shift_ir(Instruction.MEMADDR)
                self.shift_dr(base, 32)
                self.shift_ir(Instruction.BLOCKREAD)
                for offset in range(count):
                    values[base + offset] = _sign32(self.shift_dr(0, 32))
            return values

        by_addr, cost = self._timed(op)
        if charge_transport and self.transport is not None:
            words = len(runs) + sum(count for _, count in runs)
            cost += self.transport.transaction_cost_us(words)
        return [by_addr[addr] for addr in addrs], cost

    def write_block_timed(self, base: int, values: Sequence[int],
                          charge_transport: bool = True) -> int:
        """Write consecutive RAM words starting at *base*; returns cost_us.

        One MEMADDR load, one BLOCKWRITE IR select, then one DR scan per
        word riding the auto-increment — and at most **one** USB
        transaction, however large the block. This is the bulk
        memory-patch path (fault injection over JTAG).
        """
        if not values:
            raise JtagError("block write needs at least one value")

        def op() -> int:
            self.shift_ir(Instruction.MEMADDR)
            self.shift_dr(base, 32)
            self.shift_ir(Instruction.BLOCKWRITE)
            for value in values:
                self.shift_dr(value & 0xFFFFFFFF, 32)
            return 0

        _, cost = self._timed(op)
        if charge_transport and self.transport is not None:
            cost += self.transport.transaction_cost_us(1 + len(values))
        return cost

    def write_word_timed(self, addr: int, value: int) -> int:
        """Write one RAM word; returns cost_us."""
        def op() -> int:
            self.shift_ir(Instruction.MEMADDR)
            self.shift_dr(addr, 32)
            self.shift_ir(Instruction.MEMWRITE)
            self.shift_dr(value & 0xFFFFFFFF, 32)
            return 0
        _, cost = self._timed(op)
        if self.transport is not None:
            cost += self.transport.transaction_cost_us(2)
        return cost

    def halt_target(self) -> None:
        """Stall the target via the HALT instruction."""
        self.shift_ir(Instruction.HALT)

    def resume_target(self) -> None:
        """Release the target via the RESUME instruction."""
        self.shift_ir(Instruction.RESUME)
