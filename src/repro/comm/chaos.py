"""Deterministic transport fault injection: ChaosLink.

Real debug transports lose frames, flip bits, stall and drop out; the
rest of this framework assumed a perfect wire. :class:`ChaosLink` wraps
any :class:`~repro.comm.link.DebugLink` and injects wire faults whose
schedule is **seeded and deterministic**: every operation draws its
fault decisions from a :class:`random.Random` seeded by
:func:`~repro.util.seeds.derive_seed` over ``(seed, plane, op_index)``,
so two runs at the same seed produce byte-identical fault schedules,
transcripts and transport accounting — chaos experiments replay exactly.

Fault classes (all independently rated, all off by default):

* **frame plane** (serial command stream through ``transmit_frame``) —
  frame loss (the wire delivers nothing), byte corruption (one bit flip,
  surfacing as a checksum failure in the
  :class:`~repro.comm.frames.FrameDecoder`), duplication (the frame
  arrives twice), reordering (delivery delayed past later frames);
* **memory plane** (JTAG-class reads/writes) — transient transaction
  errors (:class:`~repro.errors.TransientLinkError`; writes fail with
  lost-ack semantics about half the time, i.e. the write *landed* but
  the host cannot know), read corruption (one bit flip in one returned
  word), latency spikes (the op succeeds but costs extra);
* **link drop** — a multi-op outage window during which every memory op
  fails; :meth:`drop`/:meth:`reattach` give tests manual control.

Invariants:

* **determinism** — the schedule is a pure function of ``(seed,
  op_index)``; concurrency, wall clock and host state never enter it;
* **zero overhead when disabled** — with every rate at 0.0 each op is a
  straight delegate: no RNG construction, no hashing, no draws;
* **transparent accounting** — the wrapper mirrors the inner link's
  counter deltas (plus its own chaos surcharges), so budgets and
  ``transport_stats()`` see one link with honest books. Failed attempts
  book one transaction at zero cost: a round trip that went nowhere.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.link import DebugLink
from repro.errors import CommError, TransientLinkError
from repro.obs.runtime import OBS
from repro.util.seeds import derive_seed

#: counters every wrapper mirrors from its inner link
_MIRRORED = ("transactions", "words_read", "words_written",
             "frames_carried", "cost_us_total")


class ChaosConfig:
    """Fault rates and shape parameters for one :class:`ChaosLink`.

    All rates are probabilities in ``[0, 1]`` per operation. A config
    with every rate at zero is *disabled*: the link adds no overhead and
    never constructs an RNG. ``seed`` is the master chaos seed;
    :meth:`with_seed` derives per-link copies so multi-node sessions
    give every link an independent (but reproducible) schedule.
    """

    __slots__ = ("seed", "frame_loss", "frame_corrupt", "frame_reorder",
                 "reorder_delay_us", "frame_duplicate", "transient_error",
                 "read_corrupt", "latency_spike", "latency_spike_us",
                 "link_drop", "drop_ops", "record_schedule")

    _RATES = ("frame_loss", "frame_corrupt", "frame_reorder",
              "frame_duplicate", "transient_error", "read_corrupt",
              "latency_spike", "link_drop")

    def __init__(self, seed: int = 0,
                 frame_loss: float = 0.0,
                 frame_corrupt: float = 0.0,
                 frame_reorder: float = 0.0,
                 reorder_delay_us: int = 2000,
                 frame_duplicate: float = 0.0,
                 transient_error: float = 0.0,
                 read_corrupt: float = 0.0,
                 latency_spike: float = 0.0,
                 latency_spike_us: int = 1000,
                 link_drop: float = 0.0,
                 drop_ops: int = 3,
                 record_schedule: bool = False) -> None:
        for name, value in (("frame_loss", frame_loss),
                            ("frame_corrupt", frame_corrupt),
                            ("frame_reorder", frame_reorder),
                            ("frame_duplicate", frame_duplicate),
                            ("transient_error", transient_error),
                            ("read_corrupt", read_corrupt),
                            ("latency_spike", latency_spike),
                            ("link_drop", link_drop)):
            if not (0.0 <= value <= 1.0):
                raise CommError(f"{name} must be a probability in [0, 1], "
                                f"got {value}")
        if reorder_delay_us < 0 or latency_spike_us < 0:
            raise CommError("chaos delays must be non-negative")
        if drop_ops < 1:
            raise CommError(f"drop_ops must be >= 1, got {drop_ops}")
        self.seed = seed
        self.frame_loss = frame_loss
        self.frame_corrupt = frame_corrupt
        self.frame_reorder = frame_reorder
        self.reorder_delay_us = reorder_delay_us
        self.frame_duplicate = frame_duplicate
        self.transient_error = transient_error
        self.read_corrupt = read_corrupt
        self.latency_spike = latency_spike
        self.latency_spike_us = latency_spike_us
        self.link_drop = link_drop
        self.drop_ops = drop_ops
        self.record_schedule = record_schedule

    @property
    def enabled(self) -> bool:
        """Whether any fault can ever fire (the fast-path gate)."""
        return any(getattr(self, rate) > 0.0 for rate in self._RATES)

    def with_seed(self, seed: int) -> "ChaosConfig":
        """A copy of this config under a different (derived) seed."""
        clone = ChaosConfig.__new__(ChaosConfig)
        for slot in self.__slots__:
            setattr(clone, slot, getattr(self, slot))
        clone.seed = seed
        return clone

    def __repr__(self) -> str:
        active = [f"{rate}={getattr(self, rate)}" for rate in self._RATES
                  if getattr(self, rate) > 0.0]
        return (f"<ChaosConfig seed={self.seed} "
                f"{' '.join(active) or 'disabled'}>")


class _Wrapper(DebugLink):
    """Shared plumbing for links that wrap another link.

    Unknown attributes (``probe``, ``line``, ``board``,
    ``host_latency_us``...) delegate to the wrapped link, so a wrapped
    transport stays a drop-in replacement for channel code that reaches
    through. Accounting does **not** delegate: the wrapper keeps its own
    books, fed by mirroring the inner link's counter deltas.
    """

    def __init__(self, inner: DebugLink) -> None:
        super().__init__()
        self.inner = inner
        self.label = inner.label
        self.kind = f"{type(self).kind}[{inner.kind}]"

    def __getattr__(self, name: str):
        # only reached for attributes missing on the wrapper itself;
        # guard against recursion while self.inner is not yet set
        try:
            inner = object.__getattribute__(self, "inner")
        except AttributeError:
            raise AttributeError(name) from None
        return getattr(inner, name)

    def _snapshot(self) -> Tuple[int, ...]:
        return tuple(getattr(self.inner, key) for key in _MIRRORED)

    def _mirror(self, before: Tuple[int, ...], extra_cost_us: int = 0) -> None:
        """Fold the inner link's counter deltas (plus surcharges) in."""
        for key, prior in zip(_MIRRORED, before):
            setattr(self, key, getattr(self, key)
                    + getattr(self.inner, key) - prior)
        self.cost_us_total += extra_cost_us

    def halt_target(self) -> None:
        self.inner.halt_target()

    def resume_target(self) -> None:
        self.inner.resume_target()


class ChaosLink(_Wrapper):
    """Seeded wire-fault injection over any :class:`DebugLink`."""

    kind = "chaos"

    def __init__(self, inner: DebugLink,
                 config: Optional[ChaosConfig] = None) -> None:
        super().__init__(inner)
        self.config = config if config is not None else ChaosConfig()
        self._mem_ops = 0
        self._frame_ops = 0
        self._down_until_op = -1  # memory-op index the outage ends before
        self._manual_down = False
        # chaos accounting, surfaced via stats()
        self.frames_lost = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0
        self.frames_reordered = 0
        self.transient_errors = 0
        self.reads_corrupted = 0
        self.latency_spikes = 0
        self.link_drops = 0
        #: fault schedule log when ``config.record_schedule`` is set:
        #: ``(plane, op_index, op, fault)`` tuples in injection order
        self.schedule: List[Tuple[str, int, str, str]] = []

    # -- manual outage control ---------------------------------------------

    def drop(self) -> None:
        """Take the link down until :meth:`reattach` (models a pulled cable)."""
        if not self._manual_down:
            self._manual_down = True
            self.link_drops += 1

    def reattach(self) -> None:
        """Bring a manually dropped link back up."""
        self._manual_down = False

    @property
    def down(self) -> bool:
        """Whether the link is currently in an outage window."""
        return self._manual_down or self._mem_ops < self._down_until_op

    # -- the seeded schedule -----------------------------------------------

    def _rng(self, plane: str, op_index: int) -> random.Random:
        return random.Random(derive_seed(self.config.seed, plane, op_index))

    def _record(self, plane: str, op_index: int, op: str, fault: str) -> None:
        # every injected fault funnels through here, so this is the one
        # telemetry tap for chaos outcomes: a chaos.fault series per
        # (plane, fault kind). The aggregate counters stay on stats()
        # (bound as link.* series by DebugLink).
        if OBS.metrics is not None:
            OBS.metrics.counter("chaos.fault", plane=plane,
                                fault=fault).inc()
        if self.config.record_schedule:
            self.schedule.append((plane, op_index, op, fault))

    def _fail(self, plane: str, op_index: int, op: str, fault: str,
              reason: str) -> None:
        """Book a failed round trip and raise the transient error."""
        self.transient_errors += 1
        self._account(0)  # a transaction happened; it carried nothing
        self._record(plane, op_index, op, fault)
        raise TransientLinkError(op, reason)

    def _mem_gate(self, op: str) -> Tuple[int, int, bool]:
        """Pre-op chaos for the memory plane.

        Returns ``(op_index, extra_latency_us, corrupt_read)``; raises
        :class:`TransientLinkError` for outage windows and read-side
        transient failures. Write-side transients are decided here too
        but half of them are *lost acks* — the caller is told to execute
        the write first and fail after (see :meth:`_write_gate`).
        """
        op_index = self._mem_ops
        self._mem_ops += 1
        if self._manual_down:
            self._fail("mem", op_index, op, "manual_drop", "link is down")
        cfg = self.config
        if not cfg.enabled:
            return op_index, 0, False
        if op_index < self._down_until_op:
            self._fail("mem", op_index, op, "link_down",
                       "link is in an outage window")
        rng = self._rng("mem", op_index)
        # fixed draw order: drop, transient, spike, corrupt — every op
        # consumes the same stream shape, so the schedule is stable
        r_drop = rng.random()
        r_transient = rng.random()
        r_spike = rng.random()
        r_corrupt = rng.random()
        if r_drop < cfg.link_drop:
            self.link_drops += 1
            self._down_until_op = op_index + 1 + cfg.drop_ops
            self._fail("mem", op_index, op, "link_drop",
                       "link dropped mid-operation")
        if r_transient < cfg.transient_error:
            self._fail("mem", op_index, op, "transient",
                       "transaction glitched")
        extra = 0
        if r_spike < cfg.latency_spike:
            extra = cfg.latency_spike_us
            self.latency_spikes += 1
            self._record("mem", op_index, op, "latency_spike")
        corrupt = r_corrupt < cfg.read_corrupt
        return op_index, extra, corrupt

    def _write_gate(self, op: str) -> Tuple[int, int, bool]:
        """Memory-plane chaos for writes.

        Same schedule as reads, except a transient failure flips a coin
        between *rejected* (the write never executed) and *lost ack*
        (the write executed; the completion was lost). Returns
        ``(op_index, extra_latency_us, fail_after)``.
        """
        op_index = self._mem_ops
        self._mem_ops += 1
        if self._manual_down:
            self._fail("mem", op_index, op, "manual_drop", "link is down")
        cfg = self.config
        if not cfg.enabled:
            return op_index, 0, False
        if op_index < self._down_until_op:
            self._fail("mem", op_index, op, "link_down",
                       "link is in an outage window")
        rng = self._rng("mem", op_index)
        r_drop = rng.random()
        r_transient = rng.random()
        r_spike = rng.random()
        r_ack = rng.random()
        if r_drop < cfg.link_drop:
            self.link_drops += 1
            self._down_until_op = op_index + 1 + cfg.drop_ops
            self._fail("mem", op_index, op, "link_drop",
                       "link dropped mid-operation")
        if r_transient < cfg.transient_error:
            if r_ack < 0.5:
                return op_index, 0, True  # lost ack: execute, then fail
            self._fail("mem", op_index, op, "transient",
                       "write rejected by the wire")
        extra = 0
        if r_spike < cfg.latency_spike:
            extra = cfg.latency_spike_us
            self.latency_spikes += 1
            self._record("mem", op_index, op, "latency_spike")
        return op_index, extra, False

    def _corrupt_one(self, rng: random.Random, values: List[int],
                     op_index: int, op: str) -> None:
        index = rng.randrange(len(values))
        values[index] ^= 1 << rng.randrange(32)
        self.reads_corrupted += 1
        self._record("mem", op_index, op, "read_corrupt")

    def _fail_lost_ack(self, op_index: int, op: str) -> None:
        self.transient_errors += 1
        self._record("mem", op_index, op, "transient_lost_ack")
        raise TransientLinkError(op, "completion ack lost (write landed)")

    # -- memory plane --------------------------------------------------------

    def read_word(self, addr: int) -> Tuple[int, int]:
        op_index, extra, corrupt = self._mem_gate("read_word")
        before = self._snapshot()
        value, cost = self.inner.read_word(addr)
        self._mirror(before, extra)
        if corrupt:
            values = [value]
            self._corrupt_one(self._rng("mem-corrupt", op_index), values,
                              op_index, "read_word")
            value = values[0]
        return value, cost + extra

    def read_block(self, base: int, count: int) -> Tuple[List[int], int]:
        op_index, extra, corrupt = self._mem_gate("read_block")
        before = self._snapshot()
        values, cost = self.inner.read_block(base, count)
        self._mirror(before, extra)
        if corrupt:
            values = list(values)
            self._corrupt_one(self._rng("mem-corrupt", op_index), values,
                              op_index, "read_block")
        return values, cost + extra

    def read_scatter(self, addrs: Sequence[int]) -> Tuple[List[int], int]:
        op_index, extra, corrupt = self._mem_gate("read_scatter")
        before = self._snapshot()
        values, cost = self.inner.read_scatter(addrs)
        self._mirror(before, extra)
        if corrupt:
            values = list(values)
            self._corrupt_one(self._rng("mem-corrupt", op_index), values,
                              op_index, "read_scatter")
        return values, cost + extra

    def write_word(self, addr: int, value: int) -> int:
        op_index, extra, fail_after = self._write_gate("write_word")
        before = self._snapshot()
        cost = self.inner.write_word(addr, value)
        self._mirror(before, extra)
        if fail_after:
            self._fail_lost_ack(op_index, "write_word")
        return cost + extra

    def write_block(self, base: int, values: Sequence[int]) -> int:
        op_index, extra, fail_after = self._write_gate("write_block")
        before = self._snapshot()
        cost = self.inner.write_block(base, values)
        self._mirror(before, extra)
        if fail_after:
            self._fail_lost_ack(op_index, "write_block")
        return cost + extra

    # -- frame plane ---------------------------------------------------------

    def transmit_frame(self, t_ready: int,
                       frame: bytes) -> Tuple[bytes, int, int]:
        op_index = self._frame_ops
        self._frame_ops += 1
        before = self._snapshot()
        wire, t_done, t_arrive = self.inner.transmit_frame(t_ready, frame)
        self._mirror(before)
        cfg = self.config
        if not cfg.enabled:
            return wire, t_done, t_arrive
        rng = self._rng("frame", op_index)
        r_loss = rng.random()
        r_corrupt = rng.random()
        r_duplicate = rng.random()
        r_reorder = rng.random()
        if r_loss < cfg.frame_loss:
            # the line time was spent; the frame never arrives
            self.frames_lost += 1
            self._record("frame", op_index, "transmit_frame", "loss")
            return b"", t_done, t_arrive
        if r_corrupt < cfg.frame_corrupt and wire:
            mutated = bytearray(wire)
            mutated[rng.randrange(len(mutated))] ^= 1 << rng.randrange(8)
            wire = bytes(mutated)
            self.frames_corrupted += 1
            self._record("frame", op_index, "transmit_frame", "corrupt")
        if r_duplicate < cfg.frame_duplicate:
            wire = wire + wire
            self.frames_duplicated += 1
            self._record("frame", op_index, "transmit_frame", "duplicate")
        if r_reorder < cfg.frame_reorder:
            t_arrive += cfg.reorder_delay_us
            self.frames_reordered += 1
            self._record("frame", op_index, "transmit_frame", "reorder")
        return wire, t_done, t_arrive

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        snapshot = super().stats()
        snapshot.update({
            "frames_lost": self.frames_lost,
            "frames_corrupted": self.frames_corrupted,
            "frames_duplicated": self.frames_duplicated,
            "frames_reordered": self.frames_reordered,
            "transient_errors": self.transient_errors,
            "reads_corrupted": self.reads_corrupted,
            "latency_spikes": self.latency_spikes,
            "link_drops": self.link_drops,
        })
        return snapshot
