"""Wire format of debug command frames.

A frame is 10 bytes::

    SOF(0x7E)  LEN  KIND  PATH_ID(2, LE)  VALUE(4, LE signed)  CHECKSUM

``LEN`` counts the bytes between itself and the checksum (always 7 here but
kept on the wire for forward compatibility). The checksum is the modulo-256
sum of LEN..VALUE. The decoder is a resynchronizing state machine: garbage
and corrupted frames are counted and skipped, never fatal — a debugger must
survive a noisy serial line.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import CommError
from repro.util.intmath import wrap32

SOF = 0x7E
PAYLOAD_LEN = 7  # KIND(1) + PATH_ID(2) + VALUE(4)
FRAME_LEN = 10   # SOF + LEN + payload + checksum

MAX_PATH_ID = 0xFFFF


class FrameError(CommError):
    """A frame could not be encoded (bad field ranges)."""


def _checksum(data: bytes) -> int:
    return sum(data) & 0xFF


def encode_frame(kind: int, path_id: int, value: int) -> bytes:
    """Encode one command frame."""
    if not (0 <= kind <= 0xFF):
        raise FrameError(f"kind {kind} out of byte range")
    if not (0 <= path_id <= MAX_PATH_ID):
        raise FrameError(f"path id {path_id} out of range 0..{MAX_PATH_ID}")
    value = wrap32(value) & 0xFFFFFFFF
    body = bytes([
        PAYLOAD_LEN,
        kind,
        path_id & 0xFF, (path_id >> 8) & 0xFF,
        value & 0xFF, (value >> 8) & 0xFF,
        (value >> 16) & 0xFF, (value >> 24) & 0xFF,
    ])
    return bytes([SOF]) + body + bytes([_checksum(body)])


def decode_frame(frame: bytes) -> Tuple[int, int, int]:
    """Decode exactly one well-formed frame (raises on any corruption)."""
    decoder = FrameDecoder()
    commands = decoder.feed(frame)
    if decoder.checksum_errors or decoder.framing_errors:
        raise FrameError("corrupted frame")
    if len(commands) != 1:
        raise FrameError(f"expected 1 frame, decoded {len(commands)}")
    return commands[0]


class FrameDecoder:
    """Streaming decoder; feed() bytes in any chunking."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.checksum_errors = 0
        self.framing_errors = 0

    def feed(self, data: bytes) -> List[Tuple[int, int, int]]:
        """Consume *data*; return decoded (kind, path_id, value) tuples."""
        self._buffer.extend(data)
        out: List[Tuple[int, int, int]] = []
        while True:
            # Resynchronize on SOF — one find() instead of a byte-at-a-
            # time pop loop, so a garbage burst costs O(n), not O(n^2).
            sof = self._buffer.find(SOF)
            if sof < 0:
                self.framing_errors += len(self._buffer)
                self._buffer.clear()
            elif sof:
                self.framing_errors += sof
                del self._buffer[:sof]
            if len(self._buffer) < FRAME_LEN:
                return out
            frame = bytes(self._buffer[:FRAME_LEN])
            body = frame[1:-1]
            if frame[1] != PAYLOAD_LEN or _checksum(body) != frame[-1]:
                # Corrupt: drop the SOF and rescan (classic resync).
                self._buffer.pop(0)
                self.checksum_errors += 1
                continue
            del self._buffer[:FRAME_LEN]
            kind = body[1]
            path_id = body[2] | (body[3] << 8)
            raw = (body[4] | (body[5] << 8) | (body[6] << 16) | (body[7] << 24))
            out.append((kind, path_id, wrap32(raw)))
            self.frames_decoded += 1
