"""Retry, timeout and backoff over a faulty debug transport.

:class:`RetryingLink` wraps any :class:`~repro.comm.link.DebugLink`
(usually a :class:`~repro.comm.chaos.ChaosLink`) and absorbs
:class:`~repro.errors.TransientLinkError` failures under a
:class:`RetryPolicy`: bounded attempts, exponential backoff with
**seeded** jitter (the backoff schedule is as deterministic as the fault
schedule — :func:`~repro.util.seeds.derive_seed` over
``(seed, op_index, attempt)``), and an optional per-operation timeout.
Exhaustion raises a structured :class:`~repro.errors.LinkDownError`
carrying the operation, the attempt count and the last failure.

Idempotency rules — the part a naive retry loop gets wrong:

* **reads retry freely** — a BLOCKREAD that failed (or timed out and
  was discarded) had no target-visible effect;
* **writes verify before re-issuing** — a failed BLOCKWRITE may have
  *landed* with only its completion ack lost. When the policy's
  ``verify_writes`` is set and the transport can read, the retry path
  first reads the target range back; a match means the write landed and
  no re-issue happens (memory writes are value-idempotent, so the
  verify is a transaction economy, not a correctness requirement — a
  serial link that cannot read falls back to plain re-issue);
* **a timed-out read is discarded and retried; a timed-out write is
  accepted** — the operation completed (only slowly), and re-issuing it
  would double the transaction for nothing. Both are counted.

Control-plane operations (``halt_target``/``resume_target``) and the
fire-and-forget frame plane (``transmit_frame``) delegate without retry:
frame loss is the higher layer's problem by design.

The wrapper's returned cost for an operation is the *total* transport
latency the caller experienced: every attempt's wire cost plus backoff
waits. Accounting mirrors the inner link per attempt, so budgets price
retries honestly. Retry/timeout counts surface in ``stats()`` and,
per-channel, in ``DebugSession.transport_stats()``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.chaos import _Wrapper
from repro.comm.link import DebugLink
from repro.errors import CommError, LinkDownError, TransientLinkError
from repro.obs.runtime import OBS
from repro.util.seeds import derive_seed


class RetryPolicy:
    """How a :class:`RetryingLink` responds to transient failures.

    * ``max_attempts`` — total tries per operation (1 = no retry);
    * ``op_timeout_us`` — an attempt whose modeled cost exceeds this is
      a timeout (None = never);
    * ``backoff_us`` / ``backoff_multiplier`` — exponential backoff base
      and growth between attempts;
    * ``jitter`` — fraction of the backoff randomized (seeded, so the
      schedule is deterministic);
    * ``verify_writes`` — read-back verification before re-issuing a
      failed write (see the module docstring).
    """

    __slots__ = ("max_attempts", "op_timeout_us", "backoff_us",
                 "backoff_multiplier", "jitter", "seed", "verify_writes")

    def __init__(self, max_attempts: int = 3,
                 op_timeout_us: Optional[int] = None,
                 backoff_us: int = 200,
                 backoff_multiplier: float = 2.0,
                 jitter: float = 0.5,
                 seed: int = 0,
                 verify_writes: bool = True) -> None:
        if max_attempts < 1:
            raise CommError(f"max_attempts must be >= 1, got {max_attempts}")
        if op_timeout_us is not None and op_timeout_us <= 0:
            raise CommError(f"op_timeout_us must be positive, "
                            f"got {op_timeout_us}")
        if backoff_us < 0:
            raise CommError(f"backoff_us must be non-negative, got {backoff_us}")
        if backoff_multiplier < 1.0:
            raise CommError(f"backoff_multiplier must be >= 1, "
                            f"got {backoff_multiplier}")
        if not (0.0 <= jitter <= 1.0):
            raise CommError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.op_timeout_us = op_timeout_us
        self.backoff_us = backoff_us
        self.backoff_multiplier = backoff_multiplier
        self.jitter = jitter
        self.seed = seed
        self.verify_writes = verify_writes

    def backoff_for(self, op_index: int, attempt: int) -> int:
        """Deterministic jittered backoff before retry *attempt* (>= 2)."""
        if self.backoff_us == 0:
            return 0
        base = self.backoff_us * self.backoff_multiplier ** (attempt - 2)
        if self.jitter == 0.0:
            return int(base)
        rng = random.Random(derive_seed(self.seed, "backoff",
                                        op_index, attempt))
        return int(base * (1.0 + self.jitter * rng.random()))

    def __repr__(self) -> str:
        timeout = (f" timeout={self.op_timeout_us}us"
                   if self.op_timeout_us is not None else "")
        return (f"<RetryPolicy attempts={self.max_attempts}"
                f"{timeout} backoff={self.backoff_us}us"
                f"x{self.backoff_multiplier}>")


class RetryingLink(_Wrapper):
    """Bounded retry with seeded backoff over any :class:`DebugLink`."""

    kind = "retry"

    def __init__(self, inner: DebugLink,
                 policy: Optional[RetryPolicy] = None) -> None:
        super().__init__(inner)
        self.policy = policy if policy is not None else RetryPolicy()
        self._ops = 0
        self.giveups = 0
        self.backoff_us_total = 0

    # -- the retry loop ------------------------------------------------------

    def _backoff(self, op_index: int, attempt: int) -> int:
        wait = self.policy.backoff_for(op_index, attempt)
        self.backoff_us_total += wait
        self.cost_us_total += wait  # host-side wait billed as latency
        return wait

    def _timed_out(self, cost: int) -> bool:
        return (self.policy.op_timeout_us is not None
                and cost > self.policy.op_timeout_us)

    @staticmethod
    def _outcome(op: str, outcome: str) -> None:
        """Per-(op, outcome) telemetry; aggregate counts stay on stats()
        (bound as link.* series by DebugLink)."""
        if OBS.metrics is not None:
            OBS.metrics.counter("retry.outcome", op=op,
                                outcome=outcome).inc()

    def _retry_read(self, op: str, fn):
        """Run a read-class op with retry; returns (result, total_cost)."""
        op_index = self._ops
        self._ops += 1
        policy = self.policy
        spent = 0
        last: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                spent += self._backoff(op_index, attempt)
                self.retries += 1
                self._outcome(op, "retry")
            before = self._snapshot()
            try:
                result, cost = fn()
            except TransientLinkError as exc:
                self._mirror(before)
                last = exc
                continue
            self._mirror(before)
            spent += cost
            if self._timed_out(cost):
                # the result is stale by the time it lands: discard and
                # retry — a read has no target-visible effect to protect
                self.timeouts += 1
                self._outcome(op, "timeout_discarded")
                last = TransientLinkError(op, f"attempt exceeded "
                                          f"{policy.op_timeout_us}us")
                continue
            return result, spent
        self.giveups += 1
        self._outcome(op, "giveup")
        raise LinkDownError(op, policy.max_attempts, last)

    def _verify_write(self, read_back, intended: List[int]) -> bool:
        """Whether the target already holds the intended values.

        The verify read goes through the (possibly still faulty) inner
        link; a verify that itself fails simply falls back to re-issue —
        memory writes are value-idempotent, so re-issuing is safe.
        """
        before = self._snapshot()
        try:
            values, _ = read_back()
        except CommError:
            self._mirror(before)
            return False
        self._mirror(before)
        return list(values) == intended

    def _retry_write(self, op: str, fn, read_back, intended: List[int]) -> int:
        """Run a write-class op with verify-before-reissue retry."""
        op_index = self._ops
        self._ops += 1
        policy = self.policy
        spent = 0
        last: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                spent += self._backoff(op_index, attempt)
                self.retries += 1
                self._outcome(op, "retry")
                if policy.verify_writes and self._verify_write(read_back,
                                                               intended):
                    # lost ack: the previous attempt landed — done
                    self._outcome(op, "verified_landed")
                    return spent
            before = self._snapshot()
            try:
                cost = fn()
            except TransientLinkError as exc:
                self._mirror(before)
                last = exc
                continue
            self._mirror(before)
            spent += cost
            if self._timed_out(cost):
                # the write completed, only slowly: record, accept
                self.timeouts += 1
                self._outcome(op, "timeout_accepted")
            return spent
        self.giveups += 1
        self._outcome(op, "giveup")
        raise LinkDownError(op, policy.max_attempts, last)

    # -- memory plane --------------------------------------------------------

    def read_word(self, addr: int) -> Tuple[int, int]:
        return self._retry_read("read_word",
                                lambda: self.inner.read_word(addr))

    def read_block(self, base: int, count: int) -> Tuple[List[int], int]:
        return self._retry_read("read_block",
                                lambda: self.inner.read_block(base, count))

    def read_scatter(self, addrs: Sequence[int]) -> Tuple[List[int], int]:
        return self._retry_read("read_scatter",
                                lambda: self.inner.read_scatter(addrs))

    def write_word(self, addr: int, value: int) -> int:
        return self._retry_write(
            "write_word",
            lambda: self.inner.write_word(addr, value),
            lambda: self.inner.read_block(addr, 1),
            [value])

    def write_block(self, base: int, values: Sequence[int]) -> int:
        values = list(values)
        return self._retry_write(
            "write_block",
            lambda: self.inner.write_block(base, values),
            lambda: self.inner.read_block(base, len(values)),
            values)

    # -- frame plane: fire and forget, no retry ------------------------------

    def transmit_frame(self, t_ready: int,
                       frame: bytes) -> Tuple[bytes, int, int]:
        before = self._snapshot()
        result = self.inner.transmit_frame(t_ready, frame)
        self._mirror(before)
        return result

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        snapshot = super().stats()
        snapshot["giveups"] = self.giveups
        snapshot["backoff_us_total"] = self.backoff_us_total
        return snapshot
