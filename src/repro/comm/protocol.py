"""The GMDF debug command protocol.

A *command* is the unit of information flowing from the executing target to
the Graphical Debugger Model: "state X was entered", "signal S changed to
v", "task T started". On the wire a command is a compact frame carrying a
numeric **path id** (resolved through the firmware's path table) and a
value; host-side it is this :class:`Command` with the resolved model-element
path.
"""

from __future__ import annotations

import enum
from typing import Optional


class CommandKind(enum.IntEnum):
    """Command discriminators (one byte on the wire)."""

    STATE_ENTER = 1    # a state machine entered a state; value = state index
    SIG_UPDATE = 2     # a signal changed; value = new signal value
    TASK_START = 3     # an actor job started; value = job number
    TASK_END = 4       # an actor job finished; value = job number
    TRANS_FIRED = 5    # a transition fired; value = transition index
    USER = 6           # user-defined event


class Command:
    """A decoded debug command with host/target timestamps (µs)."""

    __slots__ = ("kind", "path", "value", "t_target", "t_host")

    def __init__(self, kind: CommandKind, path: str, value: int,
                 t_target: int = 0, t_host: Optional[int] = None) -> None:
        self.kind = CommandKind(kind)
        self.path = path
        self.value = value
        self.t_target = t_target
        self.t_host = t_host if t_host is not None else t_target

    @property
    def latency_us(self) -> int:
        """Host arrival delay relative to the target-side occurrence."""
        return self.t_host - self.t_target

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Command)
                and (self.kind, self.path, self.value)
                == (other.kind, other.path, other.value))

    def __hash__(self) -> int:
        return hash((self.kind, self.path, self.value))

    def __repr__(self) -> str:
        return (f"<Command {self.kind.name} {self.path} = {self.value} "
                f"@t={self.t_target}us (host {self.t_host}us)>")
