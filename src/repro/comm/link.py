"""The debug link layer: transaction-budgeted host <-> target transport.

Every byte that moves between the debugger host and the embedded target
crosses a :class:`DebugLink`. The link owns the *transport cost model* —
what a transaction costs, how many words or frames it carried — so the
layers above it (:class:`~repro.comm.channel.PassiveChannel`,
:class:`~repro.comm.channel.ActiveChannel`, the source-level debugger)
never price I/O themselves and never issue more transactions than the
link hands them.

Three concrete links cover the framework's access paths:

* :class:`JtagLink` — scan-chain access through a
  :class:`~repro.comm.jtag.JtagProbe`: TCK-rate cost per shifted bit,
  plus one USB round trip per *transaction* (not per word — block and
  scatter reads ride the TAP's BLOCKREAD auto-increment so a whole poll
  is a single transaction).
* :class:`SerialLink` — the active interface's RS-232 line: per-byte
  line time, store-and-forward queueing, optional corruption, and a
  fixed host-side latency per received frame.
* :class:`DirectLink` — the in-process backdoor (simulator-only): zero
  cost, still fully accounted, used by the code-level debugger baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.comm.jtag import JtagProbe
from repro.comm.rs232 import Rs232Link
from repro.errors import CommError
from repro.obs.runtime import OBS
from repro.target.board import Board


class DebugLink:
    """Base transport: transaction accounting shared by every link kind.

    A *transaction* is one host <-> target round trip, whatever it
    carries. Cost is modeled microseconds. Subclasses implement the
    operations they physically support and raise :class:`CommError`
    for the rest (a serial command stream cannot read memory).
    """

    kind = "abstract"

    def __init__(self) -> None:
        #: attribution channel this link's traffic is booked under in
        #: per-channel budget accounting ("passive", "active", "inspect",
        #: ...); defaults to the transport kind until a layer claims it.
        self.label = type(self).kind
        self.transactions = 0
        self.words_read = 0
        self.words_written = 0
        self.frames_carried = 0
        self.cost_us_total = 0
        #: retry-layer accounting; bare links never retry or time out,
        #: but keeping the counters here means every link's stats() has
        #: the same shape and session aggregation never special-cases
        #: wrapped transports (:mod:`repro.comm.retry`).
        self.retries = 0
        self.timeouts = 0
        if OBS.metrics is not None:
            # stats() IS the registry series (repro.obs unification):
            # every key folds into a link.* counter labeled by the
            # dict's own kind/label fields, read at snapshot time so
            # wrapper kinds ("chaos[jtag]") and later channel label
            # claims land correctly. Wrappers mirror their inner
            # link's counters, so each series is one link's honest
            # books — aggregate via the session's transport.* series
            # (outermost links only), not by summing link.* kinds.
            OBS.metrics.bind_stats("link", self.stats, owner=self,
                                   label_keys=("kind", "label"))

    def _account(self, cost_us: int, words_read: int = 0,
                 words_written: int = 0, frames: int = 0) -> int:
        self.transactions += 1
        self.words_read += words_read
        self.words_written += words_written
        self.frames_carried += frames
        self.cost_us_total += cost_us
        return cost_us

    # -- memory-access contract (JTAG-class links) -------------------------

    def read_word(self, addr: int) -> Tuple[int, int]:
        """Read one word; returns ``(value, cost_us)``. One transaction."""
        raise CommError(f"{self.kind} link cannot read target memory")

    def read_block(self, base: int, count: int) -> Tuple[List[int], int]:
        """Read *count* consecutive words from *base*. One transaction."""
        raise CommError(f"{self.kind} link cannot read target memory")

    def read_scatter(self, addrs: Sequence[int]) -> Tuple[List[int], int]:
        """Read arbitrary words batched into runs. One transaction."""
        raise CommError(f"{self.kind} link cannot read target memory")

    def write_word(self, addr: int, value: int) -> int:
        """Write one word; returns cost_us. One transaction."""
        raise CommError(f"{self.kind} link cannot write target memory")

    def write_block(self, base: int, values: Sequence[int]) -> int:
        """Write consecutive words starting at *base*. One transaction."""
        raise CommError(f"{self.kind} link cannot write target memory")

    # -- frame contract (serial-class links) -------------------------------

    def transmit_frame(self, t_ready: int,
                       frame: bytes) -> Tuple[bytes, int, int]:
        """Carry one frame; returns ``(wire_frame, t_line_done, t_host_arrival)``."""
        raise CommError(f"{self.kind} link cannot carry command frames")

    # -- run control -------------------------------------------------------

    def halt_target(self) -> None:
        raise CommError(f"{self.kind} link cannot control the target")

    def resume_target(self) -> None:
        raise CommError(f"{self.kind} link cannot control the target")

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Accounting snapshot: transactions, words, frames, total cost."""
        return {
            "kind": self.kind,
            "label": self.label,
            "transactions": self.transactions,
            "words_read": self.words_read,
            "words_written": self.words_written,
            "frames_carried": self.frames_carried,
            "cost_us_total": self.cost_us_total,
            "retries": self.retries,
            "timeouts": self.timeouts,
        }

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.transactions} txn, "
                f"{self.cost_us_total}us>")


class JtagLink(DebugLink):
    """Scan-chain access: one USB transaction per operation, never per word."""

    kind = "jtag"

    def __init__(self, probe: JtagProbe) -> None:
        super().__init__()
        self.probe = probe

    def read_word(self, addr: int) -> Tuple[int, int]:
        value, cost = self.probe.read_word_timed(addr)
        return value, self._account(cost, words_read=1)

    def read_block(self, base: int, count: int) -> Tuple[List[int], int]:
        values, cost = self.probe.read_block_timed(base, count)
        return values, self._account(cost, words_read=count)

    def read_scatter(self, addrs: Sequence[int]) -> Tuple[List[int], int]:
        values, cost = self.probe.read_scatter_timed(addrs)
        return values, self._account(cost, words_read=len(addrs))

    def write_word(self, addr: int, value: int) -> int:
        cost = self.probe.write_word_timed(addr, value)
        return self._account(cost, words_written=1)

    def write_block(self, base: int, values: Sequence[int]) -> int:
        cost = self.probe.write_block_timed(base, values)
        return self._account(cost, words_written=len(values))

    def halt_target(self) -> None:
        self.probe.halt_target()

    def resume_target(self) -> None:
        self.probe.resume_target()


class SerialLink(DebugLink):
    """The active interface's transport: RS-232 line + host receive latency.

    Owns the line model and the fixed per-frame host latency that used to
    live inside the channel; the channel only decides *what* to send and
    *when* the target made it ready.
    """

    kind = "serial"

    def __init__(self, line: Optional[Rs232Link] = None,
                 host_latency_us: int = 50,
                 board: Optional[Board] = None) -> None:
        super().__init__()
        if host_latency_us < 0:
            raise CommError(
                f"host latency must be non-negative, got {host_latency_us}")
        self.line = line if line is not None else Rs232Link()
        self.host_latency_us = host_latency_us
        self.board = board

    def transmit_frame(self, t_ready: int,
                       frame: bytes) -> Tuple[bytes, int, int]:
        """Serialize one frame; returns the (possibly corrupted) wire bytes,
        the instant the line finishes, and the host-side arrival instant.

        Cost charged to the link is what this frame's transport really
        costs — line time plus host latency — not the queueing wait
        behind earlier frames (that is congestion, not transport).
        """
        t_start, t_done = self.line.transmit(t_ready, len(frame))
        wire = self.line.corrupt(frame)
        t_arrive = t_done + self.host_latency_us
        self._account(t_done - t_start + self.host_latency_us, frames=1)
        return bytes(wire), t_done, t_arrive

    def halt_target(self) -> None:
        """Debug-agent halt request carried over the serial RX line."""
        if self.board is None:
            raise CommError("serial link is not attached to a board")
        self.board.stalled = True

    def resume_target(self) -> None:
        if self.board is None:
            raise CommError("serial link is not attached to a board")
        self.board.stalled = False


class DirectLink(DebugLink):
    """In-process backdoor over a board: zero cost, full accounting.

    The simulator-only shortcut the code-level debugger uses; it follows
    the same batching contract (one transaction per operation), so code
    written against a :class:`JtagLink` behaves identically here, just
    with a free transport.
    """

    kind = "direct"

    def __init__(self, board: Board) -> None:
        super().__init__()
        self.board = board

    def read_word(self, addr: int) -> Tuple[int, int]:
        value = self.board.memory.peek(addr)
        return value, self._account(0, words_read=1)

    def read_block(self, base: int, count: int) -> Tuple[List[int], int]:
        if count <= 0:
            raise CommError(f"block count must be positive, got {count}")
        values = [self.board.memory.peek(base + i) for i in range(count)]
        return values, self._account(0, words_read=count)

    def read_scatter(self, addrs: Sequence[int]) -> Tuple[List[int], int]:
        if not addrs:
            raise CommError("scatter read needs at least one address")
        values = [self.board.memory.peek(addr) for addr in addrs]
        return values, self._account(0, words_read=len(addrs))

    def write_word(self, addr: int, value: int) -> int:
        self.board.memory.poke(addr, value)
        return self._account(0, words_written=1)

    def write_block(self, base: int, values: Sequence[int]) -> int:
        if not values:
            raise CommError("block write needs at least one value")
        for offset, value in enumerate(values):
            self.board.memory.poke(base + offset, value)
        return self._account(0, words_written=len(values))

    def halt_target(self) -> None:
        self.board.stalled = True

    def resume_target(self) -> None:
        self.board.stalled = False


def write_patches(link: DebugLink, patches: Sequence[Tuple[int, int]]) -> int:
    """Apply ``(addr, value)`` memory patches through *link*, batched.

    The write-side scatter planner: patches are grouped into maximal
    contiguous address runs and every run becomes one
    :meth:`DebugLink.write_block` call — on a JTAG link that is one
    MEMADDR + BLOCKWRITE sequence per run and one USB transaction each,
    instead of a round trip per patched word. Later duplicates of an
    address win (the order fault injectors produce). Returns the total
    modeled cost in microseconds.
    """
    if not patches:
        return 0
    by_addr = {addr: value for addr, value in patches}
    cost = 0
    run_base: Optional[int] = None
    run_values: List[int] = []
    for addr in sorted(by_addr):
        if run_base is not None and addr == run_base + len(run_values):
            run_values.append(by_addr[addr])
            continue
        if run_base is not None:
            cost += link.write_block(run_base, run_values)
        run_base, run_values = addr, [by_addr[addr]]
    cost += link.write_block(run_base, run_values)
    return cost
