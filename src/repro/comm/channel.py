"""Debug channels: how commands travel from the target to the GDM.

Both of the paper's command-interface solutions implement the same
:class:`DebugChannel` contract, so the runtime engine is agnostic:

* :class:`ActiveChannel` — instrumented code EMITs; frames cross an RS-232
  link with UART FIFO accounting; the cost is target cycles per command.
* :class:`PassiveChannel` — a JTAG probe polls monitored variables and
  synthesizes commands on change; zero target cost, latency bounded by the
  poll period plus scan time.

Neither channel talks to a transport directly: all host <-> target I/O
routes through a :class:`~repro.comm.link.DebugLink`, which owns the cost
model and the transaction batching. A passive poll is **one** link
transaction regardless of watch count — the poll plan (addresses resolved,
contiguous runs grouped) is compiled once at :meth:`PassiveChannel.start`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.comdes.fsm import StateMachine
from repro.comm.frames import FrameDecoder, encode_frame
from repro.comm.jtag import JtagProbe, group_runs
from repro.comm.link import DebugLink, JtagLink, SerialLink
from repro.comm.protocol import Command, CommandKind
from repro.comm.rs232 import Rs232Link
from repro.errors import CommError, LinkDownError, TransientLinkError
from repro.obs.runtime import OBS
from repro.sim.kernel import Simulator
from repro.target.board import Board
from repro.target.firmware import FirmwareImage

CommandHandler = Callable[[Command], None]


class DebugChannel:
    """Base class: fan-out of decoded commands to subscribers."""

    def __init__(self) -> None:
        self._handlers: List[CommandHandler] = []
        self.commands_delivered = 0

    def subscribe(self, handler: CommandHandler) -> None:
        """Register a command consumer (the engine, trace recorders...)."""
        self._handlers.append(handler)

    def deliver(self, command: Command) -> None:
        """Hand a command to every subscriber."""
        self.commands_delivered += 1
        for handler in list(self._handlers):
            handler(command)

    # Target control used by model-level breakpoints; channel-specific.
    def halt_target(self) -> None:
        raise NotImplementedError

    def resume_target(self) -> None:
        raise NotImplementedError


class CompositeChannel(DebugChannel):
    """Fans several channels (one per node) into one engine-facing channel."""

    def __init__(self, children: Sequence[DebugChannel] = ()) -> None:
        super().__init__()
        self.children: List[DebugChannel] = []
        for child in children:
            self.add(child)

    def add(self, child: DebugChannel) -> DebugChannel:
        """Attach a child channel; its commands flow through this one."""
        self.children.append(child)
        child.subscribe(self.deliver)
        return child

    def halt_target(self) -> None:
        """Stall every node."""
        for child in self.children:
            child.halt_target()

    def resume_target(self) -> None:
        """Release every node."""
        for child in self.children:
            child.resume_target()


class ActiveChannel(DebugChannel):
    """Active command interface: EMIT -> UART FIFO -> RS-232 -> decoder.

    The RTOS (or any job runner) must call :meth:`begin_job` with the job's
    release time before executing target code, so emission timestamps can be
    derived from the CPU cycle counter.
    """

    def __init__(self, sim: Simulator, board: Board, firmware: FirmwareImage,
                 link: Optional[Rs232Link] = None,
                 host_latency_us: int = 50) -> None:
        super().__init__()
        self.sim = sim
        self.board = board
        self.firmware = firmware
        self.debug_link = SerialLink(link, host_latency_us, board)
        self.decoder = FrameDecoder()
        self.frames_sent = 0
        self.frames_dropped = 0
        self._job_base_cycles = 0
        self._job_base_time = 0
        self._inflight: List[Tuple[int, int]] = []  # (t_done, nbytes)
        board.cpu.emit_handler = self._on_emit

    @property
    def link(self) -> Rs232Link:
        """The underlying serial line (swap it to model a different cable)."""
        return self.debug_link.line

    @link.setter
    def link(self, line: Rs232Link) -> None:
        self.debug_link.line = line

    @property
    def host_latency_us(self) -> int:
        """Fixed host-side receive latency, owned by the link."""
        return self.debug_link.host_latency_us

    def begin_job(self, t_release: int) -> None:
        """Anchor subsequent emissions to this job's release instant."""
        self._job_base_cycles = self.board.cpu.cycles
        self._job_base_time = t_release

    def _on_emit(self, kind: int, path_id: int, value: int) -> None:
        delta = self.board.cpu.cycles - self._job_base_cycles
        t_emit = self._job_base_time + self.board.cycles_to_us(delta)
        frame = encode_frame(kind, path_id, value)

        # UART FIFO occupancy: bytes whose transmission has not finished.
        self._inflight = [(done, n) for done, n in self._inflight if done > t_emit]
        pending = sum(n for _, n in self._inflight)
        if pending + len(frame) > self.board.uart.fifo_depth:
            self.board.uart.overruns += 1
            self.frames_dropped += 1
            return

        wire_frame, t_done, t_arrive = self.debug_link.transmit_frame(
            t_emit, frame)
        self._inflight.append((t_done, len(frame)))
        self.board.uart.bytes_sent += len(frame)
        self.frames_sent += 1
        self.sim.schedule_at(max(t_arrive, self.sim.now), self._deliver_frame,
                             wire_frame, t_emit)

    def _deliver_frame(self, frame: bytes, t_emit: int) -> None:
        for kind, path_id, value in self.decoder.feed(frame):
            command = Command(
                CommandKind(kind), self.firmware.path_of_id(path_id), value,
                t_target=t_emit, t_host=self.sim.now,
            )
            self.deliver(command)

    def halt_target(self) -> None:
        """Stall the target (debug-agent request carried over the serial RX)."""
        self.debug_link.halt_target()

    def resume_target(self) -> None:
        """Release the target."""
        self.debug_link.resume_target()


class WatchSpec:
    """One monitored variable for the passive channel.

    ``make_command(value)`` maps a newly observed value to the command to
    synthesize, or returns None to suppress (e.g. out-of-range state index).
    """

    def __init__(self, symbol: str,
                 make_command: Callable[[int], Optional[Tuple[CommandKind, str, int]]]) -> None:
        self.symbol = symbol
        self.make_command = make_command

    @classmethod
    def signal(cls, producer_actor: str, port: str, signal_name: str) -> "WatchSpec":
        """Watch an actor output word as a signal update."""
        path = f"signal:{signal_name}"
        return cls(f"{producer_actor}.out.{port}",
                   lambda value: (CommandKind.SIG_UPDATE, path, value))

    @classmethod
    def state_machine(cls, actor_name: str, block_scope: str,
                      machine: StateMachine) -> "WatchSpec":
        """Watch a state variable; values map to STATE_ENTER commands."""
        states = list(machine.states)

        def make(value: int) -> Optional[Tuple[CommandKind, str, int]]:
            if not (0 <= value < len(states)):
                return None
            path = f"state:{actor_name}.{block_scope}.{states[value]}"
            return (CommandKind.STATE_ENTER, path, value)

        return cls(f"{actor_name}.{block_scope}.$_state", make)

    def __repr__(self) -> str:
        return f"<WatchSpec {self.symbol}>"


class PollPlan:
    """A compiled passive poll: addresses resolved, contiguous runs grouped.

    Built once at :meth:`PassiveChannel.start`; every subsequent poll just
    replays it. ``addrs[i]`` is the RAM address of watch *i*; ``runs`` is
    the block-transfer plan the link executes in one transaction.
    """

    __slots__ = ("addrs", "runs")

    def __init__(self, addrs: Sequence[int]) -> None:
        self.addrs = list(addrs)
        self.runs = group_runs(self.addrs)

    def __repr__(self) -> str:
        return (f"<PollPlan {len(self.addrs)} watch(es) in "
                f"{len(self.runs)} run(s)>")


class PassiveChannel(DebugChannel):
    """Passive command interface: periodic JTAG scan of monitored variables.

    Every poll executes the precompiled :class:`PollPlan` as **one** link
    transaction (block reads riding the TAP's BLOCKREAD auto-increment),
    synthesizing a command for each changed word. Between polls the target
    runs completely undisturbed — and the poll itself never touches it.
    """

    def __init__(self, sim: Simulator, probe: Optional[JtagProbe],
                 firmware: FirmwareImage, watches: Sequence[WatchSpec],
                 poll_period_us: int = 500,
                 link: Optional[DebugLink] = None) -> None:
        super().__init__()
        if poll_period_us <= 0:
            raise CommError(f"poll period must be positive, got {poll_period_us}")
        if not watches:
            raise CommError("passive channel needs at least one watch")
        if link is None:
            if probe is None:
                raise CommError("passive channel needs a probe or a link")
            link = JtagLink(probe)
        self.sim = sim
        self.link = link
        self.probe = probe if probe is not None else getattr(link, "probe", None)
        self.firmware = firmware
        self.watches = list(watches)
        self.poll_period_us = poll_period_us
        #: the period the channel was configured with — degradation caps
        #: (DegradationPolicy.max_slowdown) are written against this
        self.initial_poll_period_us = poll_period_us
        self.polls = 0
        self.polls_failed = 0
        self.scan_us_total = 0
        if OBS.metrics is not None:
            # the channel's poll books become poll.* registry series
            # (read once per snapshot; the poll path stays untouched)
            OBS.metrics.bind_stats(
                "poll",
                lambda: {"polls": self.polls,
                         "polls_failed": self.polls_failed,
                         "scan_us_total": self.scan_us_total,
                         "watches": len(self.watches),
                         "shed": len(self.shed)},
                owner=self)
        self.plan: Optional[PollPlan] = None
        self.shed: List[str] = []  #: symbols dropped by shed_watches
        self._addrs: List[int] = []  # resolved once at start()
        self._last: List[int] = []
        self._baseline_scan_us = 0
        self._stride = 1
        self._phase = 0
        self._groups: List[Tuple[List[int], PollPlan]] = []
        self._running = False
        for watch in self.watches:
            firmware.symbols.lookup(watch.symbol)  # fail fast on bad names

    def start(self) -> None:
        """Compile the poll plan, baseline all watches, poll periodically.

        Symbol resolution happens here, exactly once per watch — polls
        never consult the symbol table again, and neither do the
        degradation-time plan recompiles (:meth:`set_stride`,
        :meth:`shed_watches`), which reuse the addresses resolved here.
        """
        if self._running:
            raise CommError("passive channel already started")
        self._running = True
        symbols = self.firmware.symbols
        self._addrs = [symbols.addr_of(w.symbol) for w in self.watches]
        self._recompile()
        try:
            self._last, self._baseline_scan_us = self.link.read_scatter(
                self.plan.addrs)
        except (TransientLinkError, LinkDownError):
            # a wire that is down at start() must not kill the session:
            # baseline to "never seen", so the first successful poll
            # reports every watch as changed
            self._last = [None] * len(self._addrs)
            self._baseline_scan_us = 0
        self.sim.schedule(self.poll_period_us, self._poll)

    def stop(self) -> None:
        """Stop scheduling polls (takes effect at the next tick)."""
        self._running = False

    # -- degradation hooks (driven by engine.session.DegradationPolicy) -----

    def set_poll_period(self, period_us: int) -> None:
        """Change the poll rate; takes effect when the next poll reschedules."""
        if period_us <= 0:
            raise CommError(f"poll period must be positive, got {period_us}")
        self.poll_period_us = period_us

    def set_stride(self, stride: int) -> None:
        """Split the poll plan into *stride* contiguous groups.

        Each tick polls one group round-robin, so per-tick transport
        drops to ~1/stride of the full plan (still one transaction per
        tick) while every watch is still visited every ``stride`` ticks
        — change-detection latency trades against bus occupancy.
        """
        if stride < 1:
            raise CommError(f"stride must be >= 1, got {stride}")
        self._stride = min(stride, len(self.watches))
        self._recompile()

    @property
    def stride(self) -> int:
        """How many groups the poll plan is currently split into."""
        return self._stride

    def shed_watches(self, count: int = 1) -> List[str]:
        """Drop the *count* lowest-priority (last-listed) watches.

        Watch order is priority order by convention (default_watches
        lists state machines before output signals), so shedding from
        the end gives up the least critical observability first.
        Returns the dropped symbols; never sheds the last watch.
        """
        dropped: List[str] = []
        while count > 0 and len(self.watches) > 1:
            watch = self.watches.pop()
            self._addrs.pop()
            if self._last:
                self._last.pop()
            dropped.append(watch.symbol)
            count -= 1
        if dropped:
            self.shed.extend(dropped)
            self._recompile()
        return dropped

    def _recompile(self) -> None:
        """Rebuild plan + stride groups from the stored resolved addrs."""
        self.plan = PollPlan(self._addrs)
        self._stride = min(self._stride, max(1, len(self._addrs)))
        if self._stride == 1:
            self._groups = []
            return
        per = -(-len(self._addrs) // self._stride)  # ceil division
        self._groups = []
        for g in range(self._stride):
            indices = list(range(g * per, min((g + 1) * per,
                                              len(self._addrs))))
            if indices:
                self._groups.append(
                    (indices, PollPlan([self._addrs[i] for i in indices])))

    def estimated_tick(self) -> Tuple[int, int]:
        """Per-tick transport estimate ``(words, cost_us)`` for budget
        projection: the baseline scan scaled to the current plan split."""
        total = max(1, len(self._addrs))
        if self._stride <= 1 or not self._groups:
            return total, max(1, self._baseline_scan_us)
        words = -(-total // self._stride)
        cost = max(1, self._baseline_scan_us * words // total)
        return words, cost

    # -- the poll path -------------------------------------------------------

    def _poll(self) -> None:
        if not self._running:
            return
        self.polls += 1
        t_poll = self.sim.now
        if self._stride > 1 and self._groups:
            indices, plan = self._groups[self._phase % len(self._groups)]
            self._phase += 1
        else:
            indices, plan = None, self.plan
        try:
            values, scan_cost = self.link.read_scatter(plan.addrs)
        except (TransientLinkError, LinkDownError):
            # the wire ate this poll; the next tick resamples everything
            self.polls_failed += 1
            if OBS.metrics is not None:
                OBS.metrics.counter("poll.failed",
                                    channel=self.link.label).inc()
            self.sim.schedule(self.poll_period_us, self._poll)
            return
        self.scan_us_total += scan_cost
        if OBS.spans is not None:
            # one slice per poll scan, timed by the transport cost model
            OBS.spans.emit("poll", t_poll, scan_cost,
                           track=("comm", self.link.label), cat="poll",
                           args={"words": len(plan.addrs)})
        last = self._last
        for offset, value in enumerate(values):
            index = indices[offset] if indices is not None else offset
            if value == last[index]:
                continue
            last[index] = value
            made = self.watches[index].make_command(value)
            if made is None:
                continue
            kind, path, mapped = made
            self.sim.schedule(scan_cost, self._deliver_change,
                              kind, path, mapped, t_poll)
        # self-scheduled (not sim.every): period changes take effect at
        # the next tick, and a stopped channel stops cleanly
        self.sim.schedule(self.poll_period_us, self._poll)

    def _deliver_change(self, kind: CommandKind, path: str, value: int,
                        t_poll: int) -> None:
        self.deliver(Command(kind, path, value,
                             t_target=t_poll, t_host=self.sim.now))

    def halt_target(self) -> None:
        """Stall the target through the TAP HALT instruction."""
        self.link.halt_target()

    def resume_target(self) -> None:
        """Release the target through the TAP RESUME instruction."""
        self.link.resume_target()
