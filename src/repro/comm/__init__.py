"""Communication substrate: the host <-> target debug transport stack.

The paper defines two ways the target reaches the Graphical Debugger Model:

* **active** — generated code contains extra EMIT instructions that send
  command frames over a serial line (RS-232 in the prototype);
* **passive** — a JTAG probe (IEEE 1149.1) scans monitored variables out of
  the running chip over a USB/PCI host transport, with **zero** target-code
  modification.

Both are implemented behind the common :class:`~repro.comm.channel.DebugChannel`
interface the runtime engine consumes. The stack, top to bottom::

    DebugChannel        what the engine sees: decoded Command fan-out
      ActiveChannel     EMIT -> UART FIFO -> frames        (instrumented)
      PassiveChannel    compiled PollPlan -> scatter read  (clean code)
    DebugLink           transaction batching + the whole cost model
      SerialLink        RS-232 line time + host receive latency
      JtagLink          TCK-rate scan cost + one USB round trip per txn
      DirectLink        in-process backdoor (free, still accounted)
    wire models         Rs232Link / TapController+JtagProbe / UsbTransport

TAP instruction register map (:mod:`repro.comm.jtag`):

========== ======= ====================================================
IDCODE     0b0001  32-bit device identification (capture)
MEMADDR    0b0010  32-bit memory address register (update)
MEMREAD    0b0011  capture loads RAM[address] for shifting out
MEMWRITE   0b0100  update stores the shifted value to RAM[address]
HALT       0b0101  update-IR stalls the target's task dispatching
RESUME     0b0110  update-IR releases the stall
BLOCKREAD  0b0111  MEMREAD with capture-time address auto-increment
BLOCKWRITE 0b1000  MEMWRITE with update-time address auto-increment
BYPASS     0b1111  single-bit bypass register
========== ======= ====================================================

**Link-layer cost model.** A link *transaction* is one host round trip;
its cost is what the wire charges (scan bits at TCK rate for JTAG, line
bits at baud rate for serial) plus the per-round-trip transport latency
(USB frame scheduling, host receive path) paid **once per transaction**,
not per word. BLOCKREAD is what makes that amortization real on the scan
chain: N watched words are grouped into contiguous runs
(:func:`~repro.comm.jtag.group_runs`) and move as block transfers inside
a single transaction, so passive-poll cost grows sublinearly in watch
count while the target still pays exactly zero cycles. BLOCKWRITE is the
mirror-image write path: bulk memory patches (fault injection over JTAG,
state restoration) are grouped into contiguous runs by
:func:`~repro.comm.link.write_patches` and each run moves as one
MEMADDR + BLOCKWRITE sequence inside a single transaction.

**Fault injection, retry, and degradation.** Real debug transports lose
frames, corrupt bits and wedge mid-campaign; the robustness layer models
that without giving up reproducibility. Two stackable link wrappers
(:mod:`repro.comm.chaos`, :mod:`repro.comm.retry`) and a session-level
degradation policy (:class:`repro.engine.session.DegradationPolicy`)
obey three invariants:

* **determinism at a fixed seed** — every injected fault, every retry
  and every backoff delay is a pure function of the chaos seed and the
  operation index (:func:`repro.util.seeds.derive_seed` per-op streams,
  never shared RNG state), so two runs at the same seed produce
  byte-identical command transcripts, ``transport_stats()`` and
  degradation event logs — a failing chaos run is replayable, exactly
  like a failing fault-injection run;
* **zero overhead when disabled** — a :class:`~repro.comm.chaos.ChaosLink`
  with all rates at 0.0 performs no hashing and draws no randomness on
  the hot path (one attribute check per op), so wrappers can stay in
  the stack permanently and the perf floors gate that claim
  (``benchmarks/perf_chaos.py``);
* **idempotency-aware retries** — :class:`~repro.comm.retry.RetryingLink`
  retries BLOCKREAD-class operations freely (reads have no side
  effects), but a write retry first verify-reads the target range and
  re-issues only on mismatch, so a write whose completion ack was lost
  is never blindly doubled. Frame transmission is fire-and-forget and
  never retried (the decoder's checksum already rejects corrupt
  frames). Exhausted retries raise a structured
  :class:`~repro.errors.LinkDownError`; budget-busting passive plans
  degrade (slower polls, split plans, shed watches) under a
  ``DegradationPolicy`` instead of raising.
"""

from repro.comm.protocol import Command, CommandKind
from repro.comm.frames import FrameDecoder, FrameError, decode_frame, encode_frame
from repro.comm.rs232 import Rs232Link
from repro.comm.usb import UsbTransport
from repro.comm.jtag import JtagProbe, TapController, TapState, group_runs
from repro.comm.link import (
    DebugLink,
    DirectLink,
    JtagLink,
    SerialLink,
    write_patches,
)
from repro.comm.channel import (
    ActiveChannel,
    DebugChannel,
    PassiveChannel,
    PollPlan,
)
from repro.comm.chaos import ChaosConfig, ChaosLink
from repro.comm.retry import RetryPolicy, RetryingLink

__all__ = [
    "Command", "CommandKind",
    "encode_frame", "decode_frame", "FrameDecoder", "FrameError",
    "Rs232Link",
    "UsbTransport",
    "TapState", "TapController", "JtagProbe", "group_runs",
    "DebugLink", "DirectLink", "JtagLink", "SerialLink", "write_patches",
    "DebugChannel", "ActiveChannel", "PassiveChannel", "PollPlan",
    "ChaosConfig", "ChaosLink", "RetryPolicy", "RetryingLink",
]
