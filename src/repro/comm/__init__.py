"""Communication substrate: command protocol, RS-232, JTAG, USB transport.

The paper defines two ways the target reaches the Graphical Debugger Model:

* **active** — generated code contains extra EMIT instructions that send
  command frames over a serial line (RS-232 in the prototype);
* **passive** — a JTAG probe (IEEE 1149.1) scans monitored variables out of
  the running chip over a USB/PCI host transport, with **zero** target-code
  modification.

Both are implemented here behind the common :class:`~repro.comm.channel.DebugChannel`
interface the runtime engine consumes.
"""

from repro.comm.protocol import Command, CommandKind
from repro.comm.frames import FrameDecoder, FrameError, decode_frame, encode_frame
from repro.comm.rs232 import Rs232Link
from repro.comm.usb import UsbTransport
from repro.comm.jtag import JtagProbe, TapController, TapState
from repro.comm.channel import ActiveChannel, DebugChannel, PassiveChannel

__all__ = [
    "Command", "CommandKind",
    "encode_frame", "decode_frame", "FrameDecoder", "FrameError",
    "Rs232Link",
    "UsbTransport",
    "TapState", "TapController", "JtagProbe",
    "DebugChannel", "ActiveChannel", "PassiveChannel",
]
