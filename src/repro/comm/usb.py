"""Host-side USB/PCI transport cost model.

The paper's passive setup sends monitoring instructions to the JTAG probe
"through the USB/PCI protocol". What matters for debugger latency is the
per-transaction round-trip cost (USB frame scheduling dominates on real
probes), modeled here as a fixed latency plus a per-word cost.
"""

from __future__ import annotations

from repro.errors import CommError


class UsbTransport:
    """Round-trip cost model for host <-> probe transactions."""

    def __init__(self, latency_us: int = 125, per_word_us: int = 2) -> None:
        if latency_us < 0 or per_word_us < 0:
            raise CommError("transport costs must be non-negative")
        self.latency_us = latency_us
        self.per_word_us = per_word_us
        self.transactions = 0
        self.words_moved = 0

    def transaction_cost_us(self, words: int) -> int:
        """Cost of one transaction moving *words* 32-bit words."""
        if words < 0:
            raise CommError(f"words must be non-negative, got {words}")
        self.transactions += 1
        self.words_moved += words
        return self.latency_us + words * self.per_word_us
