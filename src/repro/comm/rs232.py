"""RS-232 serial link model.

Models the prototype's active interface transport: 8N1 framing (10 line bits
per byte) at a configurable baud rate, with store-and-forward serialization —
a frame queued while the line is busy waits for the line to free up. The
model works at frame granularity but with exact per-byte line time, which
preserves bandwidth and queueing behaviour without simulating edges.

An optional per-byte error probability models a noisy cable: corrupted
frames fail their checksum at the decoder and are dropped (counted) — the
failure mode the frame protocol's resynchronization exists for.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.errors import CommError

#: standard baud rates accepted without warning (others allowed, just unusual)
STANDARD_BAUDS = (9600, 19200, 38400, 57600, 115200, 230400)

LINE_BITS_PER_BYTE = 10  # start + 8 data + stop


class Rs232Link:
    """A one-directional serial line with busy tracking."""

    def __init__(self, baud: int = 115200, byte_error_rate: float = 0.0,
                 seed: int = 0) -> None:
        if baud <= 0:
            raise CommError(f"baud must be positive, got {baud}")
        if not (0.0 <= byte_error_rate < 1.0):
            raise CommError(
                f"byte_error_rate must be in [0, 1), got {byte_error_rate}"
            )
        self.baud = baud
        self.byte_error_rate = byte_error_rate
        self._rng = random.Random(seed)
        self._free_at = 0
        self.bytes_carried = 0
        self.bytes_corrupted = 0
        self.busy_us = 0

    def byte_time_us(self) -> float:
        """Line time of one byte in microseconds (exact rational)."""
        return LINE_BITS_PER_BYTE * 1_000_000 / self.baud

    def transmit(self, t_ready: int, nbytes: int) -> Tuple[int, int]:
        """Send *nbytes* that become ready at *t_ready*.

        Returns ``(t_start, t_done)`` in microseconds. Serialization is
        FIFO: transmission starts when both the data is ready and the line
        is free.
        """
        if nbytes <= 0:
            raise CommError(f"nbytes must be positive, got {nbytes}")
        t_start = max(t_ready, self._free_at)
        duration = round(nbytes * self.byte_time_us())
        t_done = t_start + max(1, duration)
        self._free_at = t_done
        self.bytes_carried += nbytes
        self.busy_us += t_done - t_start
        return t_start, t_done

    def corrupt(self, data: bytes) -> bytes:
        """Apply line noise: each byte flips one random bit with probability
        ``byte_error_rate``. Returns the (possibly altered) bytes."""
        if self.byte_error_rate == 0.0:
            return data
        out = bytearray(data)
        for index in range(len(out)):
            if self._rng.random() < self.byte_error_rate:
                out[index] ^= 1 << self._rng.randrange(8)
                self.bytes_corrupted += 1
        return bytes(out)

    @property
    def free_at(self) -> int:
        """Earliest time the line can start a new transmission."""
        return self._free_at
