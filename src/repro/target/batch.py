"""Batch lockstep interpreter: execute N identical-firmware boards as one.

Fault campaigns and seed sweeps run hundreds of boards with *identical
firmware, different data* — and on a 1-CPU container process-level
scale-out loses outright (``speedup_4w`` 0.87x in BENCH_fleet). This
tier goes the other way: one interpreter dispatch drives every board at
once over structure-of-arrays state.

**SoA layout.** A :class:`_Group` holds lanes (boards) that share one
``(pc, stack depth)`` execution point. State is column-major: one list
per stack slot and one list per RAM word, each ``len(lanes)`` long —
``stack[s][j]`` is lane *j*'s value in slot *s*. One fetch/dispatch then
serves all lanes; data work is a single list comprehension (C-speed
iteration) instead of per-board interpreter overhead.

**Immutable columns.** Column lists are never mutated in place once
shared: LOAD pushes the RAM column *by reference* (O(1) for any lane
count), STORE *replaces* the RAM slot with the popped column, ALU ops
build fresh result columns, and STI — the only per-lane-addressed
write — copies each touched column before writing (copy-on-write).
This is what makes the data-movement opcodes that dominate generated
firmware nearly free per lane.

**Divergence: split / join / merge.** A conditional branch whose
predicate column is uniform (checked with ``list.count`` at C speed)
stays lockstep. A mixed predicate **splits** the group in two. To
re-converge, whenever more than one group exists every group pauses at
*join pcs* (branch targets — the only places control flow can meet) and
groups at equal ``(pc, stack depth)`` **merge**; scheduling always
advances the lowest-pc group first so stragglers catch up. A group that
stays diverged longer than ``reconverge_window`` instructions (and is
not the largest), or that shrinks below ``min_lanes``, is peeled —
lockstep must pay for itself.

**Peel-off invariant (decompose-to-scalar).** Exactly like
``Cpu._run_fused`` decomposes a superinstruction whenever an
observation could tell the difference, a lane leaves the batch *before*
any instruction whose batched execution could be observably different —
a potential fault (RAM bounds, stack pressure, zero divisor, runaway
pc), an armed emit handler, a data watchpoint (write hook), divergence
past the window. The lane's bit-exact state (pc, stack, RAM plane,
cycle/instruction/read/write counters, emit log) is written back to its
ordinary :class:`~repro.target.cpu.Cpu`, which then *re-executes the
troublesome instruction itself* — so fault pcs, partial stack pops and
counter values are the serial code path's own, by construction, and
batch == serial is bit-for-bit provable at every stop. Counters fold
per-lane (``used_*`` arrays) because merged lanes have different
histories.

EMIT lanes *without* a handler stay batched: the per-lane append to the
live ``cpu.emit_log`` is position-independent and bit-identical, and
instrumented firmware is precisely the workload this tier exists to
accelerate. Lanes *with* a synchronous handler peel — the handler
observes mid-run CPU state that only scalar execution orders correctly.

The batch loop interprets the **plain decoded rows**, not the fused
ones — superinstruction fusion is timing-identical by contract, so
counters and stops agree with fused serial execution regardless.

Cohorts form one level up: :class:`repro.fleet.batch.BatchRunner`
groups campaign jobs by firmware fingerprint and runs each cohort
through a :class:`BatchCpu`.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.errors import TargetFault
from repro.obs.runtime import OBS
from repro.target.cpu import (
    Cpu, DEFAULT_RUN_LIMIT, RunResult, StopReason,
)
from repro.target.isa import (
    OP_ADD, OP_AND, OP_DIV, OP_DUP, OP_EMIT, OP_EQ, OP_GE, OP_GT, OP_HALT,
    OP_JMP, OP_JNZ, OP_JZ, OP_LDI, OP_LE, OP_LOAD, OP_LT, OP_MAX, OP_MIN,
    OP_MOD, OP_MUL, OP_NE, OP_NEG, OP_NOT, OP_OR, OP_POP, OP_PUSH, OP_STI,
    OP_STORE, OP_SUB, OP_SWAP,
)
from repro.target.memory import RAM_BASE
from repro.util.intmath import INT_MAX, INT_MIN, sdiv, smod


class LaneOutcome(NamedTuple):
    """What one lane's serial ``Cpu.run`` call would have produced.

    Exactly one of ``result``/``fault`` is set: ``result`` mirrors the
    serial :class:`~repro.target.cpu.RunResult` (whole-run counts),
    ``fault`` is the :class:`~repro.errors.TargetFault` the serial run
    would have raised. ``peeled`` reports whether the lane finished
    scalar — diagnostics only, never semantics.
    """

    result: Optional[RunResult]
    fault: Optional[TargetFault]
    peeled: bool


# ``_step_group`` exit signals.
_SIG_BUDGET = 0   # instruction budget for this span exhausted
_SIG_HALT = 1     # group executed HALT (uniform by construction)
_SIG_JOIN = 2     # paused at a join pc so peers can merge
_SIG_SPLIT = 3    # mixed branch predicate; payload partitions the group
_SIG_PEEL = 4     # payload positions (None: all) must leave the batch


class _Group:
    """Lanes sharing one (pc, stack depth); state in SoA columns."""

    __slots__ = ("lanes", "pc", "stack", "ram",
                 "used_i", "used_c", "used_r", "used_w", "since_split")

    def __init__(self, lanes, pc, stack, ram,
                 used_i, used_c, used_r, used_w, since_split=0):
        self.lanes = lanes          # sorted lane ids
        self.pc = pc
        self.stack = stack          # list of columns, one per stack slot
        self.ram = ram              # list of columns, one per RAM word
        self.used_i = used_i        # per-lane counters since run() start
        self.used_c = used_c
        self.used_r = used_r
        self.used_w = used_w
        self.since_split = since_split


class BatchCpu:
    """Lockstep interpreter over a cohort of CPUs sharing one program.

    Every lane must have been loaded with the same decoded program and
    configured with the same RAM size and stack depth — that is what
    makes one fetch serve all lanes. Data (RAM contents, stack, pc,
    counters) is per-lane and lives in the member CPUs between runs:
    :meth:`run` absorbs it into columns, executes, and writes every
    lane back bit-exactly, so a :class:`BatchCpu` is a drop-in driver
    for CPUs that are also used individually.
    """

    def __init__(self, cpus: Sequence[Cpu], reconverge_window: int = 4096,
                 min_lanes: int = 2) -> None:
        cpus = list(cpus)
        if not cpus:
            raise TargetFault("batch cohort needs at least one cpu")
        first = cpus[0]
        rows = first._rows
        nram = len(first.memory.cells)
        for cpu in cpus[1:]:
            if cpu._rows != rows:
                raise TargetFault(
                    "cohort firmware mismatch: lanes must share one program")
            if len(cpu.memory.cells) != nram:
                raise TargetFault("cohort RAM size mismatch")
            if cpu.stack_depth != first.stack_depth:
                raise TargetFault("cohort stack depth mismatch")
        self.cpus = cpus
        self.reconverge_window = reconverge_window
        self.min_lanes = min_lanes
        self._rows = rows
        self._ncode = len(rows)
        self._nram = nram
        self._depth = first.stack_depth
        #: lockstep health counters (cumulative across runs); ``resident``
        #: counts lane-activations served from a cohort kept columnar
        #: across :meth:`run_jobs` boundaries — the ROADMAP's watch
        #: metric for the short-activation transposition gap
        self.stats = {"splits": 0, "merges": 0, "peels": 0, "resident": 0}
        if OBS.metrics is not None:
            # the dict above IS the registry series (batch.* counters),
            # read once per snapshot — nothing on the lockstep hot path
            OBS.metrics.bind_stats("batch", lambda: self.stats, owner=self)
        # join pcs: branch targets, the only places control flow can meet
        joins = bytearray(self._ncode)
        for op, arg, _ in rows:
            if ((op == OP_JMP or op == OP_JZ or op == OP_JNZ)
                    and 0 <= arg < self._ncode):
                joins[arg] = 1
        self._joins = joins
        # refreshed per run(): emit handler flags + live emit_log lists
        self._handlers = ()
        self._any_handler = False
        self._emit_logs: List[list] = []
        self._bob = False  # break_on_breakpoints for scalar resumes

    @property
    def lanes(self) -> int:
        return len(self.cpus)

    # -- public drivers ------------------------------------------------------

    def run(self, max_instructions: int = DEFAULT_RUN_LIMIT,
            limits: Optional[Sequence[int]] = None,
            break_on_breakpoints: bool = False) -> List[LaneOutcome]:
        """Lockstep-execute every lane; semantically N serial ``run`` calls.

        *limits* gives a per-lane instruction budget (default: the
        uniform *max_instructions*). With *break_on_breakpoints*, lanes
        with armed breakpoints leave the batch and run the checked
        scalar loop throughout (mirroring ``Cpu.run``, where the flag is
        priced once at entry); without it breakpoints are ignored,
        exactly like the serial default. Returns one
        :class:`LaneOutcome` per lane; every lane's CPU and memory hold
        exactly the state the serial run would have left, including on
        faults.
        """
        cpus = self.cpus
        nl = len(cpus)
        self._bob = break_on_breakpoints
        if limits is None:
            limits = [max_instructions] * nl
        elif len(limits) != nl:
            raise TargetFault(
                f"limits has {len(limits)} entries for {nl} lanes")
        else:
            limits = list(limits)
        outcomes: List[Optional[LaneOutcome]] = [None] * nl
        self._handlers = tuple(c.emit_handler is not None for c in cpus)
        self._any_handler = any(self._handlers)
        self._emit_logs = [c.emit_log for c in cpus]
        buckets: dict = {}
        for lane, cpu in enumerate(cpus):
            if cpu.halted:
                outcomes[lane] = LaneOutcome(
                    RunResult(StopReason.HALTED, 0, 0), None, False)
                continue
            if (cpu.memory.write_hook is not None
                    or (break_on_breakpoints and cpu.breakpoints)):
                # data watchpoints and armed breakpoints need the
                # checked scalar loop throughout (and breakpoint-resume
                # skip semantics); leave _resume_pc to the scalar run
                outcomes[lane] = self._finish_scalar(lane, 0, 0, limits[lane])
                continue
            cpu._resume_pc = -1
            buckets.setdefault((cpu.pc, len(cpu.stack)), []).append(lane)
        groups = []
        for (pc, dep), lanes in sorted(buckets.items()):
            stack = [[cpus[ln].stack[s] for ln in lanes] for s in range(dep)]
            ram = [list(col) for col in
                   zip(*(cpus[ln].memory.cells for ln in lanes))]
            zeros = len(lanes)
            groups.append(_Group(lanes, pc, stack, ram,
                                 [0] * zeros, [0] * zeros,
                                 [0] * zeros, [0] * zeros))
        self._drive(groups, outcomes, limits)
        return outcomes  # type: ignore[return-value]

    def run_task(self, entry: int,
                 max_instructions: int = DEFAULT_RUN_LIMIT,
                 limits: Optional[Sequence[int]] = None,
                 break_on_breakpoints: bool = False) -> List[LaneOutcome]:
        """Point every lane at *entry* (empty stack) and :meth:`run`."""
        for cpu in self.cpus:
            cpu.reset_task(entry)
        return self.run(max_instructions, limits, break_on_breakpoints)

    def run_jobs(self, entry: int, count: int,
                 max_instructions: int = DEFAULT_RUN_LIMIT,
                 ) -> List[List[LaneOutcome]]:
        """Run *count* activations of the task at *entry* on every lane.

        The batch analogue of the serial campaign inner loop::

            for _ in range(count):
                cpu.reset_task(entry)
                try: cpu.run(limit)
                except TargetFault: ...   # job fault, board continues

        Campaign activations are short (tens of instructions for
        generated task bodies), so the absorb/scatter transposition that
        :meth:`run` pays per call would dominate. This driver keeps RAM
        **columnar across activations**: groups that end an activation
        cleanly (HALT or LIMIT) are carried to the next one with just a
        pc/stack/counter reset — no per-activation RAM movement — and
        only their per-activation counters are folded into the CPUs at
        each job boundary. Lanes that peel (fault, handler, divergence)
        fall back to their own ``Cpu`` with full state, exactly as the
        serial loop would leave it, and **rejoin** the columnar pool at
        the next activation's reset. Full state is scattered back to
        every lane once, after the last activation.
        """
        if not 0 <= entry < self._ncode:
            raise TargetFault(f"task entry {entry} outside code", entry)
        cpus = self.cpus
        nl = len(cpus)
        self._bob = False  # the campaign loop's serial default
        self._handlers = tuple(c.emit_handler is not None for c in cpus)
        self._any_handler = any(self._handlers)
        self._emit_logs = [c.emit_log for c in cpus]
        out: List[List[LaneOutcome]] = []
        # columnar groups carried across activations, with halted flags
        carry: List[tuple] = []
        columnar: set = set()
        limits = [max_instructions] * nl
        stats = self.stats
        for _ in range(count):
            outcomes: List[Optional[LaneOutcome]] = [None] * nl
            groups = []
            stats["resident"] += sum(len(g.lanes) for g, _h in carry)
            for g, _halted in carry:
                # the columnar reset_task: pc/stack only, RAM stays put
                g.pc = entry
                g.stack = []
                g.since_split = 0
                groups.append(g)
            absorb = []
            for lane, cpu in enumerate(cpus):
                if lane in columnar:
                    continue
                cpu.reset_task(entry)
                if cpu.memory.write_hook is not None:
                    outcomes[lane] = self._finish_scalar(
                        lane, 0, 0, max_instructions)
                else:
                    absorb.append(lane)
            if absorb:
                z = len(absorb)
                ram = [list(col) for col in
                       zip(*(cpus[ln].memory.cells for ln in absorb))]
                groups.append(_Group(absorb, entry, [], ram,
                                     [0] * z, [0] * z, [0] * z, [0] * z))
            retired: List[tuple] = []
            self._drive(groups, outcomes, limits, retired)
            carry = retired
            columnar = set()
            for g, halted in retired:
                reason = StopReason.HALTED if halted else StopReason.LIMIT
                zeros = [0] * len(g.lanes)
                for j, lane in enumerate(g.lanes):
                    outcomes[lane] = LaneOutcome(
                        RunResult(reason, g.used_i[j], g.used_c[j]),
                        None, False)
                    cpu = cpus[lane]
                    cpu.cycles += g.used_c[j]
                    cpu.instructions += g.used_i[j]
                    cpu.memory.reads += g.used_r[j]
                    cpu.memory.writes += g.used_w[j]
                    columnar.add(lane)
                # counters are folded: zero them so the final scatter
                # (plain _sync_lane) cannot double-count
                g.used_i = list(zeros)
                g.used_c = list(zeros)
                g.used_r = list(zeros)
                g.used_w = list(zeros)
            out.append(outcomes)  # type: ignore[arg-type]
        for g, halted in carry:
            for j in range(len(g.lanes)):
                self._sync_lane(g, j, None, halted)
        return out

    # -- scheduling ----------------------------------------------------------

    def _drive(self, groups, outcomes, limits, retired=None) -> None:
        """Advance groups to completion: merge, schedule, fold, peel.

        With *retired* (a list) supplied, groups that finish cleanly —
        HALT or exhausted budget — are appended to it as ``(group,
        halted)`` instead of being scattered back to their CPUs, so
        :meth:`run_jobs` can keep them columnar across activations.
        Peels always scatter: a peeled lane needs its scalar ``Cpu``.
        """
        stats = self.stats
        while groups:
            if len(groups) > 1:
                # merge pass: equal (pc, stack depth) means lockstep again
                by_key: dict = {}
                kept = []
                for g in groups:
                    key = (g.pc, len(g.stack))
                    other = by_key.get(key)
                    if other is None:
                        by_key[key] = g
                        kept.append(g)
                    else:
                        self._merge(other, g)
                        stats["merges"] += 1
                groups = kept
            if len(groups) > 1:
                # policy peels: tiny groups and stale stragglers leave;
                # the largest group is the batch's reason to exist
                groups.sort(key=lambda g: (-len(g.lanes), g.lanes[0]))
                kept = [groups[0]]
                for g in groups[1:]:
                    if (len(g.lanes) < self.min_lanes
                            or g.since_split > self.reconverge_window):
                        self._peel_group(g, outcomes, limits)
                    else:
                        kept.append(g)
                groups = kept
            if len(groups) == 1 and len(groups[0].lanes) < self.min_lanes:
                self._peel_group(groups[0], outcomes, limits)
                break
            # lowest pc first so stragglers reach the join and merge
            g = min(groups, key=lambda x: x.pc) if len(groups) > 1 else groups[0]
            headroom = min(limits[lane] - used
                           for lane, used in zip(g.lanes, g.used_i))
            if headroom <= 0:
                exhausted = [j for j, lane in enumerate(g.lanes)
                             if limits[lane] - g.used_i[j] <= 0]
                rest = [j for j in range(len(g.lanes)) if j not in
                        set(exhausted)]
                lg = self._partition(g, exhausted, g.pc)
                if retired is not None:
                    retired.append((lg, False))
                else:
                    for j in range(len(lg.lanes)):
                        outcomes[lg.lanes[j]] = self._sync_lane(
                            lg, j, StopReason.LIMIT, False)
                idx = groups.index(g)
                if rest:
                    groups[idx] = self._partition(g, rest, g.pc,
                                                  g.since_split)
                else:
                    del groups[idx]
                continue
            joins = self._joins if len(groups) > 1 else None
            sig, payload, steps, dcyc, reads, writes = \
                self._step_group(g, headroom, joins)
            if steps:
                ui, uc, ur, uw = g.used_i, g.used_c, g.used_r, g.used_w
                for j in range(len(g.lanes)):
                    ui[j] += steps
                    uc[j] += dcyc
                    ur[j] += reads
                    uw[j] += writes
                g.since_split += steps
            if sig == _SIG_HALT:
                if retired is not None:
                    retired.append((g, True))
                else:
                    for j in range(len(g.lanes)):
                        outcomes[g.lanes[j]] = self._sync_lane(
                            g, j, StopReason.HALTED, True)
                groups.remove(g)
            elif sig == _SIG_SPLIT:
                jump_pos, fall_pos, target, fall = payload
                stats["splits"] += 1
                idx = groups.index(g)
                groups[idx] = self._partition(g, jump_pos, target)
                groups.append(self._partition(g, fall_pos, fall))
            elif sig == _SIG_PEEL:
                if payload is None:
                    self._peel_group(g, outcomes, limits)
                    groups.remove(g)
                else:
                    peel_set = set(payload)
                    rest = [j for j in range(len(g.lanes))
                            if j not in peel_set]
                    self._peel_group(self._partition(g, payload, g.pc),
                                     outcomes, limits)
                    idx = groups.index(g)
                    if rest:
                        groups[idx] = self._partition(g, rest, g.pc,
                                                      g.since_split)
                    else:
                        del groups[idx]
            # _SIG_BUDGET / _SIG_JOIN: state already folded; just loop

    # -- group surgery -------------------------------------------------------

    def _partition(self, g: _Group, positions, pc: int,
                   since_split: int = 0) -> _Group:
        """A new group holding *positions* of *g* (ascending), at *pc*."""
        return _Group(
            [g.lanes[j] for j in positions], pc,
            [[col[j] for j in positions] for col in g.stack],
            [[col[j] for j in positions] for col in g.ram],
            [g.used_i[j] for j in positions],
            [g.used_c[j] for j in positions],
            [g.used_r[j] for j in positions],
            [g.used_w[j] for j in positions],
            since_split)

    def _merge(self, a: _Group, b: _Group) -> None:
        """Fold *b* into *a* (equal pc and stack depth), lanes re-sorted."""
        lanes = a.lanes + b.lanes
        order = sorted(range(len(lanes)), key=lanes.__getitem__)
        a.lanes = [lanes[i] for i in order]

        def comb(cols_a, cols_b):
            out = []
            for ca, cb in zip(cols_a, cols_b):
                full = ca + cb
                out.append([full[i] for i in order])
            return out

        a.stack = comb(a.stack, b.stack)
        a.ram = comb(a.ram, b.ram)
        full = a.used_i + b.used_i
        a.used_i = [full[i] for i in order]
        full = a.used_c + b.used_c
        a.used_c = [full[i] for i in order]
        full = a.used_r + b.used_r
        a.used_r = [full[i] for i in order]
        full = a.used_w + b.used_w
        a.used_w = [full[i] for i in order]
        a.since_split = 0

    # -- peel-off seam -------------------------------------------------------

    def _sync_lane(self, g: _Group, j: int, reason, halted: bool):
        """Write lane *j*'s column state back to its CPU, bit-exactly."""
        lane = g.lanes[j]
        cpu = self.cpus[lane]
        mem = cpu.memory
        cpu.pc = g.pc
        cpu.stack[:] = [col[j] for col in g.stack]
        cpu.cycles += g.used_c[j]
        cpu.instructions += g.used_i[j]
        cpu.halted = halted
        mem.cells[:] = [col[j] for col in g.ram]
        mem.reads += g.used_r[j]
        mem.writes += g.used_w[j]
        if reason is None:
            return None
        return LaneOutcome(RunResult(reason, g.used_i[j], g.used_c[j]),
                           None, False)

    def _peel_group(self, g: _Group, outcomes, limits) -> None:
        self.stats["peels"] += len(g.lanes)
        for j, lane in enumerate(g.lanes):
            self._sync_lane(g, j, None, False)
            outcomes[lane] = self._finish_scalar(
                lane, g.used_i[j], g.used_c[j], limits[lane])

    def _finish_scalar(self, lane: int, used_i: int, used_c: int,
                       limit: int) -> LaneOutcome:
        """Resume one lane on its own ``Cpu`` — the serial code path
        itself re-executes the instruction that forced the peel, so
        fault pcs, partial pops and counters are serial by construction.
        """
        remaining = limit - used_i
        if remaining <= 0:
            return LaneOutcome(
                RunResult(StopReason.LIMIT, used_i, used_c), None, True)
        cpu = self.cpus[lane]
        try:
            res = cpu.run(max_instructions=remaining,
                          break_on_breakpoints=self._bob)
        except TargetFault as fault:
            return LaneOutcome(None, fault, True)
        return LaneOutcome(
            RunResult(res.reason, used_i + res.instructions,
                      used_c + res.cycles), None, True)

    # -- the lockstep hot loop ----------------------------------------------

    def _step_group(self, g: _Group, budget: int, joins):
        """Advance one group up to *budget* instructions in lockstep.

        Returns ``(sig, payload, steps, dcyc, reads, writes)`` — the
        aggregate deltas apply to every lane identically (lockstep means
        all lanes executed the same instructions). ``g.pc`` is left at
        the stop pc; for ``_SIG_PEEL`` that is *before* the troublesome
        instruction, so scalar resume re-executes it.
        """
        rows = self._rows
        ncode = self._ncode
        nram = self._nram
        depth = self._depth
        stack = g.stack
        ram = g.ram
        lanes = g.lanes
        nl = len(lanes)
        append = stack.append
        pop = stack.pop
        handlers = self._handlers
        any_handler = self._any_handler
        emit_logs = self._emit_logs
        sdiv_ = sdiv
        smod_ = smod
        int_max = INT_MAX
        int_min = INT_MIN
        ram_base = RAM_BASE
        LOAD = OP_LOAD; PUSH = OP_PUSH; STORE = OP_STORE; ADD = OP_ADD
        EQ = OP_EQ; NE = OP_NE; LT = OP_LT; LE = OP_LE; GT = OP_GT; GE = OP_GE
        JMP = OP_JMP; JZ = OP_JZ; JNZ = OP_JNZ; SUB = OP_SUB; MUL = OP_MUL
        MIN = OP_MIN; MAX = OP_MAX; AND = OP_AND; OR = OP_OR; NOT = OP_NOT
        NEG = OP_NEG; DUP = OP_DUP; MOD = OP_MOD; DIV = OP_DIV
        SWAP = OP_SWAP; POPC = OP_POP; LDI = OP_LDI; STI = OP_STI
        EMIT = OP_EMIT; HALT = OP_HALT

        pc = g.pc
        steps = 0
        dcyc = 0
        reads = 0
        writes = 0
        sig = _SIG_BUDGET
        payload = None
        while steps < budget:
            if joins is not None and steps and joins[pc]:
                sig = _SIG_JOIN
                break
            if pc >= ncode:        # runaway pc: scalar raises the fault
                sig = _SIG_PEEL
                break
            op, arg, cst = rows[pc]
            if op == LOAD:
                index = arg - ram_base
                if not 0 <= index < nram or len(stack) >= depth:
                    sig = _SIG_PEEL
                    break
                append(ram[index])          # ref-push: O(1) per group
                reads += 1
                pc += 1
            elif op == PUSH:
                if len(stack) >= depth:
                    sig = _SIG_PEEL
                    break
                append([arg] * nl)
                pc += 1
            elif op == STORE:
                index = arg - ram_base
                if not 0 <= index < nram or not stack:
                    sig = _SIG_PEEL
                    break
                ram[index] = pop()          # ref-assign: O(1) per group
                writes += 1
                pc += 1
            elif op == ADD:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([r if int_min <= (r := x + y) <= int_max
                        else ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                        for x, y in zip(a, b)])
                pc += 1
            elif op == EQ:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([1 if x == y else 0 for x, y in zip(a, b)])
                pc += 1
            elif op == NE:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([1 if x != y else 0 for x, y in zip(a, b)])
                pc += 1
            elif op == LT:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([1 if x < y else 0 for x, y in zip(a, b)])
                pc += 1
            elif op == LE:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([1 if x <= y else 0 for x, y in zip(a, b)])
                pc += 1
            elif op == GT:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([1 if x > y else 0 for x, y in zip(a, b)])
                pc += 1
            elif op == GE:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([1 if x >= y else 0 for x, y in zip(a, b)])
                pc += 1
            elif op == JMP:
                if not 0 <= arg < ncode:
                    sig = _SIG_PEEL
                    break
                pc = arg
            elif op == JZ or op == JNZ:
                if not stack or not 0 <= arg < ncode:
                    sig = _SIG_PEEL
                    break
                col = stack[-1]
                z = col.count(0)            # C-speed uniformity test
                if z == nl:                 # all zero
                    pop()
                    pc = arg if op == JZ else pc + 1
                elif z == 0:                # all non-zero
                    pop()
                    pc = pc + 1 if op == JZ else arg
                else:                       # mixed: split the group
                    col = pop()
                    steps += 1
                    dcyc += cst
                    if op == JZ:
                        jump_pos = [j for j, v in enumerate(col) if v == 0]
                        fall_pos = [j for j, v in enumerate(col) if v != 0]
                    else:
                        jump_pos = [j for j, v in enumerate(col) if v != 0]
                        fall_pos = [j for j, v in enumerate(col) if v == 0]
                    sig = _SIG_SPLIT
                    payload = (jump_pos, fall_pos, arg, pc + 1)
                    break
            elif op == SUB:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([r if int_min <= (r := x - y) <= int_max
                        else ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                        for x, y in zip(a, b)])
                pc += 1
            elif op == MUL:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([r if int_min <= (r := x * y) <= int_max
                        else ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                        for x, y in zip(a, b)])
                pc += 1
            elif op == MIN:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([x if x <= y else y for x, y in zip(a, b)])
                pc += 1
            elif op == MAX:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([x if x >= y else y for x, y in zip(a, b)])
                pc += 1
            elif op == AND:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([1 if (x != 0 and y != 0) else 0
                        for x, y in zip(a, b)])
                pc += 1
            elif op == OR:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                b = pop(); a = pop()
                append([1 if (x != 0 or y != 0) else 0
                        for x, y in zip(a, b)])
                pc += 1
            elif op == NOT:
                if not stack:
                    sig = _SIG_PEEL
                    break
                append([0 if v != 0 else 1 for v in pop()])
                pc += 1
            elif op == NEG:
                if not stack:
                    sig = _SIG_PEEL
                    break
                append([int_min if v == int_min else -v for v in pop()])
                pc += 1
            elif op == DUP:
                if not stack or len(stack) >= depth:
                    sig = _SIG_PEEL
                    break
                append(stack[-1])           # shared ref is safe: columns
                pc += 1                     # are never mutated in place
            elif op == MOD or op == DIV:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                col = stack[-1]
                if 0 in col:                # zero divisors trap scalar
                    sig = _SIG_PEEL
                    payload = [j for j, v in enumerate(col) if v == 0]
                    break
                b = pop(); a = pop()
                if op == MOD:
                    append([smod_(x, y) for x, y in zip(a, b)])
                else:
                    append([sdiv_(x, y) for x, y in zip(a, b)])
                pc += 1
            elif op == SWAP:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                stack[-1], stack[-2] = stack[-2], stack[-1]
                pc += 1
            elif op == POPC:
                if not stack:
                    sig = _SIG_PEEL
                    break
                pop()
                pc += 1
            elif op == LDI:
                if not stack:
                    sig = _SIG_PEEL
                    break
                col = stack[-1]
                bad = [j for j, a in enumerate(col)
                       if not 0 <= a - ram_base < nram]
                if bad:
                    sig = _SIG_PEEL
                    payload = bad
                    break
                col = pop()
                append([ram[a - ram_base][j] for j, a in enumerate(col)])
                reads += 1
                pc += 1
            elif op == STI:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                col = stack[-1]
                bad = [j for j, a in enumerate(col)
                       if not 0 <= a - ram_base < nram]
                if bad:
                    sig = _SIG_PEEL
                    payload = bad
                    break
                col = pop()
                vcol = pop()
                touched: dict = {}      # copy-on-write per touched column
                for j, a in enumerate(col):
                    index = a - ram_base
                    dest = touched.get(index)
                    if dest is None:
                        dest = list(ram[index])
                        ram[index] = dest
                        touched[index] = dest
                    dest[j] = vcol[j]
                writes += 1
                pc += 1
            elif op == EMIT:
                if len(stack) < 2:
                    sig = _SIG_PEEL
                    break
                if any_handler:
                    hot = [j for j, ln in enumerate(lanes) if handlers[ln]]
                    if hot:             # handlers need scalar ordering
                        sig = _SIG_PEEL
                        payload = hot
                        break
                vcol = pop()
                pcol = pop()
                for j, lane in enumerate(lanes):
                    emit_logs[lane].append((arg, pcol[j], vcol[j]))
                pc += 1
            else:  # HALT — uniform: the whole group stops together
                steps += 1
                dcyc += cst
                pc += 1
                sig = _SIG_HALT
                break
            steps += 1
            dcyc += cst
        g.pc = pc
        return sig, payload, steps, dcyc, reads, writes
