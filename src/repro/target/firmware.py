"""Firmware images and their symbol/path metadata.

A :class:`FirmwareImage` is everything the model-to-code transformation
produces for one system: the code, one entry point per actor task, the
data-RAM symbol table, the initialised-data image, and the path table that
maps compact wire ids back to model-element paths. ``code`` is a plain
mutable list on purpose — the fault-injection campaign rewrites single
instructions in copies of an image to emulate implementation bugs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import AssemblyError, TargetFault
from repro.target.isa import Instr
from repro.target.memory import RAM_BASE


class Symbol:
    """One allocated data word: a name, a RAM address and a kind."""

    __slots__ = ("name", "addr", "kind")

    def __init__(self, name: str, addr: int, kind: str) -> None:
        self.name = name
        self.addr = addr
        self.kind = kind

    def __repr__(self) -> str:
        return f"<Symbol {self.name} @0x{self.addr:08x} [{self.kind}]>"


class SymbolTable:
    """Sequential data-RAM allocator with name and address lookup."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Symbol] = {}
        self._by_addr: Dict[int, Symbol] = {}
        self._order: List[Symbol] = []

    def allocate(self, name: str, kind: str = "var") -> Symbol:
        """Allocate the next free word for *name*."""
        if name in self._by_name:
            raise AssemblyError(f"symbol {name!r} allocated twice")
        symbol = Symbol(name, RAM_BASE + len(self._order), kind)
        self._by_name[name] = symbol
        self._by_addr[symbol.addr] = symbol
        self._order.append(symbol)
        return symbol

    def lookup(self, name: str) -> Symbol:
        """The symbol called *name*; unknown names raise."""
        try:
            return self._by_name[name]
        except KeyError:
            raise AssemblyError(f"unknown symbol {name!r}") from None

    def addr_of(self, name: str) -> int:
        """RAM address of *name*."""
        return self.lookup(name).addr

    def at_addr(self, addr: int) -> Optional[Symbol]:
        """The symbol at *addr*, or None (not every word is named)."""
        return self._by_addr.get(addr)

    def has(self, name: str) -> bool:
        """Whether *name* is allocated."""
        return name in self._by_name

    def symbols(self, kind: Optional[str] = None) -> List[Symbol]:
        """All symbols in allocation order, optionally filtered by kind."""
        if kind is None:
            return list(self._order)
        return [s for s in self._order if s.kind == kind]

    def __len__(self) -> int:
        return len(self._order)


class FirmwareImage:
    """One generated firmware: code + entries + symbols + data + paths."""

    def __init__(self, name: str, code: Sequence[Instr],
                 entries: Dict[str, int], symbols: SymbolTable,
                 data_init: Dict[int, int],
                 path_table: Optional[Dict[int, str]] = None) -> None:
        code = list(code)
        for task, entry in entries.items():
            if not 0 <= entry < len(code):
                raise AssemblyError(
                    f"entry of task {task!r} is {entry}, outside the "
                    f"{len(code)}-instruction image"
                )
        self.name = name
        self.code: List[Instr] = code
        self.entries = dict(entries)
        self.symbols = symbols
        self.data_init = dict(data_init)
        self.path_table = dict(path_table or {})
        self._id_by_path = {path: pid for pid, path in self.path_table.items()}

    # -- tasks -------------------------------------------------------------

    def entry_of(self, task: str) -> int:
        """Entry address of *task*; unknown tasks trap."""
        try:
            return self.entries[task]
        except KeyError:
            raise TargetFault(f"firmware {self.name!r} has no task {task!r}") \
                from None

    def instruction_count(self) -> int:
        """Code size in instructions."""
        return len(self.code)

    # -- wire ids ----------------------------------------------------------

    def path_of_id(self, path_id: int) -> str:
        """Model-element path behind a wire id."""
        try:
            return self.path_table[path_id]
        except KeyError:
            raise AssemblyError(
                f"firmware {self.name!r} has no path id {path_id}"
            ) from None

    def id_of_path(self, path: str) -> int:
        """Wire id of a model-element path."""
        try:
            return self._id_by_path[path]
        except KeyError:
            raise AssemblyError(
                f"firmware {self.name!r} has no path {path!r}"
            ) from None

    # -- source map --------------------------------------------------------

    def instructions_for_path(self, src_path: str) -> List[int]:
        """All instruction addresses generated from one model element."""
        return [pc for pc, instr in enumerate(self.code)
                if instr.src_path == src_path]

    def __repr__(self) -> str:
        return (f"<FirmwareImage {self.name!r}: {len(self.code)} instrs, "
                f"{len(self.entries)} task(s), {len(self.symbols)} symbol(s)>")
