"""The virtual CPU: a 32-bit stack machine engineered for interpreter speed.

This is the hottest loop in the whole framework — every benchmark, every
lockstep equivalence test and every RTOS job funnels through it — so it is
built around four rules:

1. **Decode once, one row per instruction.** :meth:`Cpu.load` turns the
   instruction list into a single array of packed ``(opcode, arg, cycles)``
   tuples — direct-threaded style: the run loop does **one** list index
   plus one unpack per instruction instead of three parallel-array
   indexes, and never looks at an :class:`~repro.target.isa.Instr`, a
   string, or a dict.
2. **Dispatch on ints.** The loop is a frequency-ordered ``if/elif`` chain
   comparing a local int against hoisted local constants — no dictionary,
   no attribute lookup, no method call per instruction.
3. **Hoist everything.** Memory cells, the stack's bound ``append``/``pop``,
   counters and constants live in locals for the duration of a run; state
   is written back once in a ``finally``.
4. **Zero-cost when unused.** Breakpoints, data-watchpoint write hooks and
   single-stepping are resolved **once, before the loop**: if any is
   active, execution routes to the fully-checked debug loop
   (:meth:`_run_debug`); otherwise the fast loop contains not a single
   hook or breakpoint test. Stack underflow and runaway program counters
   are caught by the ``IndexError`` of the faulting list access instead of
   per-instruction guards.

Semantics are bit-identical to the reference expression interpreter
(:mod:`repro.comdes.expr`) via the shared :mod:`repro.util.intmath` rules:
signed 32-bit wraparound, C-style truncating division, 0/1 comparisons.
"""

from __future__ import annotations

import enum
from typing import Callable, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.errors import TargetFault
from repro.target.isa import (
    CYCLES,
    FUSABLE_ALU,
    Instr,
    OP_ADD, OP_AND, OP_DIV, OP_DUP, OP_EMIT, OP_EQ, OP_F_ALU_JNZ,
    OP_F_ALU_JZ, OP_F_ALU_ST, OP_F_EMIT, OP_F_LOAD_JNZ, OP_F_LOAD_JZ,
    OP_F_LOAD_ST, OP_F_PUSH_ST, OP_GE, OP_GT, OP_HALT, OP_JMP, OP_JNZ,
    OP_JZ, OP_LDI, OP_LE, OP_LOAD, OP_LT, OP_MAX, OP_MIN, OP_MOD, OP_MUL,
    OP_NE, OP_NEG, OP_NOT, OP_OR, OP_POP, OP_PUSH, OP_STI, OP_STORE,
    OP_SUB, OP_SWAP,
)
from repro.target.memory import RAM_BASE
from repro.target.peripherals import Gpio
from repro.util.intmath import INT_MAX, INT_MIN, sdiv, smod, wrap32

#: emit handler signature: (command kind, path id, value)
EmitHandler = Callable[[int, int, int], None]

DEFAULT_RUN_LIMIT = 1_000_000


class StopReason(enum.Enum):
    """Why a ``run`` returned."""

    HALTED = "halted"          # executed HALT
    BREAKPOINT = "breakpoint"  # stopped *before* a breakpointed instruction
    LIMIT = "limit"            # instruction budget exhausted
    STEP = "step"              # single_step executed its one instruction


class RunResult(NamedTuple):
    """Outcome of one ``run`` call (counts are for this run only)."""

    reason: StopReason
    instructions: int
    cycles: int


class CpuState(NamedTuple):
    """A bit-exact snapshot of one CPU's architectural run state.

    This is the peel-off seam of the batch tier
    (:mod:`repro.target.batch`): a lane leaving lockstep execution is
    rebuilt as an ordinary :class:`Cpu` from exactly these fields (plus
    its RAM plane, which lives on :class:`~repro.target.memory.MemoryMap`
    and is snapshotted separately — memory is a shared bus peripheral,
    not CPU-internal state). Tuples, not lists: a state is a value.
    """

    pc: int
    stack: Tuple[int, ...]
    cycles: int
    instructions: int
    halted: bool
    resume_pc: int
    emit_log: Tuple[Tuple[int, int, int], ...]


class Cpu:
    """Stack-machine core over a :class:`~repro.target.memory.MemoryMap`."""

    def __init__(self, memory, gpio: Optional[Gpio] = None,
                 stack_depth: int = 128, fuse: bool = True) -> None:
        if stack_depth <= 0:
            raise TargetFault(f"stack depth must be positive, got {stack_depth}")
        self.memory = memory
        self.gpio = gpio if gpio is not None else Gpio()
        self.stack_depth = stack_depth
        #: superinstruction fusion at load time (off: reference decoding only)
        self.fuse = fuse
        self.stack: List[int] = []
        self.pc = 0
        self.cycles = 0
        self.instructions = 0
        self.halted = True
        self.breakpoints: Set[int] = set()
        self.emit_handler: Optional[EmitHandler] = None
        self.emit_log: List[Tuple[int, int, int]] = []
        self.code: List[Instr] = []
        # decoded program: one packed (op, arg, cycles) row per pc
        self._rows: List[Tuple[int, int, int]] = []
        # fused program: same length, a superinstruction row wherever a
        # fusable sequence starts, the plain row everywhere else (so any
        # pc — mid-sequence resume, undeclared entry — executes legally).
        # None when fusion is off or found nothing.
        self._frows: Optional[List[tuple]] = None
        #: number of superinstruction rows installed by the last load
        self.fused_rows = 0
        # pc of the last breakpoint stop, so resuming steps over it
        self._resume_pc = -1

    # -- program loading ---------------------------------------------------

    def load(self, code: Sequence[Instr],
             entries: Optional[Sequence[int]] = None) -> None:
        """Decode *code* once: strings -> ints, costs precomputed.

        PUSH immediates are truncated to int32 here, like a real encoder's
        immediate field — the machine's cells-are-int32 invariant must hold
        even for hand-built (or fault-corrupted) out-of-range constants.

        With :attr:`fuse` on, a second pass fuses the codegen's regular
        sequences into superinstruction rows. *entries* names task entry
        pcs; like jump targets, no fusion spans one (fusing *at* one is
        fine). Entries the caller forgot are still safe — interior pcs of
        a fused sequence keep their plain rows, so entering one simply
        executes unfused — declared boundaries just fuse better.
        """
        self.code = list(code)
        self._rows = [
            (instr.code,
             wrap32(instr.arg) if instr.code == OP_PUSH
             else (0 if instr.arg is None else instr.arg),
             CYCLES[instr.code])
            for instr in self.code
        ]
        self._frows = None
        self.fused_rows = 0
        if self.fuse:
            self._fuse_rows(entries)
        self.pc = 0
        self.stack.clear()
        self.halted = True
        self.cycles = 0
        self.instructions = 0
        self.emit_log.clear()
        self._resume_pc = -1

    def _fuse_rows(self, entries: Optional[Sequence[int]]) -> None:
        """Install superinstruction rows over the decoded program.

        Greedy longest-match over the plain rows: quads
        (``operand operand alu STORE/JZ/JNZ``) first, then the command
        preamble triple (``PUSH ch; PUSH/LOAD v; EMIT``), then pairs
        (``PUSH/LOAD STORE`` moves and ``LOAD JZ/JNZ`` tests). A fused
        row never spans a branch target or task entry — the sequence
        starting *at* such a boundary fuses normally, which is what lets
        loop bodies stay fused. Operand fields are precomputed: RAM
        indexes for LOAD-mode operands, wrapped immediates for PUSH-mode;
        the row's cost is the exact sum of constituent CYCLES.
        """
        rows = self._rows
        ncode = len(rows)
        boundaries = set(entries or ())
        for op, arg, _ in rows:
            if op == OP_JMP or op == OP_JZ or op == OP_JNZ:
                if 0 <= arg < ncode:
                    boundaries.add(arg)
        frows: List[tuple] = list(rows)
        fused = 0
        ram_base = RAM_BASE
        i = 0
        while i < ncode:
            op, arg, cst = rows[i]
            # quad: [LOAD|PUSH] a; [LOAD|PUSH] b; <alu>; STORE|JZ|JNZ
            if ((op == OP_LOAD or op == OP_PUSH) and i + 3 < ncode
                    and i + 1 not in boundaries and i + 2 not in boundaries
                    and i + 3 not in boundaries):
                op2, arg2, cst2 = rows[i + 1]
                op3, _, cst3 = rows[i + 2]
                op4, arg4, cst4 = rows[i + 3]
                if ((op2 == OP_LOAD or op2 == OP_PUSH)
                        and op3 in FUSABLE_ALU
                        and (op4 == OP_STORE
                             or ((op4 == OP_JZ or op4 == OP_JNZ)
                                 and 0 <= arg4 < ncode))):
                    amode = op == OP_LOAD
                    bmode = op2 == OP_LOAD
                    if op4 == OP_STORE:
                        fop = OP_F_ALU_ST
                        dest = arg4 - ram_base
                    elif op4 == OP_JZ:
                        fop, dest = OP_F_ALU_JZ, arg4
                    else:
                        fop, dest = OP_F_ALU_JNZ, arg4
                    frows[i] = (fop,
                                (amode, arg - ram_base if amode else arg,
                                 bmode, arg2 - ram_base if bmode else arg2,
                                 op3, dest),
                                cst + cst2 + cst3 + cst4)
                    fused += 1
                    i += 4
                    continue
            # triple: PUSH ch; [PUSH|LOAD] v; EMIT kind (command preamble)
            if (op == OP_PUSH and i + 2 < ncode
                    and i + 1 not in boundaries and i + 2 not in boundaries):
                op2, arg2, cst2 = rows[i + 1]
                op3, arg3, cst3 = rows[i + 2]
                if (op3 == OP_EMIT
                        and (op2 == OP_PUSH or op2 == OP_LOAD)):
                    bmode = op2 == OP_LOAD
                    frows[i] = (OP_F_EMIT,
                                (arg, bmode,
                                 arg2 - ram_base if bmode else arg2, arg3),
                                cst + cst2 + cst3)
                    fused += 1
                    i += 3
                    continue
            # pair: PUSH/LOAD + STORE, LOAD + JZ/JNZ
            if i + 1 < ncode and i + 1 not in boundaries:
                op2, arg2, cst2 = rows[i + 1]
                pair = None
                if op2 == OP_STORE:
                    if op == OP_PUSH:
                        pair = (OP_F_PUSH_ST, (arg, arg2 - ram_base))
                    elif op == OP_LOAD:
                        pair = (OP_F_LOAD_ST,
                                (arg - ram_base, arg2 - ram_base))
                elif op == OP_LOAD and 0 <= arg2 < ncode:
                    if op2 == OP_JZ:
                        pair = (OP_F_LOAD_JZ, (arg - ram_base, arg2))
                    elif op2 == OP_JNZ:
                        pair = (OP_F_LOAD_JNZ, (arg - ram_base, arg2))
                if pair is not None:
                    frows[i] = (pair[0], pair[1], cst + cst2)
                    fused += 1
                    i += 2
                    continue
            i += 1
        if fused:
            self._frows = frows
            self.fused_rows = fused

    def reset_task(self, entry: int) -> None:
        """Point the CPU at a task entry with an empty stack."""
        if not 0 <= entry < len(self._rows):
            raise TargetFault(f"task entry {entry} outside code", entry)
        self.pc = entry
        self.stack.clear()
        self.halted = False
        self._resume_pc = -1

    # -- state transfer (the batch tier's peel-off seam) ---------------------

    def export_state(self) -> CpuState:
        """Snapshot the architectural run state as a :class:`CpuState`.

        Round-trips exactly through :meth:`import_state`: a CPU rebuilt
        from its own export is indistinguishable at every stop. RAM is
        not included — it lives on :attr:`memory` and is transferred by
        whoever owns the bus (the batch tier moves it column-wise).
        """
        return CpuState(self.pc, tuple(self.stack), self.cycles,
                        self.instructions, self.halted, self._resume_pc,
                        tuple(self.emit_log))

    def import_state(self, state: CpuState) -> None:
        """Adopt *state* wholesale; list identities are preserved so any
        outstanding references to ``stack``/``emit_log`` stay live."""
        self.pc = state.pc
        self.stack[:] = state.stack
        self.cycles = state.cycles
        self.instructions = state.instructions
        self.halted = state.halted
        self._resume_pc = state.resume_pc
        self.emit_log[:] = state.emit_log

    # -- execution ---------------------------------------------------------

    def run(self, max_instructions: int = DEFAULT_RUN_LIMIT,
            single_step: bool = False,
            break_on_breakpoints: bool = False,
            profile: Optional[dict] = None,
            pc_profile: Optional[dict] = None) -> RunResult:
        """Execute until HALT, a debug stop, or the instruction budget.

        The debug features are priced here, once: only when a write hook,
        an armed breakpoint set, single-stepping, or an opcode profile is
        actually present does execution take the checked path.

        ``profile`` is the measurement hook driving fusion and batch
        decisions: pass a dict (or ``collections.Counter``) and every
        retired instruction increments ``profile[opcode]`` — plain
        decoded opcodes (the reference stream, what a fusion pass needs
        to see), never superinstruction ids. Like breakpoints, the hook
        is priced once here: the fast loops carry no counting code.

        ``pc_profile`` counts retired instructions *by address* instead
        of by opcode — ``pc_profile[pc] += 1`` — which is what
        flame-style calltrace aggregation needs
        (:func:`repro.obs.calltrace.pc_rollup` folds it into per-task /
        per-model-element frames via the firmware source map). Same
        pricing rule: pass None (the default) and no loop carries it.
        """
        if self.halted:
            return RunResult(StopReason.HALTED, 0, 0)
        if (single_step or profile is not None or pc_profile is not None
                or self.memory.write_hook is not None
                or (break_on_breakpoints and self.breakpoints)):
            return self._run_debug(max_instructions, single_step,
                                   break_on_breakpoints, profile,
                                   pc_profile)
        # uncontrolled execution invalidates any pending resume-over marker
        self._resume_pc = -1
        # fuse is re-consulted here so toggling it after load() (Board
        # exposes no fuse parameter) honestly selects the reference loop
        if self.fuse and self._frows is not None:
            return self._run_fused(max_instructions)
        return self._run_fast(max_instructions)

    def _run_fast(self, limit: int) -> RunResult:
        """The hot loop: no hooks, no breakpoints, no string/dict dispatch."""
        memory = self.memory
        rows = self._rows
        ncode = len(rows)
        cells = memory.cells
        nram = len(cells)
        stack = self.stack
        append = stack.append
        pop = stack.pop
        depth = self.stack_depth
        emit_log = self.emit_log
        handler = self.emit_handler
        base_cycles = self.cycles
        sdiv_ = sdiv
        smod_ = smod
        int_max = INT_MAX
        int_min = INT_MIN
        ram_base = RAM_BASE
        # dispatch constants as locals: LOAD_FAST beats LOAD_GLOBAL
        LOAD = OP_LOAD; PUSH = OP_PUSH; STORE = OP_STORE; ADD = OP_ADD
        EQ = OP_EQ; NE = OP_NE; LT = OP_LT; LE = OP_LE; GT = OP_GT; GE = OP_GE
        JMP = OP_JMP; JZ = OP_JZ; JNZ = OP_JNZ; SUB = OP_SUB; MUL = OP_MUL
        MIN = OP_MIN; MAX = OP_MAX; AND = OP_AND; OR = OP_OR; NOT = OP_NOT
        NEG = OP_NEG; DUP = OP_DUP; MOD = OP_MOD; DIV = OP_DIV
        SWAP = OP_SWAP; POPC = OP_POP; LDI = OP_LDI; STI = OP_STI
        EMIT = OP_EMIT; HALT = OP_HALT

        pc = self.pc
        run_cycles = 0
        n = 0
        reads = 0
        writes = 0
        in_handler = False
        reason = StopReason.LIMIT
        try:
            while n < limit:
                op, arg, cst = rows[pc]
                run_cycles += cst
                n += 1
                if op == LOAD:
                    index = arg - ram_base
                    if not 0 <= index < nram:
                        raise TargetFault(
                            f"LOAD outside RAM: 0x{arg:08x}", pc)
                    if len(stack) >= depth:
                        raise TargetFault("stack overflow", pc)
                    append(cells[index])
                    reads += 1
                    pc += 1
                elif op == PUSH:
                    if len(stack) >= depth:
                        raise TargetFault("stack overflow", pc)
                    append(arg)
                    pc += 1
                elif op == STORE:
                    index = arg - ram_base
                    if not 0 <= index < nram:
                        raise TargetFault(
                            f"STORE outside RAM: 0x{arg:08x}", pc)
                    cells[index] = pop()
                    writes += 1
                    pc += 1
                elif op == ADD:
                    b = pop(); a = pop()
                    r = a + b
                    if r > int_max or r < int_min:
                        r = ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                    append(r)
                    pc += 1
                elif op == EQ:
                    b = pop(); a = pop()
                    append(1 if a == b else 0)
                    pc += 1
                elif op == NE:
                    b = pop(); a = pop()
                    append(1 if a != b else 0)
                    pc += 1
                elif op == LT:
                    b = pop(); a = pop()
                    append(1 if a < b else 0)
                    pc += 1
                elif op == LE:
                    b = pop(); a = pop()
                    append(1 if a <= b else 0)
                    pc += 1
                elif op == GT:
                    b = pop(); a = pop()
                    append(1 if a > b else 0)
                    pc += 1
                elif op == GE:
                    b = pop(); a = pop()
                    append(1 if a >= b else 0)
                    pc += 1
                elif op == JMP:
                    if not 0 <= arg < ncode:
                        raise TargetFault(f"JMP target {arg} outside code",
                                          pc)
                    pc = arg
                elif op == JZ:
                    if pop() == 0:
                        if not 0 <= arg < ncode:
                            raise TargetFault(
                                f"JZ target {arg} outside code", pc)
                        pc = arg
                    else:
                        pc += 1
                elif op == JNZ:
                    if pop() != 0:
                        if not 0 <= arg < ncode:
                            raise TargetFault(
                                f"JNZ target {arg} outside code", pc)
                        pc = arg
                    else:
                        pc += 1
                elif op == SUB:
                    b = pop(); a = pop()
                    r = a - b
                    if r > int_max or r < int_min:
                        r = ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                    append(r)
                    pc += 1
                elif op == MUL:
                    b = pop(); a = pop()
                    r = a * b
                    if r > int_max or r < int_min:
                        r = ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                    append(r)
                    pc += 1
                elif op == MIN:
                    b = pop(); a = pop()
                    append(a if a <= b else b)
                    pc += 1
                elif op == MAX:
                    b = pop(); a = pop()
                    append(a if a >= b else b)
                    pc += 1
                elif op == AND:
                    b = pop(); a = pop()
                    append(1 if (a != 0 and b != 0) else 0)
                    pc += 1
                elif op == OR:
                    b = pop(); a = pop()
                    append(1 if (a != 0 or b != 0) else 0)
                    pc += 1
                elif op == NOT:
                    append(0 if pop() != 0 else 1)
                    pc += 1
                elif op == NEG:
                    r = -pop()
                    if r > int_max:
                        r = int_min  # -INT_MIN wraps
                    append(r)
                    pc += 1
                elif op == DUP:
                    if len(stack) >= depth:
                        raise TargetFault("stack overflow", pc)
                    append(stack[-1])
                    pc += 1
                elif op == MOD:
                    b = pop(); a = pop()
                    if b == 0:
                        raise TargetFault("modulo by zero", pc)
                    append(smod_(a, b))
                    pc += 1
                elif op == DIV:
                    b = pop(); a = pop()
                    if b == 0:
                        raise TargetFault("division by zero", pc)
                    append(sdiv_(a, b))
                    pc += 1
                elif op == SWAP:
                    b = pop(); a = pop()
                    append(b)
                    append(a)
                    pc += 1
                elif op == POPC:
                    pop()
                    pc += 1
                elif op == LDI:
                    index = pop() - ram_base
                    if not 0 <= index < nram:
                        raise TargetFault("LDI outside RAM", pc)
                    append(cells[index])
                    reads += 1
                    pc += 1
                elif op == STI:
                    index = pop() - ram_base
                    value = pop()
                    if not 0 <= index < nram:
                        raise TargetFault("STI outside RAM", pc)
                    cells[index] = value
                    writes += 1
                    pc += 1
                elif op == EMIT:
                    value = pop()
                    path_id = pop()
                    kind = arg
                    emit_log.append((kind, path_id, value))
                    if handler is not None:
                        # the handler reads self.cycles: sync before calling
                        self.cycles = base_cycles + run_cycles
                        in_handler = True
                        handler(kind, path_id, value)
                        in_handler = False
                    pc += 1
                else:  # HALT (the only remaining opcode)
                    self.halted = True
                    pc += 1
                    reason = StopReason.HALTED
                    break
        except IndexError:
            # The two structural faults surface as IndexError of the list
            # access itself — no per-instruction guard needed. An emit
            # handler's own IndexError propagates untouched.
            if in_handler:
                raise
            if not 0 <= pc < ncode:
                raise TargetFault("pc ran outside the code", pc) from None
            if not stack:
                raise TargetFault("stack underflow", pc) from None
            raise
        finally:
            self.pc = pc
            self.cycles = base_cycles + run_cycles
            self.instructions += n
            memory.reads += reads
            memory.writes += writes
        return RunResult(reason, n, run_cycles)

    def _run_fused(self, limit: int) -> RunResult:
        """The superinstruction hot loop: fused rows dispatch first.

        Timing identity with :meth:`_run_fast` is the contract: every
        fused row charges the summed constituent cycles, counts the
        constituent instructions and performs the constituent memory
        accesses. Whenever fused execution could be *observably*
        different — the instruction budget lands mid-sequence, an
        operand or store address is outside RAM, the transient stack
        headroom the constituent pushes need is missing, or a fused
        divide sees a zero divisor — the row **decomposes**: the loop
        swaps to the plain decoded rows and re-executes the same pc
        unfused, so budget stops land on a legal unfused pc and faults
        surface with the exact pc/counters of the constituent sequence.
        (Interior pcs of a fused region always hold plain rows, so
        resuming from such a stop is automatically legal.)
        """
        memory = self.memory
        prows = self._rows
        rows: List[tuple] = self._frows
        ncode = len(prows)
        cells = memory.cells
        nram = len(cells)
        stack = self.stack
        append = stack.append
        pop = stack.pop
        depth = self.stack_depth
        emit_log = self.emit_log
        handler = self.emit_handler
        base_cycles = self.cycles
        sdiv_ = sdiv
        smod_ = smod
        int_max = INT_MAX
        int_min = INT_MIN
        ram_base = RAM_BASE
        # fused ids first: after fusion they dominate the decoded stream
        F_ALU_ST = OP_F_ALU_ST; F_ALU_JZ = OP_F_ALU_JZ
        F_ALU_JNZ = OP_F_ALU_JNZ; F_PUSH_ST = OP_F_PUSH_ST
        F_LOAD_ST = OP_F_LOAD_ST; F_LOAD_JZ = OP_F_LOAD_JZ
        F_LOAD_JNZ = OP_F_LOAD_JNZ; F_EMIT = OP_F_EMIT
        LOAD = OP_LOAD; PUSH = OP_PUSH; STORE = OP_STORE; ADD = OP_ADD
        EQ = OP_EQ; NE = OP_NE; LT = OP_LT; LE = OP_LE; GT = OP_GT; GE = OP_GE
        JMP = OP_JMP; JZ = OP_JZ; JNZ = OP_JNZ; SUB = OP_SUB; MUL = OP_MUL
        MIN = OP_MIN; MAX = OP_MAX; AND = OP_AND; OR = OP_OR; NOT = OP_NOT
        NEG = OP_NEG; DUP = OP_DUP; MOD = OP_MOD; DIV = OP_DIV
        SWAP = OP_SWAP; POPC = OP_POP; LDI = OP_LDI; STI = OP_STI
        EMIT = OP_EMIT; HALT = OP_HALT

        pc = self.pc
        run_cycles = 0
        n = 0
        reads = 0
        writes = 0
        in_handler = False
        reason = StopReason.LIMIT
        try:
            while n < limit:
                op, arg, cst = rows[pc]
                run_cycles += cst
                n += 1
                if op == F_ALU_ST:
                    amode, aval, bmode, bval, alu, yi = arg
                    if (n + 3 > limit or not 0 <= yi < nram
                            or len(stack) + 2 > depth
                            or (amode and not 0 <= aval < nram)
                            or (bmode and not 0 <= bval < nram)):
                        rows = prows
                        run_cycles -= cst
                        n -= 1
                        continue
                    a = cells[aval] if amode else aval
                    b = cells[bval] if bmode else bval
                    if alu == ADD:
                        r = a + b
                        if r > int_max or r < int_min:
                            r = ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                    elif alu == EQ:
                        r = 1 if a == b else 0
                    elif alu == LT:
                        r = 1 if a < b else 0
                    elif alu == SUB:
                        r = a - b
                        if r > int_max or r < int_min:
                            r = ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                    elif alu == GE:
                        r = 1 if a >= b else 0
                    elif alu == NE:
                        r = 1 if a != b else 0
                    elif alu == LE:
                        r = 1 if a <= b else 0
                    elif alu == GT:
                        r = 1 if a > b else 0
                    elif alu == MUL:
                        r = a * b
                        if r > int_max or r < int_min:
                            r = ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                    elif alu == MIN:
                        r = a if a <= b else b
                    elif alu == MAX:
                        r = a if a >= b else b
                    elif alu == AND:
                        r = 1 if (a != 0 and b != 0) else 0
                    elif alu == OR:
                        r = 1 if (a != 0 or b != 0) else 0
                    elif alu == DIV:
                        if b == 0:  # trap must surface unfused
                            rows = prows
                            run_cycles -= cst
                            n -= 1
                            continue
                        r = sdiv_(a, b)
                    else:  # MOD
                        if b == 0:
                            rows = prows
                            run_cycles -= cst
                            n -= 1
                            continue
                        r = smod_(a, b)
                    cells[yi] = r
                    reads += amode + bmode
                    writes += 1
                    n += 3
                    pc += 4
                elif op == F_ALU_JZ or op == F_ALU_JNZ:
                    amode, aval, bmode, bval, alu, target = arg
                    if (n + 3 > limit or len(stack) + 2 > depth
                            or (amode and not 0 <= aval < nram)
                            or (bmode and not 0 <= bval < nram)):
                        rows = prows
                        run_cycles -= cst
                        n -= 1
                        continue
                    a = cells[aval] if amode else aval
                    b = cells[bval] if bmode else bval
                    if alu == EQ:
                        r = a == b
                    elif alu == LT:
                        r = a < b
                    elif alu == GE:
                        r = a >= b
                    elif alu == NE:
                        r = a != b
                    elif alu == LE:
                        r = a <= b
                    elif alu == GT:
                        r = a > b
                    elif alu == AND:
                        r = a != 0 and b != 0
                    elif alu == OR:
                        r = a != 0 or b != 0
                    elif alu == MIN:
                        r = (a if a <= b else b) != 0
                    elif alu == MAX:
                        r = (a if a >= b else b) != 0
                    elif alu == ADD:
                        r = (a + b) % 0x100000000 != 0
                    elif alu == SUB:
                        r = a != b
                    elif alu == MUL:
                        r = (a * b) % 0x100000000 != 0
                    elif alu == DIV:
                        if b == 0:
                            rows = prows
                            run_cycles -= cst
                            n -= 1
                            continue
                        r = sdiv_(a, b) != 0
                    else:  # MOD
                        if b == 0:
                            rows = prows
                            run_cycles -= cst
                            n -= 1
                            continue
                        r = smod_(a, b) != 0
                    reads += amode + bmode
                    n += 3
                    if op == F_ALU_JNZ:
                        pc = target if r else pc + 4
                    else:
                        pc = pc + 4 if r else target
                elif op == F_PUSH_ST:
                    imm, yi = arg
                    if (n >= limit or not 0 <= yi < nram
                            or len(stack) >= depth):
                        rows = prows
                        run_cycles -= cst
                        n -= 1
                        continue
                    cells[yi] = imm
                    writes += 1
                    n += 1
                    pc += 2
                elif op == F_LOAD_ST:
                    ai, yi = arg
                    if (n >= limit or not 0 <= ai < nram
                            or not 0 <= yi < nram or len(stack) >= depth):
                        rows = prows
                        run_cycles -= cst
                        n -= 1
                        continue
                    cells[yi] = cells[ai]
                    reads += 1
                    writes += 1
                    n += 1
                    pc += 2
                elif op == F_LOAD_JZ or op == F_LOAD_JNZ:
                    ai, target = arg
                    if (n >= limit or not 0 <= ai < nram
                            or len(stack) >= depth):
                        rows = prows
                        run_cycles -= cst
                        n -= 1
                        continue
                    reads += 1
                    n += 1
                    if (cells[ai] != 0) == (op == F_LOAD_JNZ):
                        pc = target
                    else:
                        pc += 2
                elif op == F_EMIT:
                    path_id, bmode, bval, kind = arg
                    if (n + 2 > limit or len(stack) + 2 > depth
                            or (bmode and not 0 <= bval < nram)):
                        rows = prows
                        run_cycles -= cst
                        n -= 1
                        continue
                    value = cells[bval] if bmode else bval
                    reads += bmode
                    emit_log.append((kind, path_id, value))
                    if handler is not None:
                        # handler observes the full preamble's cycle charge,
                        # exactly like the unfused EMIT step
                        self.cycles = base_cycles + run_cycles
                        in_handler = True
                        handler(kind, path_id, value)
                        in_handler = False
                    n += 2
                    pc += 3
                elif op == LOAD:
                    index = arg - ram_base
                    if not 0 <= index < nram:
                        raise TargetFault(
                            f"LOAD outside RAM: 0x{arg:08x}", pc)
                    if len(stack) >= depth:
                        raise TargetFault("stack overflow", pc)
                    append(cells[index])
                    reads += 1
                    pc += 1
                elif op == PUSH:
                    if len(stack) >= depth:
                        raise TargetFault("stack overflow", pc)
                    append(arg)
                    pc += 1
                elif op == STORE:
                    index = arg - ram_base
                    if not 0 <= index < nram:
                        raise TargetFault(
                            f"STORE outside RAM: 0x{arg:08x}", pc)
                    cells[index] = pop()
                    writes += 1
                    pc += 1
                elif op == ADD:
                    b = pop(); a = pop()
                    r = a + b
                    if r > int_max or r < int_min:
                        r = ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                    append(r)
                    pc += 1
                elif op == EQ:
                    b = pop(); a = pop()
                    append(1 if a == b else 0)
                    pc += 1
                elif op == NE:
                    b = pop(); a = pop()
                    append(1 if a != b else 0)
                    pc += 1
                elif op == LT:
                    b = pop(); a = pop()
                    append(1 if a < b else 0)
                    pc += 1
                elif op == LE:
                    b = pop(); a = pop()
                    append(1 if a <= b else 0)
                    pc += 1
                elif op == GT:
                    b = pop(); a = pop()
                    append(1 if a > b else 0)
                    pc += 1
                elif op == GE:
                    b = pop(); a = pop()
                    append(1 if a >= b else 0)
                    pc += 1
                elif op == JMP:
                    if not 0 <= arg < ncode:
                        raise TargetFault(f"JMP target {arg} outside code",
                                          pc)
                    pc = arg
                elif op == JZ:
                    if pop() == 0:
                        if not 0 <= arg < ncode:
                            raise TargetFault(
                                f"JZ target {arg} outside code", pc)
                        pc = arg
                    else:
                        pc += 1
                elif op == JNZ:
                    if pop() != 0:
                        if not 0 <= arg < ncode:
                            raise TargetFault(
                                f"JNZ target {arg} outside code", pc)
                        pc = arg
                    else:
                        pc += 1
                elif op == SUB:
                    b = pop(); a = pop()
                    r = a - b
                    if r > int_max or r < int_min:
                        r = ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                    append(r)
                    pc += 1
                elif op == MUL:
                    b = pop(); a = pop()
                    r = a * b
                    if r > int_max or r < int_min:
                        r = ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000
                    append(r)
                    pc += 1
                elif op == MIN:
                    b = pop(); a = pop()
                    append(a if a <= b else b)
                    pc += 1
                elif op == MAX:
                    b = pop(); a = pop()
                    append(a if a >= b else b)
                    pc += 1
                elif op == AND:
                    b = pop(); a = pop()
                    append(1 if (a != 0 and b != 0) else 0)
                    pc += 1
                elif op == OR:
                    b = pop(); a = pop()
                    append(1 if (a != 0 or b != 0) else 0)
                    pc += 1
                elif op == NOT:
                    append(0 if pop() != 0 else 1)
                    pc += 1
                elif op == NEG:
                    r = -pop()
                    if r > int_max:
                        r = int_min  # -INT_MIN wraps
                    append(r)
                    pc += 1
                elif op == DUP:
                    if len(stack) >= depth:
                        raise TargetFault("stack overflow", pc)
                    append(stack[-1])
                    pc += 1
                elif op == MOD:
                    b = pop(); a = pop()
                    if b == 0:
                        raise TargetFault("modulo by zero", pc)
                    append(smod_(a, b))
                    pc += 1
                elif op == DIV:
                    b = pop(); a = pop()
                    if b == 0:
                        raise TargetFault("division by zero", pc)
                    append(sdiv_(a, b))
                    pc += 1
                elif op == SWAP:
                    b = pop(); a = pop()
                    append(b)
                    append(a)
                    pc += 1
                elif op == POPC:
                    pop()
                    pc += 1
                elif op == LDI:
                    index = pop() - ram_base
                    if not 0 <= index < nram:
                        raise TargetFault("LDI outside RAM", pc)
                    append(cells[index])
                    reads += 1
                    pc += 1
                elif op == STI:
                    index = pop() - ram_base
                    value = pop()
                    if not 0 <= index < nram:
                        raise TargetFault("STI outside RAM", pc)
                    cells[index] = value
                    writes += 1
                    pc += 1
                elif op == EMIT:
                    value = pop()
                    path_id = pop()
                    kind = arg
                    emit_log.append((kind, path_id, value))
                    if handler is not None:
                        # the handler reads self.cycles: sync before calling
                        self.cycles = base_cycles + run_cycles
                        in_handler = True
                        handler(kind, path_id, value)
                        in_handler = False
                    pc += 1
                else:  # HALT (the only remaining opcode)
                    self.halted = True
                    pc += 1
                    reason = StopReason.HALTED
                    break
        except IndexError:
            if in_handler:
                raise
            if not 0 <= pc < ncode:
                raise TargetFault("pc ran outside the code", pc) from None
            if not stack:
                raise TargetFault("stack underflow", pc) from None
            raise
        finally:
            self.pc = pc
            self.cycles = base_cycles + run_cycles
            self.instructions += n
            memory.reads += reads
            memory.writes += writes
        return RunResult(reason, n, run_cycles)

    # -- checked execution (debugger path) ----------------------------------

    def _run_debug(self, limit: int, single_step: bool,
                   break_on_breakpoints: bool,
                   profile: Optional[dict] = None,
                   pc_profile: Optional[dict] = None) -> RunResult:
        """Full-fidelity loop: breakpoints, write hooks, single-stepping,
        opcode-frequency profiling.

        Memory goes through :meth:`MemoryMap.read_word` / ``write_word`` so
        data watchpoints and access accounting behave exactly like the
        reference semantics; ``self.pc``/``self.cycles`` are kept current so
        hooks observe a consistent machine state.
        """
        memory = self.memory
        rows = self._rows
        ncode = len(rows)
        stack = self.stack
        depth = self.stack_depth
        bps = self.breakpoints if break_on_breakpoints else None
        skip_pc = self._resume_pc
        self._resume_pc = -1
        start_cycles = self.cycles
        n = 0

        while n < limit:
            pc = self.pc
            if bps and pc in bps and pc != skip_pc:
                self._resume_pc = pc
                return RunResult(StopReason.BREAKPOINT, n,
                                 self.cycles - start_cycles)
            skip_pc = -1
            if not 0 <= pc < ncode:
                raise TargetFault("pc ran outside the code", pc)
            op, arg, cst = rows[pc]
            self.cycles += cst
            self.instructions += 1
            n += 1
            if profile is not None:
                profile[op] = profile.get(op, 0) + 1
            if pc_profile is not None:
                pc_profile[pc] = pc_profile.get(pc, 0) + 1
            try:
                if op == OP_HALT:
                    self.halted = True
                    self.pc = pc + 1
                    return RunResult(StopReason.HALTED, n,
                                     self.cycles - start_cycles)
                self.pc = self._step(op, arg, pc, stack, depth, memory, ncode)
            except TargetFault as fault:
                if fault.pc < 0:  # pin memory faults to this instruction
                    raise TargetFault(fault.reason, pc) from None
                raise
            if single_step:
                return RunResult(StopReason.STEP, n,
                                 self.cycles - start_cycles)
        return RunResult(StopReason.LIMIT, n, self.cycles - start_cycles)

    def _step(self, op: int, arg: int, pc: int, stack: List[int],
              depth: int, memory, ncode: int) -> int:
        """Execute one non-HALT instruction, returning the next pc."""

        def need(count: int) -> None:
            if len(stack) < count:
                raise TargetFault("stack underflow", pc)

        def push(value: int) -> None:
            if len(stack) >= depth:
                raise TargetFault("stack overflow", pc)
            stack.append(value)

        def jump(target: int) -> int:
            if not 0 <= target < ncode:
                raise TargetFault(f"jump target {target} outside code", pc)
            return target

        if op == OP_LOAD:
            push(memory.read_word(arg))
        elif op == OP_PUSH:
            push(arg)
        elif op == OP_STORE:
            need(1)
            memory.write_word(arg, stack.pop())
        elif op == OP_JMP:
            return jump(arg)
        elif op == OP_JZ:
            need(1)
            return jump(arg) if stack.pop() == 0 else pc + 1
        elif op == OP_JNZ:
            need(1)
            return jump(arg) if stack.pop() != 0 else pc + 1
        elif op == OP_NOT:
            need(1)
            stack.append(0 if stack.pop() != 0 else 1)
        elif op == OP_NEG:
            need(1)
            r = -stack.pop()
            stack.append(INT_MIN if r > INT_MAX else r)
        elif op == OP_DUP:
            need(1)
            push(stack[-1])
        elif op == OP_SWAP:
            need(2)
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op == OP_POP:
            need(1)
            stack.pop()
        elif op == OP_LDI:
            need(1)
            push(memory.read_word(stack.pop()))
        elif op == OP_STI:
            need(2)
            addr = stack.pop()
            memory.write_word(addr, stack.pop())
        elif op == OP_EMIT:
            need(2)
            value = stack.pop()
            path_id = stack.pop()
            self.emit_log.append((arg, path_id, value))
            if self.emit_handler is not None:
                self.emit_handler(arg, path_id, value)
        else:
            need(2)
            b = stack.pop()
            a = stack.pop()
            if op == OP_ADD:
                r = a + b
                stack.append(r if INT_MIN <= r <= INT_MAX
                             else ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000)
            elif op == OP_SUB:
                r = a - b
                stack.append(r if INT_MIN <= r <= INT_MAX
                             else ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000)
            elif op == OP_MUL:
                r = a * b
                stack.append(r if INT_MIN <= r <= INT_MAX
                             else ((r + 0x80000000) & 0xFFFFFFFF) - 0x80000000)
            elif op == OP_EQ:
                stack.append(1 if a == b else 0)
            elif op == OP_NE:
                stack.append(1 if a != b else 0)
            elif op == OP_LT:
                stack.append(1 if a < b else 0)
            elif op == OP_LE:
                stack.append(1 if a <= b else 0)
            elif op == OP_GT:
                stack.append(1 if a > b else 0)
            elif op == OP_GE:
                stack.append(1 if a >= b else 0)
            elif op == OP_MIN:
                stack.append(a if a <= b else b)
            elif op == OP_MAX:
                stack.append(a if a >= b else b)
            elif op == OP_AND:
                stack.append(1 if (a != 0 and b != 0) else 0)
            elif op == OP_OR:
                stack.append(1 if (a != 0 or b != 0) else 0)
            elif op == OP_DIV:
                if b == 0:
                    raise TargetFault("division by zero", pc)
                stack.append(sdiv(a, b))
            elif op == OP_MOD:
                if b == 0:
                    raise TargetFault("modulo by zero", pc)
                stack.append(smod(a, b))
            else:  # pragma: no cover - decode guarantees opcode validity
                raise TargetFault(f"undecodable opcode {op}", pc)
        return pc + 1
