"""The target's data memory: one flat word-addressed RAM bank.

Two access planes with different accounting, mirroring real silicon:

* **Target plane** — :meth:`MemoryMap.read_word` / :meth:`write_word`: what
  the CPU (and anything pretending to be the CPU) uses. Counted in
  :attr:`reads` / :attr:`writes`, and writes fire the optional write hook
  (the debug unit's data-watchpoint comparators).
* **Backdoor plane** — :meth:`peek` / :meth:`poke`: DMA-style access used
  by the JTAG debug port and the test harness. Never counted, never hooks —
  which is exactly why passive monitoring costs the target nothing.

The CPU's hot loop bypasses the method layer entirely and indexes
:attr:`cells` directly (with the same bounds/accounting semantics inlined);
the methods here are the reference implementation of those semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import TargetFault

#: Base address of RAM in the target's address space (Cortex-M style SRAM).
RAM_BASE = 0x2000_0000

WriteHook = Callable[[int, int], None]


class MemoryMap:
    """Word-addressed RAM of ``words`` cells starting at :data:`RAM_BASE`."""

    __slots__ = ("cells", "reads", "writes", "write_hook", "_init_image")

    def __init__(self, words: int = 4096) -> None:
        if words <= 0:
            raise TargetFault(f"RAM must have at least one word, got {words}")
        self.cells = [0] * words
        self.reads = 0
        self.writes = 0
        self.write_hook: Optional[WriteHook] = None
        self._init_image: Dict[int, int] = {}

    # -- geometry -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def contains(self, addr: int) -> bool:
        """Whether *addr* falls inside the RAM window."""
        return 0 <= addr - RAM_BASE < len(self.cells)

    def _index(self, addr: int) -> int:
        index = addr - RAM_BASE
        if 0 <= index < len(self.cells):
            return index
        raise TargetFault(f"memory access outside RAM: 0x{addr:08x}")

    # -- target plane (counted, hooked) ------------------------------------

    def read_word(self, addr: int) -> int:
        """A target-side read: counted."""
        value = self.cells[self._index(addr)]
        self.reads += 1
        return value

    def write_word(self, addr: int, value: int) -> None:
        """A target-side write: counted, fires the write hook."""
        self.cells[self._index(addr)] = value
        self.writes += 1
        hook = self.write_hook
        if hook is not None:
            hook(addr, value)

    def set_write_hook(self, hook: Optional[WriteHook]) -> None:
        """Install (or clear) the data-watchpoint hook for target writes."""
        self.write_hook = hook

    # -- backdoor plane (debug port, harness) -------------------------------

    def peek(self, addr: int) -> int:
        """Debug read: not counted, invisible to the target."""
        return self.cells[self._index(addr)]

    def poke(self, addr: int, value: int) -> None:
        """Debug write: not counted, does not fire the write hook."""
        self.cells[self._index(addr)] = value

    # -- images and reset ---------------------------------------------------

    def load_init_image(self, image: Dict[int, int]) -> None:
        """Record the firmware's initialised-data image; :meth:`reset`
        applies it."""
        for addr in image:
            self._index(addr)  # validate before committing anything
        self._init_image = dict(image)

    def reset(self) -> None:
        """Zero all of RAM, reapply the init image, clear access counters."""
        self.cells[:] = [0] * len(self.cells)  # in place: keep identity
        for addr, value in self._init_image.items():
            self.cells[addr - RAM_BASE] = value
        self.reads = 0
        self.writes = 0
