"""On-chip peripherals: GPIO port and the debug UART.

The UART models only what the active command interface needs to be honest
about: a bounded TX FIFO with **atomic** frame admission (a frame either
fits entirely or is dropped entirely — half-queued debug frames would
corrupt the wire protocol) and overrun accounting, which benchmark E7 and
the FIFO-overrun tests read back.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import TargetFault


class Gpio:
    """A 32-pin general-purpose I/O port (level-latched, no interrupts)."""

    __slots__ = ("levels", "writes")

    WIDTH = 32

    def __init__(self) -> None:
        self.levels = 0
        self.writes = 0

    def _check(self, pin: int) -> None:
        if not 0 <= pin < self.WIDTH:
            raise TargetFault(f"GPIO pin {pin} out of range 0..{self.WIDTH - 1}")

    def write_pin(self, pin: int, level: int) -> None:
        """Drive one pin high (truthy) or low."""
        self._check(pin)
        if level:
            self.levels |= 1 << pin
        else:
            self.levels &= ~(1 << pin)
        self.writes += 1

    def read_pin(self, pin: int) -> int:
        """Sample one pin (0 or 1)."""
        self._check(pin)
        return (self.levels >> pin) & 1


class Uart:
    """The debug UART's transmit side: a bounded FIFO with overrun counting."""

    __slots__ = ("fifo_depth", "overruns", "bytes_sent", "_fifo")

    def __init__(self, fifo_depth: int = 64) -> None:
        if fifo_depth <= 0:
            raise TargetFault(f"UART FIFO depth must be positive, got {fifo_depth}")
        self.fifo_depth = fifo_depth
        self.overruns = 0
        self.bytes_sent = 0
        self._fifo: Deque[int] = deque()

    @property
    def pending(self) -> int:
        """Bytes queued and not yet drained."""
        return len(self._fifo)

    def push_bytes(self, data: bytes) -> bool:
        """Queue *data* atomically; on overflow drop it all and count one
        overrun (a partial debug frame is worse than a missing one)."""
        if len(self._fifo) + len(data) > self.fifo_depth:
            self.overruns += 1
            return False
        self._fifo.extend(data)
        return True

    def pop_byte(self) -> int:
        """Drain one byte (the line driver's side); underrun traps."""
        if not self._fifo:
            raise TargetFault("UART FIFO underrun: pop from empty FIFO")
        return self._fifo.popleft()
