"""The target board: CPU + RAM + peripherals + the JTAG debug backdoor.

A :class:`Board` is one computation node of the distributed system. The
:class:`DebugPort` is the on-chip debug unit's bus master: it reads and
writes RAM through the backdoor plane (uncounted, unhooked) and can stall
task dispatching — the hardware facts that make passive JTAG monitoring
free for the target.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TargetFault
from repro.target.cpu import Cpu, RunResult
from repro.target.firmware import FirmwareImage
from repro.target.memory import MemoryMap
from repro.target.peripherals import Gpio, Uart
from repro.util.intmath import wrap32

#: IDCODE scanned out of the TAP (LSB must be 1 per IEEE 1149.1).
BOARD_IDCODE = 0x4441_5445  # spells "DATE", for the paper's venue


class Board:
    """One embedded node: CPU, RAM, UART, GPIO and a firmware image."""

    def __init__(self, clock_hz: int = 8_000_000, ram_words: int = 4096,
                 uart_fifo: int = 128, stack_depth: int = 128) -> None:
        if clock_hz <= 0:
            raise TargetFault(f"clock must be positive, got {clock_hz}")
        self.clock_hz = clock_hz
        self.memory = MemoryMap(ram_words)
        self.gpio = Gpio()
        # Default FIFO absorbs one fully-instrumented job burst (two actors'
        # task markers + transition + state + signal frames ~= 8 x 10 bytes)
        # so clean runs drop nothing; overrun tests shrink it explicitly.
        self.uart = Uart(fifo_depth=uart_fifo)
        self.cpu = Cpu(self.memory, self.gpio, stack_depth=stack_depth)
        self.firmware: Optional[FirmwareImage] = None
        #: set by the debugger (JTAG HALT / serial halt request): the RTOS
        #: skips job dispatch while stalled. The CPU itself is unaware.
        self.stalled = False

    def load_firmware(self, firmware: FirmwareImage) -> None:
        """Flash *firmware*: decode the code, initialise the data image."""
        if len(firmware.symbols) > len(self.memory):
            raise TargetFault(
                f"firmware {firmware.name!r} needs {len(firmware.symbols)} "
                f"data words but the board has {len(self.memory)}"
            )
        self.firmware = firmware
        # task entries are fusion boundaries: no superinstruction may span
        # one, so every reset_task lands on a legal decoded row
        self.cpu.load(firmware.code, entries=firmware.entries.values())
        self.memory.load_init_image(firmware.data_init)
        self.memory.reset()

    def _require_firmware(self) -> FirmwareImage:
        if self.firmware is None:
            raise TargetFault("no firmware loaded")
        return self.firmware

    def run_task(self, task: str,
                 max_instructions: int = 1_000_000) -> RunResult:
        """Run one job of *task* from its entry point to HALT."""
        entry = self._require_firmware().entry_of(task)
        self.cpu.reset_task(entry)
        return self.cpu.run(max_instructions=max_instructions)

    def cycles_to_us(self, cycles: int) -> int:
        """Convert CPU cycles to microseconds at this board's clock
        (rounded up: a job occupies its last partial microsecond)."""
        return (cycles * 1_000_000 + self.clock_hz - 1) // self.clock_hz

    def symbol_value(self, name: str) -> int:
        """Backdoor read of a firmware symbol (no target cost)."""
        return self.memory.peek(self._require_firmware().symbols.addr_of(name))

    def __repr__(self) -> str:
        loaded = self.firmware.name if self.firmware else "no firmware"
        return (f"<Board {self.clock_hz // 1_000_000}MHz, "
                f"{len(self.memory)} words, {loaded}>")


class DebugPort:
    """The on-chip debug unit: backdoor memory master + run control.

    Accesses are counted on the *port*, never on the target's memory plane
    — the accounting that proves passive monitoring is free.
    """

    def __init__(self, board: Board) -> None:
        self.board = board
        self.idcode = BOARD_IDCODE
        self.reads = 0
        self.writes = 0

    def read_word(self, addr: int) -> int:
        """Scan one RAM word out (uncounted on the target side)."""
        self.reads += 1
        return self.board.memory.peek(addr)

    def write_word(self, addr: int, value: int) -> None:
        """Scan one RAM word in (stored with signed 32-bit semantics)."""
        self.writes += 1
        self.board.memory.poke(addr, wrap32(value))

    def halt(self) -> None:
        """Stall the target's task dispatching."""
        self.board.stalled = True

    def resume(self) -> None:
        """Release the stall."""
        self.board.stalled = False

    @property
    def is_halted(self) -> bool:
        """Whether the target is currently stalled by this port."""
        return self.board.stalled
