"""Instruction set of the virtual target: a 32-bit stack machine.

The design is performance-first: every opcode has a small-integer encoding
(its index in :data:`OPCODES`) that the CPU decodes **once at load time**,
so the interpreter hot loop never touches strings or dictionaries. The
numbering is frequency-ordered — opcodes that dominate generated firmware
(LOAD/PUSH/STORE/ADD and the compare/branch group) get the smallest codes,
which keeps the dispatch chain in :meth:`repro.target.cpu.Cpu.run` short
for the common case.

See the package docstring (``repro/target/__init__.py``) for the full
opcode table with stack effects and cycle costs.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AssemblyError

#: Opcode name -> encoding is positional: OPCODES.index(name). The order is
#: the dispatch order of the interpreter: hottest first.
OPCODES = (
    "LOAD", "PUSH", "STORE", "ADD", "EQ", "NE", "LT", "LE", "GT", "GE",
    "JMP", "JZ", "JNZ", "SUB", "MUL", "MIN", "MAX", "AND", "OR", "NOT",
    "NEG", "DUP", "MOD", "DIV", "SWAP", "POP", "LDI", "STI", "EMIT", "HALT",
)

#: name -> small-int opcode, built once at import.
OP_INDEX = {name: code for code, name in enumerate(OPCODES)}

# Named encodings for the CPU's dispatch chain.
(OP_LOAD, OP_PUSH, OP_STORE, OP_ADD, OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT,
 OP_GE, OP_JMP, OP_JZ, OP_JNZ, OP_SUB, OP_MUL, OP_MIN, OP_MAX, OP_AND,
 OP_OR, OP_NOT, OP_NEG, OP_DUP, OP_MOD, OP_DIV, OP_SWAP, OP_POP, OP_LDI,
 OP_STI, OP_EMIT, OP_HALT) = range(len(OPCODES))

#: Opcodes that carry an immediate operand (value, address, target or kind).
ARG_OPS = frozenset(("PUSH", "LOAD", "STORE", "JMP", "JZ", "JNZ", "EMIT"))

#: Opcodes whose argument is a code address resolved by the assembler.
JUMP_OPS = frozenset(("JMP", "JZ", "JNZ"))

#: Cycle cost per opcode (indexable by the small-int encoding). Costs mirror
#: a small in-order MCU: single-cycle ALU, 2-cycle memory/branches, 3-cycle
#: indirect access and multiply, a slow iterative divider, and an expensive
#: EMIT (formatting + pushing a debug command into the UART FIFO) — the
#: instrumentation overhead the paper's benchmark E7 measures.
_CYCLE_TABLE = {
    "LOAD": 2, "STORE": 2, "LDI": 3, "STI": 3,
    "PUSH": 1, "POP": 1, "DUP": 1, "SWAP": 1,
    "ADD": 1, "SUB": 1, "NEG": 1, "AND": 1, "OR": 1, "NOT": 1,
    "EQ": 1, "NE": 1, "LT": 1, "LE": 1, "GT": 1, "GE": 1,
    "MIN": 1, "MAX": 1,
    "MUL": 3, "DIV": 12, "MOD": 12,
    "JMP": 2, "JZ": 2, "JNZ": 2,
    "EMIT": 24, "HALT": 1,
}

#: cycle cost indexed by opcode int — used by the CPU's load-time decoder.
CYCLES = tuple(_CYCLE_TABLE[name] for name in OPCODES)

# -- superinstruction (fused) opcode ids -------------------------------------
#
# Decoded-only opcodes: :meth:`repro.target.cpu.Cpu.load`'s fusion pass
# synthesizes rows carrying these ids for the codegen's regular sequences.
# They are never assembled, never appear in an :class:`Instr`, and are
# architecturally invisible — a fused row charges the *sum* of its
# constituents' :data:`CYCLES`, counts their instruction count, performs
# their reads/writes, and decomposes back to the constituent rows whenever
# any observation (instruction budget, fault, transient stack pressure)
# could tell the difference. See the superinstruction section of the
# package docstring (``repro/target/__init__.py``) for the fusion rules.
FUSE_BASE = len(OPCODES)
#: [LOAD|PUSH] a; [LOAD|PUSH] b; <alu>; STORE y  (one decoded row)
OP_F_ALU_ST = FUSE_BASE
#: [LOAD|PUSH] a; [LOAD|PUSH] b; <alu>; JZ t
OP_F_ALU_JZ = FUSE_BASE + 1
#: [LOAD|PUSH] a; [LOAD|PUSH] b; <alu>; JNZ t
OP_F_ALU_JNZ = FUSE_BASE + 2
#: PUSH k; STORE y
OP_F_PUSH_ST = FUSE_BASE + 3
#: LOAD a; STORE y
OP_F_LOAD_ST = FUSE_BASE + 4
#: LOAD a; JZ t
OP_F_LOAD_JZ = FUSE_BASE + 5
#: LOAD a; JNZ t
OP_F_LOAD_JNZ = FUSE_BASE + 6
#: PUSH ch; [LOAD|PUSH] v; EMIT kind  (the codegen's command preamble —
#: the residual scalar work left after PR 5's quads/pairs)
OP_F_EMIT = FUSE_BASE + 7

#: binary ALU opcodes legal as the third constituent of a fused quad
#: (everything with stack effect ``a b -- r``; DIV/MOD fuse too — their
#: divide-by-zero guard decomposes so the trap surfaces unfused).
FUSABLE_ALU = frozenset((
    OP_ADD, OP_SUB, OP_MUL, OP_EQ, OP_NE, OP_LT, OP_LE, OP_GT, OP_GE,
    OP_MIN, OP_MAX, OP_AND, OP_OR, OP_DIV, OP_MOD,
))


def profile_names(counts) -> dict:
    """An opcode-frequency profile keyed by mnemonic, hottest first.

    *counts* is the int-keyed mapping filled by ``Cpu.run(profile=...)``;
    the result is what benchmark dumps and humans read. Deterministic:
    ties break on opcode encoding (i.e. dispatch order).
    """
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return {OPCODES[op]: count for op, count in ordered}


def cycles_of(op: str) -> int:
    """Cycle cost of one *op* (by name), as accumulated by the CPU."""
    try:
        return _CYCLE_TABLE[op]
    except KeyError:
        raise AssemblyError(f"unknown opcode {op!r}") from None


class Instr:
    """One decoded instruction.

    ``__slots__`` keeps instances small (firmware images hold thousands) and
    attribute access fast. ``code`` is the small-int encoding, computed once
    here so the CPU's loader is a plain attribute read.
    """

    __slots__ = ("op", "arg", "src_path", "code")

    def __init__(self, op: str, arg: Optional[int] = None,
                 src_path: Optional[str] = None) -> None:
        code = OP_INDEX.get(op)
        if code is None:
            raise AssemblyError(f"unknown opcode {op!r}")
        if op in ARG_OPS:
            if arg is None:
                raise AssemblyError(f"{op} requires an argument")
        elif arg is not None:
            raise AssemblyError(f"{op} takes no argument, got {arg!r}")
        self.op = op
        self.arg = arg
        self.src_path = src_path
        self.code = code

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instr):
            return NotImplemented
        return self.op == other.op and self.arg == other.arg

    def __hash__(self) -> int:
        return hash((self.op, self.arg))

    def __repr__(self) -> str:
        text = self.op if self.arg is None else f"{self.op} {self.arg}"
        return f"<Instr {text}>"
