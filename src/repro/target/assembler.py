"""Two-pass assembler with labels, and a disassembler for listings.

``emit``/``emit_jump``/``label`` record a program; ``assemble`` resolves
labels (forward and backward) and returns the final instruction list. Jump
targets are backpatched in the second pass, so code generators can emit
control flow in source order without knowing addresses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import AssemblyError
from repro.target.isa import Instr, JUMP_OPS


class _PendingJump:
    """A jump whose target label is resolved at assemble time."""

    __slots__ = ("op", "label", "src_path")

    def __init__(self, op: str, label: str, src_path: Optional[str]) -> None:
        self.op = op
        self.label = label
        self.src_path = src_path


class Assembler:
    """Accumulates instructions and labels; ``assemble()`` backpatches."""

    def __init__(self) -> None:
        self._items: List[Union[Instr, _PendingJump]] = []
        self._labels: Dict[str, int] = {}
        self._fresh_count = 0

    @property
    def position(self) -> int:
        """Address the next emitted instruction will occupy."""
        return len(self._items)

    def emit(self, op: str, arg: Optional[int] = None,
             src_path: Optional[str] = None) -> int:
        """Append one instruction; returns its address."""
        self._items.append(Instr(op, arg, src_path=src_path))
        return len(self._items) - 1

    def emit_jump(self, op: str, label: str,
                  src_path: Optional[str] = None) -> int:
        """Append a jump to *label* (resolved later); returns its address."""
        if op not in JUMP_OPS:
            raise AssemblyError(
                f"{op} is not a jump opcode; emit_jump takes one of "
                f"{sorted(JUMP_OPS)}"
            )
        self._items.append(_PendingJump(op, label, src_path))
        return len(self._items) - 1

    def label(self, name: str) -> None:
        """Define *name* at the current position."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._items)

    def fresh_label(self, prefix: str = "L") -> str:
        """A label name guaranteed unique within this assembler."""
        self._fresh_count += 1
        return f"__{prefix}_{self._fresh_count}"

    def assemble(self) -> List[Instr]:
        """Resolve all labels and return the final program."""
        code: List[Instr] = []
        for item in self._items:
            if isinstance(item, Instr):
                code.append(item)
                continue
            target = self._labels.get(item.label)
            if target is None:
                raise AssemblyError(f"undefined label {item.label!r}")
            code.append(Instr(item.op, target, src_path=item.src_path))
        return code


def disassemble(code: Sequence[Instr], start: int = 0,
                count: Optional[int] = None,
                mark_pc: Optional[int] = None) -> str:
    """Render *code* as a listing; ``mark_pc`` gets a ``=>`` cursor.

    ::

           10  PUSH     1
        => 11  STORE    0x20000003   ; signal:light
    """
    if count is None:
        count = len(code) - start
    end = min(len(code), start + count)
    lines: List[str] = []
    for pc in range(max(0, start), end):
        instr = code[pc]
        marker = "=>" if pc == mark_pc else "  "
        if instr.arg is None:
            operand = ""
        elif instr.op in ("LOAD", "STORE"):
            operand = f"0x{instr.arg:08x}"
        else:
            operand = str(instr.arg)
        line = f"{marker} {pc:4d}  {instr.op:<6s} {operand:<12s}"
        if instr.src_path:
            line += f" ; {instr.src_path}"
        lines.append(line.rstrip())
    return "\n".join(lines)
