"""The virtual embedded target: ISA, assembler, firmware, CPU and board.

This package is the "embedded controller" of the paper: generated firmware
runs here, the active command interface EMITs from here, and the passive
JTAG probe scans this board's RAM. The interpreter is the framework's
hottest path and is engineered accordingly — see :mod:`repro.target.cpu`
for the performance rules (decode once, int dispatch, hoisted locals,
zero-cost debug features when unused).

ISA reference
=============

A 32-bit signed stack machine. One word per cell, wraparound arithmetic,
C-style truncating division, comparisons/logic yield 0 or 1. ``a`` is the
value *below* the top of stack, ``b`` the top (pushed last).

======== ========= ==================== ====== ==========================
Opcode   Operand   Stack effect         Cycles Notes
======== ========= ==================== ====== ==========================
LOAD     addr      -- m[addr]              2   direct read
STORE    addr      v --                    2   direct write
LDI                addr -- m[addr]         3   indirect read
STI                v addr --               3   indirect write
PUSH     imm       -- imm                  1
POP                v --                    1
DUP                v -- v v                1
SWAP               a b -- b a              1
ADD                a b -- a+b              1   wraps to 32-bit
SUB                a b -- a-b              1   wraps to 32-bit
MUL                a b -- a*b              3   wraps to 32-bit
DIV                a b -- a/b             12   truncates toward zero;
                                              b=0 traps
MOD                a b -- a%b             12   sign follows dividend;
                                              b=0 traps
NEG                a -- -a                 1   -INT_MIN wraps to INT_MIN
MIN                a b -- min(a,b)         1
MAX                a b -- max(a,b)         1
AND                a b -- a&&b             1   logical: 0/1
OR                 a b -- a||b             1   logical: 0/1
NOT                a -- !a                 1   logical: 0/1
EQ NE              a b -- a?b              1   0/1
LT LE GT GE        a b -- a?b              1   0/1
JMP      target    --                      2   absolute
JZ       target    c --                    2   jump if c == 0
JNZ      target    c --                    2   jump if c != 0
EMIT     kind      id v --                24   debug command (kind,id,v):
                                              appended to the CPU's
                                              emit_log and handed to the
                                              emit handler (active
                                              command interface)
HALT               --                      1   end of task job
======== ========= ==================== ====== ==========================

Traps (:class:`repro.errors.TargetFault`): stack under/overflow, memory
access outside RAM, divide/modulo by zero, jump or pc outside code.

Cycle costs model a small in-order MCU; EMIT's cost is deliberately large
(formatting + UART FIFO push) because it *is* the instrumentation overhead
the paper's passive JTAG solution eliminates (benchmark E7).

Superinstructions
=================

Generated firmware is dominated by a handful of rigid shapes, so
:meth:`~repro.target.cpu.Cpu.load` runs a fusion pass (on by default;
``Cpu(fuse=False)`` keeps the reference decoding) that collapses them
into single decoded rows dispatched by a dedicated fast loop:

========================================== ================================
Constituent sequence                        Fused row
========================================== ================================
``[LOAD|PUSH] a; [LOAD|PUSH] b; <alu>;     ALU+STORE quad (one dispatch
STORE y``                                  computes ``m[y]``)
``[LOAD|PUSH] a; [LOAD|PUSH] b; <alu>;     ALU+branch quad (state-machine
JZ/JNZ t``                                 dispatch, loop back-edges)
``PUSH k; STORE y``                        constant store
``LOAD a; STORE y``                        move (Delay outputs, port copies)
``LOAD a; JZ/JNZ t``                       load-and-test
``PUSH ch; [LOAD|PUSH] v; EMIT kind``      command preamble (the codegen's
                                           EMIT shape — instrumentation in
                                           one dispatch)
========================================== ================================

``<alu>`` is any binary op (``a b -- r``), DIV/MOD included.

**Branch-target rule.** No fused row spans a jump target, a task entry,
or the end of code; fusing may *start* at one (that is what keeps loop
bodies fused). Interior pcs of a fused region keep their plain decoded
rows, so an undeclared entry or a resume from a mid-sequence stop simply
executes unfused.

**Timing-identity invariant.** Fusion is observably invisible: a fused
row charges the exact sum of its constituents' cycle costs, counts their
instruction count and performs their RAM reads/writes. Whenever fused
execution could be *observed* to differ — the instruction budget lands
mid-sequence, an address is outside RAM, the constituents' transient
stack pushes would overflow, or a fused divide sees a zero divisor — the
row decomposes back to per-instruction execution, so LIMIT stops land on
a legal unfused pc and faults carry the constituent's pc and counters.
Debug features are untouched: breakpoints, watchpoints and
single-stepping route to the per-instruction checked loop exactly as
before, at any pc. ``tests/test_superinstructions.py`` holds the
lockstep proof; ``benchmarks/perf_interp.py`` scores the speedup
(``fusion_speedup``, floor-gated in CI).

Fusion and batch decisions are driven by measurement, not guesswork:
``Cpu.run(profile=...)`` fills a dict with per-opcode retirement counts
(plain decoded opcodes, never superinstruction ids) at zero cost when
unused — the hook is priced once at ``run()`` entry, exactly like
breakpoints — and ``benchmarks/perf_interp.py`` dumps the measured
profile (``opcode_profile``) with every run.

The batch tier: N boards as one
===============================

:class:`repro.target.batch.BatchCpu` executes a *cohort* of CPUs that
share one decoded program in SoA lockstep — the raw-speed multiplier
for identical-firmware campaigns (seed sweeps, differential fault
oracles) that superinstructions alone cannot reach.

**SoA layout.** State is column-major across lanes: one list per stack
slot and one per RAM word (``column[j]`` = lane *j*'s value), grouped by
shared ``(pc, stack depth)``. One fetch/dispatch serves every lane;
columns are immutable once shared, so LOAD pushes a RAM column by
reference, STORE replaces the slot with the popped column, and only STI
copies (copy-on-write) — data movement is O(1) per group, not per lane.

**Mask semantics (split/join/merge).** Divergence is handled by group
fission rather than a dense mask: a mixed branch predicate splits the
group; with several groups live, every group pauses at join pcs (branch
targets) and equal ``(pc, stack depth)`` groups merge, lowest-pc group
scheduled first so stragglers catch up. Groups diverged beyond
``reconverge_window`` (and not the largest), or smaller than
``min_lanes``, are peeled to scalar — lockstep must pay for itself.

**Peel-off invariant.** Exactly like a fused row decomposes, a lane
leaves the batch *before* any instruction whose batched execution could
be observably different (potential fault, armed emit handler, write
hook, divergence past the window): its bit-exact state moves back to
its own :class:`~repro.target.cpu.Cpu` via
:meth:`~repro.target.cpu.Cpu.export_state`/``import_state``-grade
writeback, and the serial loop itself re-executes the instruction — so
fault pcs, partial pops, counters, RAM and emit logs are serial by
construction, and batch == serial is provable bit-for-bit at every
stop. ``tests/test_batch.py`` holds the lockstep proof (hypothesis
cohorts with per-lane faults and budgets); ``benchmarks/perf_batch.py``
scores boards/sec at 16 and 64 lanes (``batch_speedup_64`` and parity
floor-gated in CI).

**When cohorts form.** One level up,
:class:`repro.fleet.batch.BoardCohort` flashes N boards with one
firmware and drives them here;
:class:`repro.fleet.batch.BatchRunner` groups campaign jobs by
declarative firmware fingerprint (control/comm jobs share the pristine
image; design/implementation jobs mutate firmware per ``(kind, seed)``
and stay singleton cohorts).
"""

from repro.target.assembler import Assembler, disassemble
from repro.target.batch import BatchCpu, LaneOutcome
from repro.target.board import BOARD_IDCODE, Board, DebugPort
from repro.target.cpu import Cpu, CpuState, RunResult, StopReason
from repro.target.firmware import FirmwareImage, Symbol, SymbolTable
from repro.target.isa import Instr, OPCODES, cycles_of
from repro.target.memory import MemoryMap, RAM_BASE
from repro.target.peripherals import Gpio, Uart

__all__ = [
    "Assembler", "disassemble",
    "BatchCpu", "LaneOutcome",
    "BOARD_IDCODE", "Board", "DebugPort",
    "Cpu", "CpuState", "RunResult", "StopReason",
    "FirmwareImage", "Symbol", "SymbolTable",
    "Instr", "OPCODES", "cycles_of",
    "MemoryMap", "RAM_BASE",
    "Gpio", "Uart",
]
