"""Exception hierarchy for the GMDF reproduction.

Every package raises exceptions derived from :class:`ReproError`, so callers
can catch framework failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MetamodelError(ReproError):
    """A metamodel definition is malformed (duplicate class, bad supertype...)."""


class ModelError(ReproError):
    """A model violates its metamodel (unknown attribute, bad reference...)."""


class ValidationError(ReproError):
    """A model failed semantic validation.

    Carries the list of individual problem strings in :attr:`problems`.
    """

    def __init__(self, problems):
        self.problems = list(problems)
        summary = "; ".join(self.problems[:5])
        if len(self.problems) > 5:
            summary += f" (+{len(self.problems) - 5} more)"
        super().__init__(f"{len(self.problems)} validation problem(s): {summary}")


class CodegenError(ReproError):
    """Model-to-code transformation failed."""


class AssemblyError(ReproError):
    """Assembling or disassembling target code failed."""


class TargetFault(ReproError):
    """The virtual CPU trapped (bad address, divide by zero, stack error...)."""

    def __init__(self, reason: str, pc: int = -1):
        self.reason = reason
        self.pc = pc
        super().__init__(f"target fault at pc={pc}: {reason}")


class CommError(ReproError):
    """A communication channel failed (framing, checksum, link down...)."""


class TransientLinkError(CommError):
    """One transport operation failed in a retryable way.

    Raised by fault-injecting links (:class:`repro.comm.chaos.ChaosLink`)
    for transient wire conditions — a dropped transaction, a glitched
    probe, a link-down window. A :class:`repro.comm.retry.RetryingLink`
    absorbs these up to its policy's attempt budget; anything above a
    bare link sees them as ordinary :class:`CommError` failures.
    """

    def __init__(self, op: str, reason: str = "transient wire fault"):
        self.op = op
        self.reason = reason
        super().__init__(f"transient link failure in {op}: {reason}")


class LinkDownError(CommError):
    """A transport operation exhausted its retry budget.

    The structured give-up a :class:`repro.comm.retry.RetryingLink`
    raises after ``max_attempts`` failures: carries the operation name,
    how many attempts were burned and the last underlying error.
    """

    def __init__(self, op: str, attempts: int,
                 last_error: Exception | None = None):
        self.op = op
        self.attempts = attempts
        self.last_error = last_error
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"link down: {op} failed after {attempts} attempt(s){detail}")


class JtagError(CommError):
    """The JTAG probe or TAP controller was driven illegally."""


class AbstractionError(ReproError):
    """The abstraction mapping cannot produce a debug model."""


class DebuggerError(ReproError):
    """The runtime debugger engine or baseline debugger was misused."""


class TruncatedTraceError(DebuggerError):
    """A replay was started over a partial window of a longer history.

    Either the ring buffer evicted :attr:`missing` events into the void
    (``spilled=False``), or it evicted them into a spill store
    (``spilled=True``) and the caller replayed the in-memory window
    instead of ``trace.full_history()``. Both ways, replaying from the
    oldest *surviving* event would animate from a mid-history state that
    silently pretends to be the beginning. Opt in with
    ``allow_truncated=True`` to replay just the surviving window.
    """

    def __init__(self, missing: int, surviving: int, spilled: bool = False):
        self.missing = missing
        self.surviving = surviving
        self.spilled = spilled
        if spilled:
            detail = (f"the {missing} event(s) before the {surviving} "
                      f"cached one(s) live in the spill store; replay "
                      f"trace.full_history() instead")
        else:
            detail = (f"{missing} event(s) were dropped before the "
                      f"{surviving} surviving one(s); record with a spill "
                      f"store to keep history replayable")
        super().__init__(
            f"trace is a truncated window: {detail} "
            f"(or pass allow_truncated=True to replay the window)")

    @property
    def dropped(self) -> int:
        """Alias for :attr:`missing` (the pre-spill name)."""
        return self.missing


class TraceStoreError(ReproError):
    """The on-disk trace store was driven illegally or is corrupt."""


class BudgetExceededError(DebuggerError):
    """A debug session burned through its transport budget.

    Carries the individual violation strings in :attr:`violations` and
    the offending stats snapshot in :attr:`stats`.
    """

    def __init__(self, violations, stats):
        self.violations = list(violations)
        self.stats = dict(stats)
        super().__init__("transport budget exceeded: "
                         + "; ".join(self.violations))


class SchedulerError(ReproError):
    """The RTOS scheduler detected an inconsistent task set or overload."""


class FleetError(ReproError):
    """The fleet execution subsystem was misconfigured or a worker failed."""


class RenderError(ReproError):
    """Scene construction or rendering failed."""
