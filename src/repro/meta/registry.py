"""A registry of known metamodels.

The GMDF prototype lets the user pick the input metamodel from a file dialog
(Fig 6, step 2); the registry plays that role programmatically.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import MetamodelError
from repro.meta.metamodel import MetaModel


class MetamodelRegistry:
    """Name -> metamodel lookup with duplicate protection."""

    def __init__(self) -> None:
        self._metamodels: Dict[str, MetaModel] = {}

    def register(self, metamodel: MetaModel) -> MetaModel:
        """Register a metamodel after consistency-checking it."""
        if metamodel.name in self._metamodels:
            raise MetamodelError(f"metamodel {metamodel.name!r} already registered")
        metamodel.check()
        self._metamodels[metamodel.name] = metamodel
        return metamodel

    def get(self, name: str) -> MetaModel:
        """Look up a registered metamodel."""
        try:
            return self._metamodels[name]
        except KeyError:
            raise MetamodelError(f"no metamodel named {name!r} registered") from None

    def names(self) -> List[str]:
        """Registered metamodel names, in registration order."""
        return list(self._metamodels)

    def __contains__(self, name: str) -> bool:
        return name in self._metamodels
