"""A reflective metamodeling framework (EMF/Ecore stand-in).

The paper requires GMDF to "accept all types of system model that follow the
MOF specification": the abstraction engine never sees COMDES classes
directly, only this package's reflective API — metamodels made of
metaclasses with attributes and references, and model objects navigable
through them. COMDES (:mod:`repro.comdes`) and the GDM itself
(:mod:`repro.gdm`) both define their metamodels here.
"""

from repro.meta.metamodel import (
    AttributeKind,
    MetaAttribute,
    MetaClass,
    MetaModel,
    MetaReference,
)
from repro.meta.model import Model, ModelObject
from repro.meta.registry import MetamodelRegistry
from repro.meta.serialize import model_from_dict, model_to_dict
from repro.meta.validate import validate_model

__all__ = [
    "AttributeKind",
    "MetaAttribute",
    "MetaClass",
    "MetaModel",
    "MetaReference",
    "Model",
    "ModelObject",
    "MetamodelRegistry",
    "model_to_dict",
    "model_from_dict",
    "validate_model",
]
