"""Structural validation of models against their metamodel."""

from __future__ import annotations

from typing import List

from repro.errors import ValidationError
from repro.meta.model import Model


def validation_problems(model: Model) -> List[str]:
    """Collect structural problems without raising.

    Checks: required attributes set, required references populated,
    cross-references point at registered objects, and every contained
    object is reachable exactly once (tree-shaped containment).
    """
    problems: List[str] = []
    seen_ids = set()
    for obj in model.all_objects():
        if obj.id in seen_ids:
            problems.append(f"{obj.id}: appears in the containment tree twice")
            continue
        seen_ids.add(obj.id)
        for name, attr in obj.metaclass.all_attributes().items():
            if attr.required and obj.get(name) is None:
                problems.append(f"{obj.id}: required attribute {name!r} unset")
        for name, spec in obj.metaclass.all_references().items():
            targets = obj.refs(name) if spec.many else (
                [obj.ref(name)] if obj.ref(name) is not None else []
            )
            if spec.required and not targets:
                problems.append(f"{obj.id}: required reference {name!r} empty")
            for target in targets:
                if not model.has_id(target.id):
                    problems.append(
                        f"{obj.id}.{name}: target {target.id} is not in the model"
                    )
    return problems


def validate_model(model: Model) -> None:
    """Raise :class:`ValidationError` listing all problems, if any."""
    problems = validation_problems(model)
    if problems:
        raise ValidationError(problems)
