"""Model serialization to plain dicts (an XMI stand-in).

Objects are emitted in containment pre-order with attributes inline;
cross-references are emitted by id and resolved in a second pass, so
arbitrary reference graphs round-trip.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import ModelError
from repro.meta.metamodel import MetaModel
from repro.meta.model import Model, ModelObject


def model_to_dict(model: Model) -> Dict[str, Any]:
    """Serialize *model* (objects, attributes, references) to a dict."""
    objects: List[Dict[str, Any]] = []
    for obj in model.all_objects():
        record: Dict[str, Any] = {
            "id": obj.id,
            "class": obj.metaclass.name,
            "attrs": {
                name: obj.get(name)
                for name in obj.metaclass.all_attributes()
                if obj.get(name) is not None
            },
            "refs": {},
        }
        for name, spec in obj.metaclass.all_references().items():
            targets = obj.refs(name) if spec.many else (
                [obj.ref(name)] if obj.ref(name) else []
            )
            if targets:
                record["refs"][name] = [t.id for t in targets]
        objects.append(record)
    return {
        "metamodel": model.metamodel.name,
        "name": model.name,
        "roots": [root.id for root in model.roots],
        "objects": objects,
    }


def model_from_dict(data: Dict[str, Any], metamodel: MetaModel) -> Model:
    """Reconstruct a model previously produced by :func:`model_to_dict`."""
    if data.get("metamodel") != metamodel.name:
        raise ModelError(
            f"document is a {data.get('metamodel')!r} model, expected {metamodel.name!r}"
        )
    model = Model(metamodel, name=data.get("name", "model"))
    by_id: Dict[str, ModelObject] = {}

    # Pass 1: create objects and set attributes.
    for record in data["objects"]:
        cls = metamodel.metaclass(record["class"])
        obj = ModelObject(cls, record["id"])
        for name, value in record.get("attrs", {}).items():
            obj.set(name, value)
        by_id[obj.id] = obj
        model._by_id[obj.id] = obj  # registered with its original id

    # Pass 2: wire references (containment included).
    for record in data["objects"]:
        obj = by_id[record["id"]]
        for name, target_ids in record.get("refs", {}).items():
            for target_id in target_ids:
                if target_id not in by_id:
                    raise ModelError(f"{obj.id}.{name}: dangling target {target_id!r}")
                obj.add_ref(name, by_id[target_id])

    for root_id in data.get("roots", []):
        model.add_root(by_id[root_id])
    return model
