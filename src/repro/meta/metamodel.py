"""Metamodel definitions: metaclasses, attributes, references.

This mirrors the Ecore subset GMDF needs: single/multiple inheritance of
metaclasses, typed attributes with defaults, and references that are either
*containment* (forming the model tree) or *cross* references, with optional
``many`` multiplicity.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import MetamodelError


class AttributeKind(enum.Enum):
    """Primitive attribute types supported by the reflective layer."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    ENUM = "enum"

    def accepts(self, value: Any) -> bool:
        """Whether *value* is a legal value of this kind (enums need a spec)."""
        if self is AttributeKind.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeKind.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is AttributeKind.STR:
            return isinstance(value, str)
        if self is AttributeKind.BOOL:
            return isinstance(value, bool)
        return isinstance(value, str)  # ENUM literals are strings


class MetaAttribute:
    """A typed attribute slot on a metaclass."""

    def __init__(
        self,
        name: str,
        kind: AttributeKind,
        default: Any = None,
        required: bool = False,
        enum_values: Optional[Sequence[str]] = None,
    ) -> None:
        if kind is AttributeKind.ENUM and not enum_values:
            raise MetamodelError(f"enum attribute {name!r} needs enum_values")
        self.name = name
        self.kind = kind
        self.default = default
        self.required = required
        self.enum_values = tuple(enum_values) if enum_values else ()
        if default is not None and not self.accepts(default):
            raise MetamodelError(
                f"default {default!r} is not a valid {kind.value} for attribute {name!r}"
            )

    def accepts(self, value: Any) -> bool:
        """Whether *value* conforms to this attribute's type."""
        if not self.kind.accepts(value):
            return False
        if self.kind is AttributeKind.ENUM:
            return value in self.enum_values
        return True

    def __repr__(self) -> str:
        return f"<MetaAttribute {self.name}:{self.kind.value}>"


class MetaReference:
    """A reference slot: containment or cross, single- or many-valued."""

    def __init__(
        self,
        name: str,
        target: str,
        containment: bool = False,
        many: bool = False,
        required: bool = False,
    ) -> None:
        self.name = name
        self.target = target
        self.containment = containment
        self.many = many
        self.required = required

    def __repr__(self) -> str:
        flavor = "contains" if self.containment else "refers-to"
        mult = "*" if self.many else "1"
        return f"<MetaReference {self.name} {flavor} {self.target}[{mult}]>"


class MetaClass:
    """A class in a metamodel; supports multiple inheritance of features."""

    def __init__(self, name: str, metamodel: "MetaModel", abstract: bool = False,
                 supertypes: Sequence[str] = ()) -> None:
        self.name = name
        self.metamodel = metamodel
        self.abstract = abstract
        self.supertype_names = tuple(supertypes)
        self.own_attributes: Dict[str, MetaAttribute] = {}
        self.own_references: Dict[str, MetaReference] = {}

    # -- definition -------------------------------------------------------

    def attribute(self, name: str, kind: AttributeKind, **kwargs: Any) -> "MetaClass":
        """Define an attribute; returns self for chaining."""
        if name in self.own_attributes:
            raise MetamodelError(f"duplicate attribute {name!r} on {self.name}")
        self.own_attributes[name] = MetaAttribute(name, kind, **kwargs)
        return self

    def reference(self, name: str, target: str, **kwargs: Any) -> "MetaClass":
        """Define a reference; returns self for chaining."""
        if name in self.own_references:
            raise MetamodelError(f"duplicate reference {name!r} on {self.name}")
        self.own_references[name] = MetaReference(name, target, **kwargs)
        return self

    # -- inheritance-aware lookups ----------------------------------------

    def supertypes(self) -> List["MetaClass"]:
        """Direct supertypes, resolved through the owning metamodel."""
        return [self.metamodel.metaclass(name) for name in self.supertype_names]

    def all_supertypes(self) -> List["MetaClass"]:
        """Transitive supertypes in MRO-ish order (no duplicates)."""
        seen: Dict[str, MetaClass] = {}
        stack = list(self.supertypes())
        while stack:
            cls = stack.pop(0)
            if cls.name not in seen:
                seen[cls.name] = cls
                stack.extend(cls.supertypes())
        return list(seen.values())

    def is_subtype_of(self, name: str) -> bool:
        """True if this class is *name* or inherits from it."""
        if self.name == name:
            return True
        return any(cls.name == name for cls in self.all_supertypes())

    def all_attributes(self) -> Dict[str, MetaAttribute]:
        """Own + inherited attributes; subclasses override supertype slots."""
        merged: Dict[str, MetaAttribute] = {}
        for cls in reversed(self.all_supertypes()):
            merged.update(cls.own_attributes)
        merged.update(self.own_attributes)
        return merged

    def all_references(self) -> Dict[str, MetaReference]:
        """Own + inherited references; subclasses override supertype slots."""
        merged: Dict[str, MetaReference] = {}
        for cls in reversed(self.all_supertypes()):
            merged.update(cls.own_references)
        merged.update(self.own_references)
        return merged

    def __repr__(self) -> str:
        return f"<MetaClass {self.metamodel.name}.{self.name}>"


class MetaModel:
    """A named collection of metaclasses (an Ecore package stand-in)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._classes: Dict[str, MetaClass] = {}

    def define(self, name: str, abstract: bool = False,
               supertypes: Sequence[str] = ()) -> MetaClass:
        """Create a metaclass; supertypes may be defined later (checked at check())."""
        if name in self._classes:
            raise MetamodelError(f"duplicate metaclass {name!r} in {self.name}")
        cls = MetaClass(name, self, abstract=abstract, supertypes=supertypes)
        self._classes[name] = cls
        return cls

    def metaclass(self, name: str) -> MetaClass:
        """Look up a metaclass by name."""
        try:
            return self._classes[name]
        except KeyError:
            raise MetamodelError(f"unknown metaclass {name!r} in {self.name}") from None

    def has_class(self, name: str) -> bool:
        """Whether a metaclass with *name* exists."""
        return name in self._classes

    def classes(self) -> List[MetaClass]:
        """All metaclasses in definition order."""
        return list(self._classes.values())

    def concrete_classes(self) -> List[MetaClass]:
        """Metaclasses that can be instantiated."""
        return [cls for cls in self._classes.values() if not cls.abstract]

    def check(self) -> None:
        """Verify internal consistency: supertypes and reference targets exist,
        and the inheritance graph is acyclic."""
        for cls in self._classes.values():
            for sup in cls.supertype_names:
                if sup not in self._classes:
                    raise MetamodelError(f"{cls.name}: unknown supertype {sup!r}")
            for ref in cls.own_references.values():
                if ref.target not in self._classes:
                    raise MetamodelError(
                        f"{cls.name}.{ref.name}: unknown target {ref.target!r}"
                    )
        for cls in self._classes.values():
            self._check_acyclic(cls, set())

    def _check_acyclic(self, cls: MetaClass, path: set) -> None:
        if cls.name in path:
            raise MetamodelError(f"inheritance cycle through {cls.name!r}")
        path = path | {cls.name}
        for sup in cls.supertypes():
            self._check_acyclic(sup, path)

    def __repr__(self) -> str:
        return f"<MetaModel {self.name} ({len(self._classes)} classes)>"


def iter_feature_names(cls: MetaClass) -> Iterable[str]:
    """All feature (attribute + reference) names of a metaclass."""
    yield from cls.all_attributes()
    yield from cls.all_references()
