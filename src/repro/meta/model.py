"""Model instances over a metamodel: typed objects in a containment tree."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ModelError
from repro.meta.metamodel import AttributeKind, MetaClass, MetaModel
from repro.util.ids import IdGenerator


class ModelObject:
    """An instance of a metaclass.

    Attribute and reference access is checked against the metaclass, so a
    model can never silently drift away from its metamodel — the property the
    abstraction engine depends on when it navigates unknown models.
    """

    def __init__(self, metaclass: MetaClass, obj_id: str) -> None:
        if metaclass.abstract:
            raise ModelError(f"cannot instantiate abstract metaclass {metaclass.name}")
        self.metaclass = metaclass
        self.id = obj_id
        self.container: Optional[ModelObject] = None
        self.containing_feature: Optional[str] = None
        self._attrs: Dict[str, Any] = {}
        self._refs: Dict[str, List[ModelObject]] = {}
        for name, attr in metaclass.all_attributes().items():
            if attr.default is not None:
                self._attrs[name] = attr.default

    # -- attributes --------------------------------------------------------

    def get(self, name: str) -> Any:
        """Read an attribute (falls back to the declared default / None)."""
        attrs = self.metaclass.all_attributes()
        if name not in attrs:
            raise ModelError(f"{self.metaclass.name} has no attribute {name!r}")
        return self._attrs.get(name, attrs[name].default)

    def set(self, name: str, value: Any) -> "ModelObject":
        """Write an attribute with type checking; returns self for chaining."""
        attrs = self.metaclass.all_attributes()
        if name not in attrs:
            raise ModelError(f"{self.metaclass.name} has no attribute {name!r}")
        attr = attrs[name]
        if not attr.accepts(value):
            raise ModelError(
                f"{self.metaclass.name}.{name}: {value!r} is not a valid "
                f"{attr.kind.value}"
                + (f" (allowed: {attr.enum_values})" if attr.kind is AttributeKind.ENUM else "")
            )
        self._attrs[name] = value
        return self

    # -- references ----------------------------------------------------

    def _ref_spec(self, name: str):
        refs = self.metaclass.all_references()
        if name not in refs:
            raise ModelError(f"{self.metaclass.name} has no reference {name!r}")
        return refs[name]

    def add_ref(self, name: str, target: "ModelObject") -> "ModelObject":
        """Append *target* to reference *name* (single refs hold at most one)."""
        spec = self._ref_spec(name)
        if not target.metaclass.is_subtype_of(spec.target):
            raise ModelError(
                f"{self.metaclass.name}.{name} expects {spec.target}, "
                f"got {target.metaclass.name}"
            )
        slot = self._refs.setdefault(name, [])
        if not spec.many and slot:
            raise ModelError(f"{self.metaclass.name}.{name} is single-valued")
        if spec.containment:
            if target.container is not None:
                raise ModelError(f"{target.id} is already contained by {target.container.id}")
            target.container = self
            target.containing_feature = name
        slot.append(target)
        return self

    def set_ref(self, name: str, target: "ModelObject") -> "ModelObject":
        """Replace the value of a single-valued reference."""
        spec = self._ref_spec(name)
        if spec.many:
            raise ModelError(f"{self.metaclass.name}.{name} is many-valued; use add_ref")
        existing = self._refs.get(name, [])
        if existing and spec.containment:
            existing[0].container = None
            existing[0].containing_feature = None
        self._refs[name] = []
        return self.add_ref(name, target)

    def ref(self, name: str) -> Optional["ModelObject"]:
        """Read a single-valued reference (None if unset)."""
        spec = self._ref_spec(name)
        if spec.many:
            raise ModelError(f"{self.metaclass.name}.{name} is many-valued; use refs()")
        slot = self._refs.get(name, [])
        return slot[0] if slot else None

    def refs(self, name: str) -> List["ModelObject"]:
        """Read a many-valued reference as a list copy."""
        self._ref_spec(name)
        return list(self._refs.get(name, []))

    def remove_ref(self, name: str, target: "ModelObject") -> None:
        """Remove *target* from reference *name*."""
        spec = self._ref_spec(name)
        slot = self._refs.get(name, [])
        if target not in slot:
            raise ModelError(f"{target.id} not in {self.metaclass.name}.{name}")
        slot.remove(target)
        if spec.containment:
            target.container = None
            target.containing_feature = None

    # -- navigation ------------------------------------------------------

    def children(self) -> List["ModelObject"]:
        """Directly contained objects, in feature-then-insertion order."""
        result: List[ModelObject] = []
        for name, spec in self.metaclass.all_references().items():
            if spec.containment:
                result.extend(self._refs.get(name, []))
        return result

    def iter_tree(self) -> Iterator["ModelObject"]:
        """This object and all (transitively) contained objects, pre-order."""
        yield self
        for child in self.children():
            yield from child.iter_tree()

    @property
    def label(self) -> str:
        """Best human-readable name: the ``name`` attribute if present, else id."""
        attrs = self.metaclass.all_attributes()
        if "name" in attrs:
            value = self.get("name")
            if value:
                return str(value)
        return self.id

    def __repr__(self) -> str:
        return f"<{self.metaclass.name} {self.label} ({self.id})>"


class Model:
    """A model: a set of root objects conforming to one metamodel."""

    def __init__(self, metamodel: MetaModel, name: str = "model") -> None:
        self.metamodel = metamodel
        self.name = name
        self.roots: List[ModelObject] = []
        self._ids = IdGenerator()
        self._by_id: Dict[str, ModelObject] = {}

    def create(self, metaclass_name: str, **attrs: Any) -> ModelObject:
        """Instantiate a metaclass, register the object, set initial attributes."""
        cls = self.metamodel.metaclass(metaclass_name)
        obj = ModelObject(cls, self._ids.next(metaclass_name.lower()))
        self._by_id[obj.id] = obj
        for key, value in attrs.items():
            obj.set(key, value)
        return obj

    def add_root(self, obj: ModelObject) -> ModelObject:
        """Mark *obj* as a root of the model tree."""
        if obj.container is not None:
            raise ModelError(f"{obj.id} is contained by {obj.container.id}; not a root")
        self.roots.append(obj)
        return obj

    def by_id(self, obj_id: str) -> ModelObject:
        """Look up any registered object by id."""
        try:
            return self._by_id[obj_id]
        except KeyError:
            raise ModelError(f"no object with id {obj_id!r} in model {self.name}") from None

    def has_id(self, obj_id: str) -> bool:
        """Whether an object with *obj_id* is registered."""
        return obj_id in self._by_id

    def all_objects(self) -> List[ModelObject]:
        """Every object reachable from the roots, pre-order."""
        result: List[ModelObject] = []
        for root in self.roots:
            result.extend(root.iter_tree())
        return result

    def objects_of(self, metaclass_name: str) -> List[ModelObject]:
        """All reachable objects whose class is (a subtype of) *metaclass_name*."""
        return [
            obj for obj in self.all_objects()
            if obj.metaclass.is_subtype_of(metaclass_name)
        ]

    def __len__(self) -> int:
        return len(self.all_objects())

    def __repr__(self) -> str:
        return f"<Model {self.name!r} of {self.metamodel.name} ({len(self)} objects)>"
