"""Step-wise execution at the model level.

A code debugger steps instructions; GMDF steps **model events**: "run until
the next N commands have animated the model, then pause the target again".
"""

from __future__ import annotations

from repro.engine.engine import DebuggerEngine, EngineState
from repro.errors import DebuggerError


class StepController:
    """Drives pause/resume/step of a connected engine."""

    def __init__(self, engine: DebuggerEngine) -> None:
        self.engine = engine
        self.steps_requested = 0

    def pause(self) -> None:
        """Pause the debugged application at the model level."""
        self.engine.pause()

    def resume(self) -> None:
        """Free-run until a breakpoint (or forever)."""
        self.engine.step_budget = None
        self.engine.resume()

    def step(self, count: int = 1) -> None:
        """Execute until *count* more model events, then pause again.

        The engine must currently be PAUSED (step from a running engine is
        a no-op conceptually — it is already consuming events).
        """
        if count <= 0:
            raise DebuggerError(f"step count must be positive, got {count}")
        if self.engine.state is not EngineState.PAUSED:
            raise DebuggerError(
                f"step requires PAUSED, engine is {self.engine.state.name}"
            )
        self.steps_requested += count
        self.engine.step_budget = count
        self.engine.resume()

    @property
    def paused(self) -> bool:
        """Whether the engine is currently paused."""
        return self.engine.state is EngineState.PAUSED
