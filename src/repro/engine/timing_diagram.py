"""Timing diagrams from execution traces.

One lane per source path: state lanes show which state was active when
(intervals between STATE_ENTER events of a group); signal lanes show value
changes. Rendered as ASCII (terminal) and SVG (artifact files).

Any trace-shaped source works: a live
:class:`~repro.engine.trace.ExecutionTrace` or a
:class:`~repro.tracedb.store.StoredTrace` over a spill store
(:meth:`TimingDiagram.from_store`) — lanes are built in one streaming
pass, so plotting a multi-gigabyte stored history never materializes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.comm.protocol import CommandKind
from repro.engine.trace import ExecutionTrace
from repro.errors import DebuggerError
from repro.util.textgrid import TextGrid
from repro.util.timeunits import format_us


class Lane:
    """One horizontal lane: labeled intervals over time."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: (t_start, t_end, label); t_end None = open interval
        self.intervals: List[Tuple[int, Optional[int], str]] = []

    def begin(self, t: int, label: str) -> None:
        """Close the open interval (if any) and start a new one."""
        if self.intervals and self.intervals[-1][1] is None:
            start, _, old_label = self.intervals[-1]
            self.intervals[-1] = (start, t, old_label)
        self.intervals.append((t, None, label))

    def close(self, t: int) -> None:
        """Close any open interval at *t*."""
        if self.intervals and self.intervals[-1][1] is None:
            start, _, label = self.intervals[-1]
            self.intervals[-1] = (start, t, label)


class TimingDiagram:
    """Builds lanes from a trace and renders them."""

    def __init__(self, trace: ExecutionTrace) -> None:
        if len(trace) == 0:
            raise DebuggerError("cannot build a timing diagram from an empty trace")
        self.trace = trace
        self.t0 = trace[0].command.t_host
        self.t1 = trace[len(trace) - 1].command.t_host
        self.lanes: Dict[str, Lane] = {}
        self._build()

    @classmethod
    def from_store(cls, store) -> "TimingDiagram":
        """Build a diagram straight from a :class:`~repro.tracedb.store.
        TraceStore` (full on-disk history, flat memory)."""
        from repro.tracedb.store import StoredTrace
        return cls(StoredTrace(store))

    def _lane(self, name: str) -> Lane:
        if name not in self.lanes:
            self.lanes[name] = Lane(name)
        return self.lanes[name]

    def _build(self) -> None:
        for event in self.trace:
            command = event.command
            if command.kind is CommandKind.STATE_ENTER:
                # Lane per machine: "state:<actor>.<block>.<STATE>" -> group lane.
                group, _, state = command.path.rpartition(".")
                self._lane(group).begin(command.t_host, state)
            elif command.kind is CommandKind.SIG_UPDATE:
                self._lane(command.path).begin(command.t_host,
                                               str(command.value))
        for lane in self.lanes.values():
            lane.close(self.t1)

    # -- rendering --------------------------------------------------------

    def render_ascii(self, width: int = 72) -> str:
        """ASCII timing diagram: one row per lane plus a time axis."""
        span = max(1, self.t1 - self.t0)
        label_w = min(30, max(len(name) for name in self.lanes) + 1)
        grid = TextGrid(label_w + width + 2, 2 * len(self.lanes) + 2)

        def col(t: int) -> int:
            return label_w + round((t - self.t0) / span * (width - 1))

        for row, name in enumerate(sorted(self.lanes)):
            lane = self.lanes[name]
            y = 2 * row
            grid.text(0, y, name[-label_w + 1:])
            for start, end, label in lane.intervals:
                c0 = col(start)
                c1 = col(end if end is not None else self.t1)
                grid.put(c0, y, "|")
                for x in range(c0 + 1, c1):
                    grid.put(x, y, "_")
                clipped = label[: max(0, c1 - c0 - 1)]
                grid.text(c0 + 1, y + 1, clipped)
        axis_y = 2 * len(self.lanes)
        grid.hline(label_w, label_w + width - 1, axis_y, "-")
        grid.text(label_w, axis_y + 1, format_us(0))
        end_label = format_us(span)
        grid.text(label_w + width - len(end_label), axis_y + 1, end_label)
        return grid.render()

    def render_svg(self, width_px: int = 800, lane_height: int = 28) -> str:
        """SVG timing diagram."""
        span = max(1, self.t1 - self.t0)
        label_px = 180
        chart_px = width_px - label_px - 20
        lines: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" '
            f'height="{lane_height * len(self.lanes) + 40}">',
        ]

        def x_of(t: int) -> float:
            return label_px + (t - self.t0) / span * chart_px

        palette = ("#7eb6ff", "#ffd54d", "#9ae6b4", "#f6a5c0", "#c3a6ff")
        for row, name in enumerate(sorted(self.lanes)):
            lane = self.lanes[name]
            y = 10 + row * lane_height
            lines.append(
                f'<text x="4" y="{y + 14}" font-size="11" '
                f'font-family="monospace">{name[-28:]}</text>'
            )
            for i, (start, end, label) in enumerate(lane.intervals):
                x0 = x_of(start)
                x1 = x_of(end if end is not None else self.t1)
                color = palette[i % len(palette)]
                lines.append(
                    f'<rect x="{x0:.1f}" y="{y}" width="{max(1.0, x1 - x0):.1f}" '
                    f'height="{lane_height - 8}" fill="{color}" '
                    f'stroke="#555"/>'
                )
                lines.append(
                    f'<text x="{x0 + 3:.1f}" y="{y + 13}" font-size="10" '
                    f'font-family="monospace">{label[:12]}</text>'
                )
        axis_y = 10 + len(self.lanes) * lane_height + 12
        lines.append(
            f'<text x="{label_px}" y="{axis_y}" font-size="10" '
            f'font-family="monospace">0</text>'
        )
        lines.append(
            f'<text x="{label_px + chart_px - 40}" y="{axis_y}" '
            f'font-size="10" font-family="monospace">{format_us(span)}</text>'
        )
        lines.append("</svg>")
        return "\n".join(lines)
