"""Model-level state inspection.

The paper's abstract: developers can "graphically test their design model
and check the running status of the system". Beyond the animation, that
means asking questions *in model vocabulary* — "which state is the lamp
machine in?", "what's the speed signal right now?" — and having the
debugger translate to symbol reads on the right node's board.

Reads go through the board's debug backdoor (like a JTAG scan), so
inspection never perturbs the target.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.comdes.blocks import StateMachineFB
from repro.comdes.system import System
from repro.errors import DebuggerError
from repro.rtos.kernel import DtmKernel
from repro.target.firmware import FirmwareImage


class ModelInspector:
    """Answers model-level status queries against a running kernel."""

    def __init__(self, system: System, firmware: FirmwareImage,
                 kernel: DtmKernel) -> None:
        self.system = system
        self.firmware = firmware
        self.kernel = kernel

    # -- signals -----------------------------------------------------------

    def signal_value(self, signal_name: str,
                     node: Optional[str] = None) -> int:
        """Current value of a signal, as visible on *node* (default: the
        producer's node, i.e. the freshest view)."""
        if signal_name not in self.system.signals:
            raise DebuggerError(f"unknown signal {signal_name!r}")
        if node is None:
            producers = self.system.producers_of(signal_name)
            node = producers[0].node if producers else self.system.nodes()[0]
        return self.kernel.bus.read(node, signal_name)

    def signals(self) -> Dict[str, int]:
        """All signals with their freshest values."""
        return {name: self.signal_value(name) for name in self.system.signals}

    # -- state machines ----------------------------------------------------

    def _machine_block(self, actor_name: str, block_name: str):
        actor = self.system.actor(actor_name)
        block = actor.network.block(block_name)
        if not isinstance(block, StateMachineFB):
            raise DebuggerError(
                f"{actor_name}.{block_name} is a {block.kind!r} block, "
                "not a state machine"
            )
        return actor, block

    def current_state(self, actor_name: str, block_name: str) -> str:
        """The state a machine is in *right now*, read from target RAM."""
        actor, block = self._machine_block(actor_name, block_name)
        board = self.kernel.board_of(actor.node)
        index = board.symbol_value(f"{actor_name}.{block_name}.$_state")
        states = block.machine.states
        if not (0 <= index < len(states)):
            raise DebuggerError(
                f"{actor_name}.{block_name}: state index {index} is out of "
                f"range — the target is corrupted"
            )
        return states[index]

    def machine_variables(self, actor_name: str,
                          block_name: str) -> Dict[str, int]:
        """Current values of a machine's variables."""
        actor, block = self._machine_block(actor_name, block_name)
        board = self.kernel.board_of(actor.node)
        return {
            var: board.symbol_value(f"{actor_name}.{block_name}.${var}")
            for var in block.machine.variables
        }

    def all_machines(self) -> Dict[str, str]:
        """``actor.block -> current state`` for every top-level machine."""
        status: Dict[str, str] = {}
        for actor in self.system.actors.values():
            for block in actor.network.blocks:
                if isinstance(block, StateMachineFB):
                    status[f"{actor.name}.{block.name}"] = (
                        self.current_state(actor.name, block.name))
        return status

    # -- summary ----------------------------------------------------------------

    def status_report(self) -> str:
        """A human-readable "running status" panel."""
        lines: List[str] = [f"=== {self.system.name} @ "
                            f"t={self.kernel.sim.now / 1000:.1f}ms ==="]
        lines.append("state machines:")
        for name, state in sorted(self.all_machines().items()):
            lines.append(f"  {name:30s} {state}")
        lines.append("signals:")
        for name, value in sorted(self.signals().items()):
            lines.append(f"  {name:30s} {value}")
        misses = self.kernel.deadline_misses
        lines.append(f"jobs: {len(self.kernel.records)} completed, "
                     f"{self.kernel.jobs_skipped} skipped, "
                     f"{misses} deadline misses")
        return "\n".join(lines)
