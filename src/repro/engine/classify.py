"""Bug classification: design error or implementation error?

The paper leaves this open: "The differentiation of different types of bugs
in such a complex situation is a subject of future work, and this could
possibly be another potential advantage of the model debugger technique."

This module implements that future work with a **differential oracle**,
something only a *model* debugger can do, because it owns both artifacts:

* replay the scenario on the **reference model interpreter** (the model's
  ground-truth semantics), and
* replay it on the **generated firmware** (a fresh board, no debugger);

then compare the signal histories. If they diverge — or the firmware traps —
the code does not implement the model: an **implementation error** (bad
transformation / manual coding). If they agree bit-for-bit, the code
faithfully implements the model, so an observed requirement violation must
originate in the model itself: a **design error**.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional

from repro.codegen.pipeline import run_firmware_lockstep
from repro.comdes.system import System
from repro.errors import TargetFault
from repro.target.board import Board
from repro.target.firmware import FirmwareImage


class BugClass(enum.Enum):
    """Verdicts of the differential oracle."""

    DESIGN = "design"                  # model and code agree; model is wrong
    IMPLEMENTATION = "implementation"  # code diverges from the model
    CONSISTENT = "consistent"          # no divergence, no violation reported


class Divergence(NamedTuple):
    """First point where firmware and model semantics disagree."""

    round_index: int
    signal: str
    model_value: int
    target_value: int


class Classification(NamedTuple):
    """A verdict plus supporting evidence."""

    verdict: BugClass
    divergence: Optional[Divergence]
    detail: str


class BugClassifier:
    """Differential model-vs-code oracle for one system/firmware pair."""

    def __init__(self, system: System, firmware: FirmwareImage,
                 rounds: int = 200) -> None:
        if rounds <= 0:
            raise ValueError(f"rounds must be positive, got {rounds}")
        self.system = system
        self.firmware = firmware
        self.rounds = rounds

    def _first_divergence(self) -> Optional[Divergence]:
        reference = self.system.lockstep_run(self.rounds)
        target = run_firmware_lockstep(self.system, self.firmware,
                                       self.rounds, board=Board())
        for index, (ref_row, tgt_row) in enumerate(zip(reference, target)):
            if ref_row == tgt_row:
                continue
            for signal in sorted(ref_row):
                if ref_row[signal] != tgt_row[signal]:
                    return Divergence(index, signal, ref_row[signal],
                                      tgt_row[signal])
        return None

    def classify(self, violation_observed: bool = True) -> Classification:
        """Run the oracle.

        ``violation_observed`` records whether the debugging session actually
        saw a requirement violation (a clean differential run without a
        violation is simply CONSISTENT).
        """
        try:
            divergence = self._first_divergence()
        except TargetFault as fault:
            return Classification(
                BugClass.IMPLEMENTATION, None,
                f"firmware trapped during differential run: {fault}",
            )
        if divergence is not None:
            return Classification(
                BugClass.IMPLEMENTATION, divergence,
                f"code diverges from model at round "
                f"{divergence.round_index}: {divergence.signal} is "
                f"{divergence.target_value} on the target but "
                f"{divergence.model_value} per the model",
            )
        if violation_observed:
            return Classification(
                BugClass.DESIGN, None,
                "code implements the model exactly; the violated requirement "
                "is a property of the model itself",
            )
        return Classification(
            BugClass.CONSISTENT, None,
            "no divergence and no violation observed",
        )


def classify_bug(system: System, firmware: FirmwareImage,
                 violation_observed: bool = True,
                 rounds: int = 200) -> Classification:
    """Convenience wrapper around :class:`BugClassifier`."""
    return BugClassifier(system, firmware, rounds).classify(violation_observed)
