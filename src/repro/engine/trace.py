"""Execution traces.

"GDM animation will trace model-level behavior and always make a record of
the execution trace. The user can then monitor the application's behavior
via a replay function associated with a timing diagram." (paper §III)

A trace is an append-only sequence of (command, reactions) events with both
target-side and host-side timestamps. It is serializable, and replay is a
pure function of it.

By default a trace grows without bound (short sessions, full replay). Long
campaigns pass ``capacity=N``: the trace becomes a ring buffer keeping the
newest N events, counting what it evicted in ``dropped`` — memory stays
flat while sequence numbers keep telling the truth about how much history
existed.

Pass ``spill=TraceStore(...)`` alongside a capacity and eviction stops
destroying history: every event is persisted to the store the moment it
is recorded, the ring becomes a hot in-memory cache of the newest N
events over the store, and ``dropped`` stays 0 — evicting now only
discards the cached copy, the authoritative copy is already on disk.
:meth:`full_history` then hands back a trace-shaped view of the store
for full replay at flat memory. (Spilling *without* a capacity is
allowed but keeps the whole history in memory too — the higher layers
that promise flat memory, ``DebugSession`` and ``DtmKernel``, default a
bounded cache when a spill store is attached.)
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.comm.protocol import Command, CommandKind
from repro.gdm.reactions import ReactionRecord


class TraceEvent:
    """One traced debugger event."""

    __slots__ = ("seq", "command", "reactions", "engine_state")

    def __init__(self, seq: int, command: Command,
                 reactions: Sequence[ReactionRecord],
                 engine_state: str) -> None:
        self.seq = seq
        self.command = command
        self.reactions = list(reactions)
        self.engine_state = engine_state

    def to_dict(self) -> dict:
        """Serializable form."""
        return {
            "seq": self.seq,
            "kind": self.command.kind.name,
            "path": self.command.path,
            "value": self.command.value,
            "t_target": self.command.t_target,
            "t_host": self.command.t_host,
            "engine_state": self.engine_state,
            "reactions": [r.to_dict() for r in self.reactions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        command = Command(
            CommandKind[data["kind"]], data["path"], data["value"],
            t_target=data["t_target"], t_host=data["t_host"],
        )
        reactions = [ReactionRecord.from_dict(r) for r in data["reactions"]]
        return cls(data["seq"], command, reactions, data["engine_state"])

    def __repr__(self) -> str:
        return (f"<TraceEvent #{self.seq} {self.command.kind.name} "
                f"{self.command.path}={self.command.value} "
                f"@{self.command.t_host}us>")


class ExecutionTrace:
    """Append-only event log with query helpers.

    ``capacity=None`` (default) keeps everything; ``capacity=N`` keeps the
    newest N events in a ring buffer and counts evictions in ``dropped``.
    The ring policy (persist-first, overwrite-at-head, seq-line
    continuation) lives in :class:`~repro.tracedb.spillring.SpillRing`,
    shared structurally with :class:`~repro.rtos.kernel.DtmKernel`'s job
    ring — so the two recorders cannot drift apart by convention.
    Indexed access stays O(1) — sequential replay over a bounded window
    is linear, not quadratic.
    """

    def __init__(self, capacity: Optional[int] = None,
                 spill: Optional[object] = None) -> None:
        # deferred, like DtmKernel's: tracedb's store module defers its
        # TraceEvent import from *this* module, so a module-level import
        # here would couple the two packages into a latent import cycle
        from repro.tracedb.spillring import SpillRing
        self._ring = SpillRing(capacity, spill)

    @property
    def capacity(self) -> Optional[int]:
        """Ring capacity (None: unbounded)."""
        return self._ring.capacity

    @property
    def spill(self) -> Optional[object]:
        """The TraceStore receiving every event (None: in-memory only).

        Read-only delegation to the ring — a second mutable copy here
        could silently diverge from the recording path.
        """
        return self._ring.spill

    @property
    def dropped(self) -> int:
        """Events evicted without a spill store (0 while spilling)."""
        return self._ring.dropped

    def record(self, command: Command, reactions: Sequence[ReactionRecord],
               engine_state: str) -> TraceEvent:
        """Append an event (overwriting the oldest when at capacity).

        With a spill store attached the event is persisted first, so the
        later ring eviction only drops the in-memory cached copy and
        ``dropped`` stays 0 — no history is lost.
        """
        event = TraceEvent(self._ring.next_seq, command, reactions,
                           engine_state)
        self._ring.append(event, encode=TraceEvent.to_dict)
        return event

    def full_history(self):
        """The complete trace: this object, or a store-backed view.

        Without a spill store the trace *is* its own full history (and a
        truncated ring honestly is not — replay guards on ``dropped``).
        With one, returns a :class:`~repro.tracedb.store.StoredTrace`
        reading every event ever recorded, at flat memory.
        """
        if self.spill is None:
            return self
        self.spill.flush()
        from repro.tracedb.store import StoredTrace
        return StoredTrace(self.spill)

    @property
    def first_seq(self) -> int:
        """Seq of the oldest surviving event — O(1).

        Empty traces report the *next* seq: 0 for a fresh trace, but
        nonzero for a trace resuming a populated spill store — so the
        replay truncation guard still fires instead of presenting a
        500-event store as an empty history.
        """
        ring = self._ring
        if not ring.items:
            return ring.next_seq
        return ring.items[ring.head].seq

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def __getitem__(self, index: int) -> TraceEvent:
        try:
            return self._ring.at(index)
        except IndexError:
            raise IndexError(f"trace index {index} out of range") from None

    def events(self, kind: Optional[CommandKind] = None,
               path_prefix: str = "") -> List[TraceEvent]:
        """Events filtered by kind and/or path prefix."""
        selected: List[TraceEvent] = list(self)
        if kind is not None:
            selected = [e for e in selected if e.command.kind is kind]
        if path_prefix:
            selected = [e for e in selected
                        if e.command.path.startswith(path_prefix)]
        return selected

    def duration_us(self) -> int:
        """Host-time span covered by the trace."""
        if not len(self._ring):
            return 0
        return (self[len(self._ring) - 1].command.t_host
                - self[0].command.t_host)

    def counts_by_path(self) -> Dict[str, int]:
        """Event count per source path."""
        counts: Dict[str, int] = {}
        for event in self._ring.items:  # order-independent: raw storage fine
            counts[event.command.path] = counts.get(event.command.path, 0) + 1
        return counts

    def mean_latency_us(self) -> Optional[float]:
        """Average host-arrival latency of traced commands."""
        events = self._ring.items
        if not events:
            return None
        return sum(e.command.latency_us for e in events) / len(events)

    # -- serialization --------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        """Serialize the whole trace (oldest surviving event first)."""
        return [event.to_dict() for event in self]

    @classmethod
    def from_dicts(cls, data: Sequence[dict]) -> "ExecutionTrace":
        """Restore a serialized trace."""
        trace = cls()
        for record in data:
            trace._ring.items.append(TraceEvent.from_dict(record))
        if trace._ring.items:
            trace._ring.resume_seq(trace._ring.items[-1].seq + 1)
        return trace

    def save(self, path: str) -> None:
        """Write the trace to a JSON file (the prototype's trace record)."""
        import json
        with open(path, "w") as handle:
            json.dump(self.to_dicts(), handle)

    @classmethod
    def load(cls, path: str) -> "ExecutionTrace":
        """Read a trace previously written by :meth:`save`."""
        import json
        with open(path) as handle:
            return cls.from_dicts(json.load(handle))
