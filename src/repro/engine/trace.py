"""Execution traces.

"GDM animation will trace model-level behavior and always make a record of
the execution trace. The user can then monitor the application's behavior
via a replay function associated with a timing diagram." (paper §III)

A trace is an append-only sequence of (command, reactions) events with both
target-side and host-side timestamps. It is serializable, and replay is a
pure function of it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.comm.protocol import Command, CommandKind
from repro.gdm.reactions import ReactionRecord


class TraceEvent:
    """One traced debugger event."""

    __slots__ = ("seq", "command", "reactions", "engine_state")

    def __init__(self, seq: int, command: Command,
                 reactions: Sequence[ReactionRecord],
                 engine_state: str) -> None:
        self.seq = seq
        self.command = command
        self.reactions = list(reactions)
        self.engine_state = engine_state

    def to_dict(self) -> dict:
        """Serializable form."""
        return {
            "seq": self.seq,
            "kind": self.command.kind.name,
            "path": self.command.path,
            "value": self.command.value,
            "t_target": self.command.t_target,
            "t_host": self.command.t_host,
            "engine_state": self.engine_state,
            "reactions": [r.to_dict() for r in self.reactions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        command = Command(
            CommandKind[data["kind"]], data["path"], data["value"],
            t_target=data["t_target"], t_host=data["t_host"],
        )
        reactions = [ReactionRecord.from_dict(r) for r in data["reactions"]]
        return cls(data["seq"], command, reactions, data["engine_state"])

    def __repr__(self) -> str:
        return (f"<TraceEvent #{self.seq} {self.command.kind.name} "
                f"{self.command.path}={self.command.value} "
                f"@{self.command.t_host}us>")


class ExecutionTrace:
    """Append-only event log with query helpers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, command: Command, reactions: Sequence[ReactionRecord],
               engine_state: str) -> TraceEvent:
        """Append an event."""
        event = TraceEvent(len(self._events), command, reactions, engine_state)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    def events(self, kind: Optional[CommandKind] = None,
               path_prefix: str = "") -> List[TraceEvent]:
        """Events filtered by kind and/or path prefix."""
        selected = self._events
        if kind is not None:
            selected = [e for e in selected if e.command.kind is kind]
        if path_prefix:
            selected = [e for e in selected
                        if e.command.path.startswith(path_prefix)]
        return list(selected)

    def duration_us(self) -> int:
        """Host-time span covered by the trace."""
        if not self._events:
            return 0
        return (self._events[-1].command.t_host
                - self._events[0].command.t_host)

    def counts_by_path(self) -> Dict[str, int]:
        """Event count per source path."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.command.path] = counts.get(event.command.path, 0) + 1
        return counts

    def mean_latency_us(self) -> Optional[float]:
        """Average host-arrival latency of traced commands."""
        if not self._events:
            return None
        return sum(e.command.latency_us for e in self._events) / len(self._events)

    # -- serialization --------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        """Serialize the whole trace."""
        return [event.to_dict() for event in self._events]

    @classmethod
    def from_dicts(cls, data: Sequence[dict]) -> "ExecutionTrace":
        """Restore a serialized trace."""
        trace = cls()
        for record in data:
            trace._events.append(TraceEvent.from_dict(record))
        return trace

    def save(self, path: str) -> None:
        """Write the trace to a JSON file (the prototype's trace record)."""
        import json
        with open(path, "w") as handle:
            json.dump(self.to_dicts(), handle)

    @classmethod
    def load(cls, path: str) -> "ExecutionTrace":
        """Read a trace previously written by :meth:`save`."""
        import json
        with open(path) as handle:
            return cls.from_dicts(json.load(handle))
