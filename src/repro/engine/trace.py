"""Execution traces.

"GDM animation will trace model-level behavior and always make a record of
the execution trace. The user can then monitor the application's behavior
via a replay function associated with a timing diagram." (paper §III)

A trace is an append-only sequence of (command, reactions) events with both
target-side and host-side timestamps. It is serializable, and replay is a
pure function of it.

By default a trace grows without bound (short sessions, full replay). Long
campaigns pass ``capacity=N``: the trace becomes a ring buffer keeping the
newest N events, counting what it evicted in ``dropped`` — memory stays
flat while sequence numbers keep telling the truth about how much history
existed.

Pass ``spill=TraceStore(...)`` alongside a capacity and eviction stops
destroying history: every event is persisted to the store the moment it
is recorded, the ring becomes a hot in-memory cache of the newest N
events over the store, and ``dropped`` stays 0 — evicting now only
discards the cached copy, the authoritative copy is already on disk.
:meth:`full_history` then hands back a trace-shaped view of the store
for full replay at flat memory. (Spilling *without* a capacity is
allowed but keeps the whole history in memory too — the higher layers
that promise flat memory, ``DebugSession`` and ``DtmKernel``, default a
bounded cache when a spill store is attached.)
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.comm.protocol import Command, CommandKind
from repro.gdm.reactions import ReactionRecord


class TraceEvent:
    """One traced debugger event."""

    __slots__ = ("seq", "command", "reactions", "engine_state")

    def __init__(self, seq: int, command: Command,
                 reactions: Sequence[ReactionRecord],
                 engine_state: str) -> None:
        self.seq = seq
        self.command = command
        self.reactions = list(reactions)
        self.engine_state = engine_state

    def to_dict(self) -> dict:
        """Serializable form."""
        return {
            "seq": self.seq,
            "kind": self.command.kind.name,
            "path": self.command.path,
            "value": self.command.value,
            "t_target": self.command.t_target,
            "t_host": self.command.t_host,
            "engine_state": self.engine_state,
            "reactions": [r.to_dict() for r in self.reactions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        command = Command(
            CommandKind[data["kind"]], data["path"], data["value"],
            t_target=data["t_target"], t_host=data["t_host"],
        )
        reactions = [ReactionRecord.from_dict(r) for r in data["reactions"]]
        return cls(data["seq"], command, reactions, data["engine_state"])

    def __repr__(self) -> str:
        return (f"<TraceEvent #{self.seq} {self.command.kind.name} "
                f"{self.command.path}={self.command.value} "
                f"@{self.command.t_host}us>")


class ExecutionTrace:
    """Append-only event log with query helpers.

    ``capacity=None`` (default) keeps everything; ``capacity=N`` keeps the
    newest N events in a ring buffer and counts evictions in ``dropped``.
    The ring is a plain list plus a head index, so indexed access stays
    O(1) — sequential replay over a bounded window is linear, not
    quadratic.
    """

    def __init__(self, capacity: Optional[int] = None,
                 spill: Optional[object] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: optional TraceStore receiving every event (ring becomes a cache)
        self.spill = spill
        self._events: List[TraceEvent] = []
        self._head = 0  # index of the oldest event once the ring wrapped
        self.dropped = 0
        # A trace over a resumed (reattached) store continues the store's
        # seq line — its appends must land at store.next_seq, not 0.
        self._seq = getattr(spill, "next_seq", 0) if spill is not None else 0

    def record(self, command: Command, reactions: Sequence[ReactionRecord],
               engine_state: str) -> TraceEvent:
        """Append an event (overwriting the oldest when at capacity).

        With a spill store attached the event is persisted first, so the
        later ring eviction only drops the in-memory cached copy and
        ``dropped`` stays 0 — no history is lost.
        """
        event = TraceEvent(self._seq, command, reactions, engine_state)
        self._seq += 1
        if self.spill is not None:
            self.spill.append(event.to_dict())
        if self.capacity is not None and len(self._events) == self.capacity:
            self._events[self._head] = event
            self._head = (self._head + 1) % self.capacity
            if self.spill is None:
                self.dropped += 1
        else:
            self._events.append(event)
        return event

    def full_history(self):
        """The complete trace: this object, or a store-backed view.

        Without a spill store the trace *is* its own full history (and a
        truncated ring honestly is not — replay guards on ``dropped``).
        With one, returns a :class:`~repro.tracedb.store.StoredTrace`
        reading every event ever recorded, at flat memory.
        """
        if self.spill is None:
            return self
        self.spill.flush()
        from repro.tracedb.store import StoredTrace
        return StoredTrace(self.spill)

    @property
    def first_seq(self) -> int:
        """Seq of the oldest surviving event — O(1).

        Empty traces report the *next* seq: 0 for a fresh trace, but
        nonzero for a trace resuming a populated spill store — so the
        replay truncation guard still fires instead of presenting a
        500-event store as an empty history.
        """
        if not self._events:
            return self._seq
        return self._events[self._head].seq

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        events = self._events
        if self._head == 0:
            return iter(events)
        return iter(events[self._head:] + events[:self._head])

    def __getitem__(self, index: int) -> TraceEvent:
        events = self._events
        if self._head == 0:
            return events[index]
        if index < 0:
            index += len(events)
        if not 0 <= index < len(events):
            raise IndexError(f"trace index {index} out of range")
        return events[(self._head + index) % len(events)]

    def events(self, kind: Optional[CommandKind] = None,
               path_prefix: str = "") -> List[TraceEvent]:
        """Events filtered by kind and/or path prefix."""
        selected: List[TraceEvent] = list(self)
        if kind is not None:
            selected = [e for e in selected if e.command.kind is kind]
        if path_prefix:
            selected = [e for e in selected
                        if e.command.path.startswith(path_prefix)]
        return selected

    def duration_us(self) -> int:
        """Host-time span covered by the trace."""
        if not self._events:
            return 0
        return (self[len(self._events) - 1].command.t_host
                - self[0].command.t_host)

    def counts_by_path(self) -> Dict[str, int]:
        """Event count per source path."""
        counts: Dict[str, int] = {}
        for event in self._events:  # order-independent: raw storage is fine
            counts[event.command.path] = counts.get(event.command.path, 0) + 1
        return counts

    def mean_latency_us(self) -> Optional[float]:
        """Average host-arrival latency of traced commands."""
        if not self._events:
            return None
        return sum(e.command.latency_us for e in self._events) / len(self._events)

    # -- serialization --------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        """Serialize the whole trace (oldest surviving event first)."""
        return [event.to_dict() for event in self]

    @classmethod
    def from_dicts(cls, data: Sequence[dict]) -> "ExecutionTrace":
        """Restore a serialized trace."""
        trace = cls()
        for record in data:
            trace._events.append(TraceEvent.from_dict(record))
        if trace._events:
            trace._seq = trace._events[-1].seq + 1
        return trace

    def save(self, path: str) -> None:
        """Write the trace to a JSON file (the prototype's trace record)."""
        import json
        with open(path, "w") as handle:
            json.dump(self.to_dicts(), handle)

    @classmethod
    def load(cls, path: str) -> "ExecutionTrace":
        """Read a trace previously written by :meth:`save`."""
        import json
        with open(path) as handle:
            return cls.from_dicts(json.load(handle))
