"""The event-driven debugger engine (the FSM of paper Fig 3).

States: DISCONNECTED -> WAITING <-> REACTING, with PAUSED entered on a
breakpoint hit and left by resume/step, and REPLAYING while a replay player
owns the model. Observers (monitors, animation capture, UI) subscribe to
the engine's event bus topics: ``command``, ``reaction``, ``breakpoint``,
``engine_state``.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.comm.channel import DebugChannel
from repro.comm.protocol import Command
from repro.engine.breakpoints import BreakpointManager
from repro.engine.trace import ExecutionTrace
from repro.errors import DebuggerError
from repro.gdm.model import GdmModel
from repro.gdm.reactions import ReactionRecord, apply_reaction, decay_pulses
from repro.render.animation import FrameSequence
from repro.util.events import EventBus


class EngineState(enum.Enum):
    """Engine FSM states."""

    DISCONNECTED = "DISCONNECTED"
    WAITING = "WAITING"
    REACTING = "REACTING"
    PAUSED = "PAUSED"
    REPLAYING = "REPLAYING"


class DebuggerEngine:
    """Animates a debug model from channel commands."""

    def __init__(self, gdm: GdmModel,
                 channel: Optional[DebugChannel] = None,
                 capture_frames: bool = True,
                 max_frames: Optional[int] = 10_000,
                 trace: Optional[ExecutionTrace] = None) -> None:
        """``trace`` substitutes a pre-configured trace — typically a
        spilling ring, ``ExecutionTrace(capacity=N, spill=TraceStore(...))``
        — for the default unbounded one. When the spill store asks for
        checkpoints (``checkpoint_every``), the engine captures the
        model's dynamic state at those seqs while recording, so seeks
        over the stored history are cheap from the moment the run ends.
        """
        self.gdm = gdm
        self.channel: Optional[DebugChannel] = None
        self.state = EngineState.DISCONNECTED
        self.bus = EventBus()
        self.trace = trace if trace is not None else ExecutionTrace()
        self.breakpoints = BreakpointManager()
        self.frames = FrameSequence(max_frames=max_frames) if capture_frames else None
        # Live checkpoints assert "this model state == replay of events
        # [0, seq]". That only holds if every stored event passed through
        # THIS engine's model — i.e. both the store and the trace were
        # empty when this engine took over. An engine over a resumed
        # store, or handed an already-populated trace, never saw the
        # earlier events; its snapshots would lie to seek, so those
        # histories checkpoint offline instead.
        spill = getattr(self.trace, "spill", None)
        self._live_checkpoints = (
            spill is not None
            and getattr(spill, "next_seq", 0) == 0
            and len(self.trace) == 0)
        self.commands_processed = 0
        self.commands_while_paused = 0
        #: used by StepController: halt again after N commands (None = free run)
        self.step_budget: Optional[int] = None
        if channel is not None:
            self.connect(channel)

    # -- lifecycle -----------------------------------------------------------

    def connect(self, channel: DebugChannel) -> None:
        """Attach a command channel and enter WAITING."""
        if self.channel is not None:
            raise DebuggerError("engine already connected to a channel")
        self.channel = channel
        channel.subscribe(self.on_command)
        self._set_state(EngineState.WAITING)

    def _set_state(self, state: EngineState) -> None:
        if state is not self.state:
            previous, self.state = self.state, state
            self.bus.publish("engine_state", previous=previous, current=state)

    # -- the reaction cycle (Fig 3) --------------------------------------------

    def on_command(self, command: Command) -> None:
        """Handle one command: react, trace, check breakpoints."""
        if self.state is EngineState.DISCONNECTED:
            raise DebuggerError("engine received a command while disconnected")
        if self.state is EngineState.REPLAYING:
            raise DebuggerError("engine received a live command during replay")
        if self.state is EngineState.PAUSED:
            # Stragglers already in flight when the target halted.
            self.commands_while_paused += 1
            return

        self._set_state(EngineState.REACTING)
        # Pulses are transient: they light up for exactly one animation step.
        decay_pulses(self.gdm)
        reactions: List[ReactionRecord] = []
        for binding in self.gdm.bindings_for(command):
            record = apply_reaction(self.gdm, binding, command)
            if record is not None:
                reactions.append(record)
                self.bus.publish("reaction", record=record, command=command)

        event = self.trace.record(command, reactions, self.state.name)
        self.commands_processed += 1
        self.bus.publish("command", command=command, event=event)

        # Live checkpointing: while spilling to a store that wants them,
        # persist the model state so post-run seeks start near their
        # target instead of replaying from zero.
        if self._live_checkpoints:
            spill = self.trace.spill
            if spill.wants_checkpoint(event.seq):
                spill.add_checkpoint(event.seq, command.t_host,
                                     self.gdm.dynamic_state())

        if self.frames is not None and reactions:
            self.frames.capture(command.t_host,
                                f"{command.kind.name} {command.path}",
                                self.gdm.styles_snapshot())

        hit = self.breakpoints.check(command)
        if hit is not None:
            self._pause_on_breakpoint(hit, command)
            return

        if self.step_budget is not None:
            self.step_budget -= 1
            if self.step_budget <= 0:
                self.step_budget = None
                self._halt_target()
                self._set_state(EngineState.PAUSED)
                self.bus.publish("step_complete", command=command)
                return

        self._set_state(EngineState.WAITING)

    def _pause_on_breakpoint(self, breakpoint, command: Command) -> None:
        self._halt_target()
        self._set_state(EngineState.PAUSED)
        self.bus.publish("breakpoint", breakpoint=breakpoint, command=command)

    def _halt_target(self) -> None:
        if self.channel is not None:
            self.channel.halt_target()

    # -- pause / resume -----------------------------------------------------------

    def pause(self) -> None:
        """Manually pause (halts the target)."""
        if self.state is EngineState.DISCONNECTED:
            raise DebuggerError("cannot pause a disconnected engine")
        self._halt_target()
        self._set_state(EngineState.PAUSED)

    def resume(self) -> None:
        """Leave PAUSED: resume the target and wait for commands."""
        if self.state is not EngineState.PAUSED:
            raise DebuggerError(f"resume from {self.state.name}, expected PAUSED")
        if self.channel is not None:
            self.channel.resume_target()
        self._set_state(EngineState.WAITING)

    # -- replay handshake ----------------------------------------------------

    def enter_replay(self) -> None:
        """Hand the model to a replay player."""
        if self.state not in (EngineState.WAITING, EngineState.PAUSED):
            raise DebuggerError(f"cannot replay from {self.state.name}")
        self._set_state(EngineState.REPLAYING)

    def leave_replay(self) -> None:
        """Take the model back after replay."""
        if self.state is not EngineState.REPLAYING:
            raise DebuggerError("engine is not replaying")
        self._set_state(EngineState.WAITING)

    def __repr__(self) -> str:
        return (f"<DebuggerEngine {self.state.name} "
                f"{self.commands_processed} commands, "
                f"{len(self.trace)} trace events>")
