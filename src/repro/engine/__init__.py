"""The runtime debugger engine.

"A runtime engine first takes a debug model as input and displays it
graphically. Next, the engine implemented as an event-driven state machine
waits for commands sent by the target embedded code. Once an event arrives,
it performs corresponding actions (e.g. an animation) and other graphical
model debugger functionalities." (paper §II)

This package adds the surrounding functionality the paper lists: model-level
breakpoints and step-wise execution, execution-trace recording, replay with
a timing diagram, and requirement monitors that turn "actions not consistent
with system requirements" into bug reports.
"""

from repro.engine.engine import DebuggerEngine, EngineState
from repro.engine.breakpoints import (
    BreakpointManager,
    CommandKindBreakpoint,
    SignalConditionBreakpoint,
    StateEntryBreakpoint,
    TransitionBreakpoint,
)
from repro.engine.stepping import StepController
from repro.engine.trace import ExecutionTrace, TraceEvent
from repro.engine.replay import ReplayPlayer
from repro.engine.timing_diagram import TimingDiagram
from repro.engine.checks import (
    BugReport,
    CrossInvariantMonitor,
    DwellMonitor,
    HeartbeatMonitor,
    InitialStateMonitor,
    MonitorSuite,
    RangeMonitor,
    ResponseMonitor,
    SequenceMonitor,
    StateValueMonitor,
)
from repro.engine.classify import BugClass, BugClassifier, classify_bug
from repro.engine.inspector import ModelInspector
from repro.engine.session import DebugSession, TransportBudget

__all__ = [
    "DebuggerEngine", "EngineState",
    "BreakpointManager", "StateEntryBreakpoint", "SignalConditionBreakpoint",
    "CommandKindBreakpoint", "TransitionBreakpoint",
    "StepController",
    "ExecutionTrace", "TraceEvent",
    "ReplayPlayer",
    "TimingDiagram",
    "BugReport", "MonitorSuite", "RangeMonitor", "ResponseMonitor",
    "SequenceMonitor", "DwellMonitor", "StateValueMonitor",
    "HeartbeatMonitor", "InitialStateMonitor", "CrossInvariantMonitor",
    "BugClass", "BugClassifier", "classify_bug",
    "ModelInspector",
    "DebugSession", "TransportBudget",
]
