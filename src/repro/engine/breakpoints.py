"""Model-level breakpoints.

The code-level analogue breaks on an address; these break on **model
events**: entering a state, a signal satisfying a predicate, a particular
transition firing. When one matches, the engine halts the target through
the debug channel and parks in PAUSED.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.comm.protocol import Command, CommandKind
from repro.errors import DebuggerError


class ModelBreakpoint:
    """Base class: a predicate over incoming commands."""

    def __init__(self, description: str) -> None:
        self.description = description
        self.enabled = True
        self.hit_count = 0

    def matches(self, command: Command) -> bool:
        """Whether *command* should trigger this breakpoint."""
        raise NotImplementedError

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"<{type(self).__name__} {self.description} [{state}] hits={self.hit_count}>"


class StateEntryBreakpoint(ModelBreakpoint):
    """Break when a specific state is entered (paper's flagship example)."""

    def __init__(self, state_path: str) -> None:
        if not state_path.startswith("state:"):
            raise DebuggerError(
                f"state breakpoint needs a 'state:' path, got {state_path!r}"
            )
        super().__init__(f"break on entry of {state_path}")
        self.state_path = state_path

    def matches(self, command: Command) -> bool:
        return (command.kind is CommandKind.STATE_ENTER
                and command.path == self.state_path)


class SignalConditionBreakpoint(ModelBreakpoint):
    """Break when a signal update satisfies a predicate."""

    def __init__(self, signal_path: str, predicate: Callable[[int], bool],
                 description: str = "") -> None:
        if not signal_path.startswith("signal:"):
            raise DebuggerError(
                f"signal breakpoint needs a 'signal:' path, got {signal_path!r}"
            )
        super().__init__(description or f"break on condition of {signal_path}")
        self.signal_path = signal_path
        self.predicate = predicate

    def matches(self, command: Command) -> bool:
        return (command.kind is CommandKind.SIG_UPDATE
                and command.path == self.signal_path
                and self.predicate(command.value))


class TransitionBreakpoint(ModelBreakpoint):
    """Break when a transition (or any under a prefix) fires."""

    def __init__(self, trans_path_prefix: str) -> None:
        if not trans_path_prefix.startswith("trans:"):
            raise DebuggerError(
                f"transition breakpoint needs a 'trans:' path, got "
                f"{trans_path_prefix!r}"
            )
        super().__init__(f"break on transition {trans_path_prefix}")
        self.prefix = trans_path_prefix

    def matches(self, command: Command) -> bool:
        return (command.kind is CommandKind.TRANS_FIRED
                and command.path.startswith(self.prefix))


class CommandKindBreakpoint(ModelBreakpoint):
    """Break on any command of a given kind (coarse, but handy)."""

    def __init__(self, kind: CommandKind) -> None:
        super().__init__(f"break on any {kind.name}")
        self.kind = kind

    def matches(self, command: Command) -> bool:
        return command.kind is self.kind


class BreakpointManager:
    """Holds breakpoints; reports the first enabled match."""

    def __init__(self) -> None:
        self._breakpoints: List[ModelBreakpoint] = []

    def add(self, breakpoint: ModelBreakpoint) -> ModelBreakpoint:
        """Register a breakpoint."""
        self._breakpoints.append(breakpoint)
        return breakpoint

    def remove(self, breakpoint: ModelBreakpoint) -> None:
        """Unregister a breakpoint."""
        try:
            self._breakpoints.remove(breakpoint)
        except ValueError:
            raise DebuggerError("breakpoint is not registered") from None

    def all(self) -> List[ModelBreakpoint]:
        """All registered breakpoints."""
        return list(self._breakpoints)

    def check(self, command: Command) -> Optional[ModelBreakpoint]:
        """First enabled breakpoint matching *command* (hit count bumped)."""
        for breakpoint in self._breakpoints:
            if breakpoint.enabled and breakpoint.matches(command):
                breakpoint.hit_count += 1
                return breakpoint
        return None

    def __len__(self) -> int:
        return len(self._breakpoints)
