"""Trace replay.

"The user can then monitor the application's behavior via a replay function
associated with a timing diagram." Replay re-animates the debug model from
a recorded trace — no target needed — with seek and speed control. It is a
pure function of the trace: replaying twice yields identical frames.

The player accepts anything trace-shaped: a live
:class:`~repro.engine.trace.ExecutionTrace` or a
:class:`~repro.tracedb.store.StoredTrace` view over a spill store, which
replays an arbitrarily long on-disk history at flat memory. Replaying a
ring-*truncated* trace (events evicted, no spill) raises
:class:`~repro.errors.TruncatedTraceError` — animating from a mid-history
event while pretending it is the beginning is a lie; pass
``allow_truncated=True`` to accept the surviving window with a warning.

Seek is checkpoint-accelerated when the trace offers checkpoints
(``nearest_checkpoint``): the model restores the nearest stored snapshot
and steps only the tail, which is O(checkpoint interval) instead of
O(position) and bit-identical to linear replay at every event boundary.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

from repro.engine.trace import ExecutionTrace, TraceEvent
from repro.errors import DebuggerError, TruncatedTraceError
from repro.gdm.model import GdmModel
from repro.gdm.reactions import ReactionKind, decay_pulses
from repro.render.animation import FrameSequence


class ReplayPlayer:
    """Replays a recorded trace onto a debug model."""

    def __init__(self, trace: ExecutionTrace, gdm: GdmModel,
                 allow_truncated: bool = False,
                 capture_frames: bool = True) -> None:
        """``capture_frames=False`` replays state without recording
        animation frames — O(1) memory for state-only passes over long
        histories (offline checkpoint builds, end-state assertions)."""
        self.trace = trace
        self.gdm = gdm
        self.allow_truncated = allow_truncated
        self.position = 0
        self.frames = FrameSequence()
        self._active = False
        self.capture_frames = capture_frames
        self._capture_frames = capture_frames  # also cleared during seek tails

    def start(self) -> None:
        """Reset the model's dynamic state and rewind.

        Refuses (or warns, with ``allow_truncated=True``) when the trace
        is a partial window of a longer history — a ring that evicted
        events into the void (``dropped > 0``), or the in-memory cache
        of a spilling ring replayed directly instead of through
        ``full_history()`` (first surviving seq != 0). Sequence numbers
        tell the truth about the gap, so replay must too.
        """
        dropped = getattr(self.trace, "dropped", 0)
        # Prefer the O(1) attribute — indexing a StoredTrace here would
        # decode segment 0 on every seek just to learn it starts at 0.
        first_seq = getattr(self.trace, "first_seq", None)
        if first_seq is None:
            first_seq = self.trace[0].seq if len(self.trace) else 0
        missing = dropped or first_seq
        if missing:
            if not self.allow_truncated:
                # "the history is in the spill store" is only true advice
                # when there IS one (a deserialized ring window has
                # first_seq != 0 and dropped == 0 but nothing on disk)
                spilled = getattr(self.trace, "spill", None) is not None
                raise TruncatedTraceError(missing, len(self.trace),
                                          spilled=spilled)
            warnings.warn(
                f"replaying a truncated trace window: {missing} event(s) "
                f"precede the {len(self.trace)} surviving one(s); replay "
                f"starts mid-history",
                stacklevel=2)
        self.gdm.reset_styles()
        self.position = 0
        self.frames = FrameSequence()
        self._active = True

    def _apply_event(self, event: TraceEvent) -> None:
        for record in event.reactions:
            element = self.gdm.elements.get(record.element_id)
            if element is None:
                link = self.gdm.links.get(record.element_id)
                if link is not None:
                    link.style["pulse"] = "true"
                continue
            if record.kind is ReactionKind.HIGHLIGHT:
                if element.group:
                    for sibling in self.gdm.elements_in_group(element.group):
                        sibling.style.pop("highlighted", None)
                element.style["highlighted"] = "true"
            elif record.kind is ReactionKind.UNHIGHLIGHT:
                element.style.pop("highlighted", None)
            elif record.kind is ReactionKind.ANNOTATE:
                element.style["value"] = record.detail.replace("value=", "")
            elif record.kind is ReactionKind.PULSE:
                element.style["pulse"] = "true"
            elif record.kind is ReactionKind.MARK_ERROR:
                element.style["error"] = "true"

    def step(self) -> Optional[TraceEvent]:
        """Replay one event; returns it (None at end of trace)."""
        if not self._active:
            raise DebuggerError("call start() before stepping a replay")
        if self.position >= len(self.trace):
            return None
        event = self.trace[self.position]
        self.position += 1
        decay_pulses(self.gdm)  # same one-step pulse semantics as the engine
        self._apply_event(event)
        if self._capture_frames:
            self.frames.capture(event.command.t_host,
                                f"replay {event.command.kind.name} {event.command.path}",
                                self.gdm.styles_snapshot())
        return event

    def run_to_end(self) -> int:
        """Replay everything remaining; returns events replayed."""
        replayed = 0
        while self.step() is not None:
            replayed += 1
        return replayed

    def seek(self, position: int, use_checkpoints: bool = True) -> int:
        """Rebuild model state as of trace index *position* (exclusive).

        When the trace carries checkpoints, the nearest one at or before
        ``position - 1`` is restored and only the tail is stepped —
        identical end state to linear replay, without the O(position)
        walk. Returns the number of events actually applied (the tail
        length; equals *position* for a linear seek).

        After a seek, :attr:`frames` is empty on every path (frames are
        a record of *stepped* events, and a checkpointed seek steps only
        the tail) — step or :meth:`run_to_end` from here to capture the
        animation onward.
        """
        if not (0 <= position <= len(self.trace)):
            raise DebuggerError(
                f"seek position {position} outside 0..{len(self.trace)}"
            )
        self.start()
        if use_checkpoints and position > 0:
            finder = getattr(self.trace, "nearest_checkpoint", None)
            if finder is not None:
                checkpoint = finder(position - 1)
                # Stores are contiguous and 0-based, so seq == index; the
                # guard keeps an exotic trace from silently mis-seeking.
                if (checkpoint is not None
                        and self.trace[checkpoint.seq].seq == checkpoint.seq):
                    self.gdm.restore_dynamic_state(checkpoint.payload)
                    self.position = checkpoint.seq + 1
        # Both seek paths land in the same observable state: the frame
        # record restarts at the seek point (a checkpointed seek never
        # saw the prefix, so keeping the linear path's prefix frames
        # would make output depend on checkpoint availability). Capture
        # is suppressed while stepping the tail — the snapshots would be
        # discarded anyway, and copying them dominates seek cost.
        applied = 0
        self._capture_frames = False
        try:
            while self.position < position:
                self.step()
                applied += 1
        finally:
            self._capture_frames = self.capture_frames
        self.frames = FrameSequence()
        return applied

    def seek_time(self, t_us: int, use_checkpoints: bool = True) -> int:
        """Rebuild model state as of host time *t_us* (inclusive).

        Seeks past every event with ``t_host <= t_us`` — binary search
        over the host timestamps, then a checkpointed seek. Returns the
        number of events applied.

        Requires non-decreasing ``t_host``, which holds for every trace
        recorded by one engine (events are traced in arrival order). A
        *merged campaign store* interleaves per-job clocks that each
        restart near zero and does not satisfy it — address those per
        job instead (``store.events(seq_range=...)`` within one
        ``job_index``).
        """
        lo, hi = 0, len(self.trace)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.trace[mid].command.t_host <= t_us:
                lo = mid + 1
            else:
                hi = mid
        return self.seek(lo, use_checkpoints=use_checkpoints)

    def highlighted_paths(self) -> List[str]:
        """Source paths of currently highlighted elements (assert helper)."""
        return sorted(
            e.source_path for e in self.gdm.elements.values() if e.highlighted
        )
