"""Trace replay.

"The user can then monitor the application's behavior via a replay function
associated with a timing diagram." Replay re-animates the debug model from
a recorded trace — no target needed — with seek and speed control. It is a
pure function of the trace: replaying twice yields identical frames.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.trace import ExecutionTrace, TraceEvent
from repro.errors import DebuggerError
from repro.gdm.model import GdmModel
from repro.gdm.reactions import ReactionKind, decay_pulses
from repro.render.animation import FrameSequence


class ReplayPlayer:
    """Replays a recorded trace onto a debug model."""

    def __init__(self, trace: ExecutionTrace, gdm: GdmModel) -> None:
        self.trace = trace
        self.gdm = gdm
        self.position = 0
        self.frames = FrameSequence()
        self._active = False

    def start(self) -> None:
        """Reset the model's dynamic state and rewind."""
        self.gdm.reset_styles()
        self.position = 0
        self.frames = FrameSequence()
        self._active = True

    def _apply_event(self, event: TraceEvent) -> None:
        for record in event.reactions:
            element = self.gdm.elements.get(record.element_id)
            if element is None:
                link = self.gdm.links.get(record.element_id)
                if link is not None:
                    link.style["pulse"] = "true"
                continue
            if record.kind is ReactionKind.HIGHLIGHT:
                if element.group:
                    for sibling in self.gdm.elements_in_group(element.group):
                        sibling.style.pop("highlighted", None)
                element.style["highlighted"] = "true"
            elif record.kind is ReactionKind.UNHIGHLIGHT:
                element.style.pop("highlighted", None)
            elif record.kind is ReactionKind.ANNOTATE:
                element.style["value"] = record.detail.replace("value=", "")
            elif record.kind is ReactionKind.PULSE:
                element.style["pulse"] = "true"
            elif record.kind is ReactionKind.MARK_ERROR:
                element.style["error"] = "true"

    def step(self) -> Optional[TraceEvent]:
        """Replay one event; returns it (None at end of trace)."""
        if not self._active:
            raise DebuggerError("call start() before stepping a replay")
        if self.position >= len(self.trace):
            return None
        event = self.trace[self.position]
        self.position += 1
        decay_pulses(self.gdm)  # same one-step pulse semantics as the engine
        self._apply_event(event)
        self.frames.capture(event.command.t_host,
                            f"replay {event.command.kind.name} {event.command.path}",
                            self.gdm.styles_snapshot())
        return event

    def run_to_end(self) -> int:
        """Replay everything remaining; returns events replayed."""
        replayed = 0
        while self.step() is not None:
            replayed += 1
        return replayed

    def seek(self, position: int) -> None:
        """Rebuild model state as of trace index *position* (exclusive)."""
        if not (0 <= position <= len(self.trace)):
            raise DebuggerError(
                f"seek position {position} outside 0..{len(self.trace)}"
            )
        self.start()
        while self.position < position:
            self.step()

    def highlighted_paths(self) -> List[str]:
        """Source paths of currently highlighted elements (assert helper)."""
        return sorted(
            e.source_path for e in self.gdm.elements.values() if e.highlighted
        )
