"""Debug sessions: the prototype's execution flow (paper Fig 6).

The five numbered steps:

1. input prerequisites become available (meta-model, model, executable code);
2. the input files are selected;
3. the abstraction guide sets up the model mapping;
4. command reaction information is added;
5. the GDM is created and a communication channel to the embedded
   controller is established — the debugger enters its initial state,
   waiting for commands.

Then the GDM "continuously interacts with code execution at runtime".
:class:`DebugSession` drives those steps against the simulated target and
keeps the numbered workflow log as the Fig 6 artifact.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.instrument import InstrumentationPlan
from repro.codegen.pipeline import generate_firmware
from repro.comdes.blocks import FunctionBlock, StateMachineFB
from repro.comdes.composite import CompositeFB
from repro.comdes.dataflow import ComponentNetwork
from repro.comdes.modal import ModalFB
from repro.comdes.reflect import system_to_model
from repro.comdes.system import System
from repro.comdes.validate import validate_system
from repro.comm.channel import (
    ActiveChannel,
    CompositeChannel,
    PassiveChannel,
    WatchSpec,
)
from repro.comm.chaos import ChaosConfig, ChaosLink
from repro.comm.jtag import JtagProbe, TapController
from repro.comm.link import DebugLink, JtagLink
from repro.comm.retry import RetryPolicy, RetryingLink
from repro.comm.rs232 import Rs232Link
from repro.comm.usb import UsbTransport
from repro.engine.engine import DebuggerEngine
from repro.engine.stepping import StepController
from repro.engine.timing_diagram import TimingDiagram
from repro.errors import BudgetExceededError, DebuggerError
from repro.gdm.guide import AbstractionGuide
from repro.gdm.mapping import MappingTable, default_comdes_table
from repro.gdm.model import CommandBinding, GdmModel
from repro.gdm.scenegen import gdm_to_scene
from repro.meta.registry import MetamodelRegistry
from repro.obs.runtime import OBS
from repro.render.ascii_art import scene_to_ascii
from repro.render.svg import scene_to_svg
from repro.rtos.kernel import DtmKernel
from repro.sim.kernel import Simulator
from repro.target.board import DebugPort
from repro.util.seeds import derive_seed


def iter_blocks_with_scope(network: ComponentNetwork,
                           scope: str = "") -> List[Tuple[str, FunctionBlock]]:
    """All blocks (recursively) with their reflect-convention scope strings."""
    found: List[Tuple[str, FunctionBlock]] = []
    for block in network.blocks:
        block_scope = f"{scope}.{block.name}" if scope else block.name
        found.append((block_scope, block))
        if isinstance(block, ModalFB):
            for mode in block.modes:
                found.extend(iter_blocks_with_scope(
                    mode.network, f"{block_scope}.{mode.name}"))
        elif isinstance(block, CompositeFB):
            found.extend(iter_blocks_with_scope(block.network, block_scope))
    return found


def default_watches(system: System, node: str) -> List[WatchSpec]:
    """Monitored-variable selection for a node: state vars + output signals.

    This is the paper's "the user needs to select one or more monitored
    variables that are considered to be critical (e.g. variable s is
    critical if it saves state information in a state machine model)".
    """
    watches: List[WatchSpec] = []
    for actor in system.actors.values():
        if actor.node != node:
            continue
        for block_scope, block in iter_blocks_with_scope(actor.network):
            if isinstance(block, StateMachineFB):
                watches.append(WatchSpec.state_machine(
                    actor.name, block_scope, block.machine))
        for port, signal in sorted(actor.outputs.items()):
            watches.append(WatchSpec.signal(actor.name, port, signal))
    return watches


class TransportBudget:
    """Per-session ceilings on what the debug transport may consume.

    Budgets are written against :meth:`DebugLink.stats` aggregates — the
    accounting every link keeps — so they hold for any channel kind:

    * ``max_transactions`` — host round trips (USB/serial scheduling is
      usually the scarce resource on real probes);
    * ``max_cost_us`` — total modeled transport time, the budget that
      keeps a "passive" observation plan honest about bus occupancy.

    ``per_channel`` attaches sub-budgets keyed by link attribution label
    (``"passive"``, ``"active"``, ``"inspect"``) so a plan can, say, cap
    the active command stream without starving passive polling. Every
    violation string names the offending channel; global violations name
    the busiest channel when a per-channel breakdown is available.

    A session with a budget fails its experiment the moment a run ends
    over the ceiling (:class:`~repro.errors.BudgetExceededError`), which
    is how campaign-scale sweeps reject observation plans too expensive
    to deploy rather than silently reporting their detections.
    """

    __slots__ = ("max_transactions", "max_cost_us", "per_channel")

    def __init__(self, max_transactions: Optional[int] = None,
                 max_cost_us: Optional[int] = None,
                 per_channel: Optional[Dict[str, "TransportBudget"]] = None
                 ) -> None:
        for name, value in (("max_transactions", max_transactions),
                            ("max_cost_us", max_cost_us)):
            if value is not None and value < 0:
                raise DebuggerError(f"{name} must be non-negative, "
                                    f"got {value}")
        self.max_transactions = max_transactions
        self.max_cost_us = max_cost_us
        self.per_channel = dict(per_channel) if per_channel else {}
        for label, sub in self.per_channel.items():
            if sub.per_channel:
                # a channel stats row carries no further breakdown, so a
                # nested sub-budget could never fire — dead silently
                raise DebuggerError(
                    f"per-channel budget for {label!r} has its own "
                    f"per_channel; channel budgets do not nest")

    @staticmethod
    def _busiest(stats: Dict[str, object], metric: str) -> str:
        """Name the channel dominating *metric* ('' without breakdown)."""
        channels = stats.get("channels")
        if not channels:
            return ""
        label, row = max(channels.items(), key=lambda kv: kv[1][metric])
        return f" (busiest channel: {label}, {row[metric]})"

    def violations(self, stats: Dict[str, object]) -> List[str]:
        """Ceilings exceeded by an aggregated stats snapshot."""
        found = []
        if (self.max_transactions is not None
                and stats["transactions"] > self.max_transactions):
            found.append(f"{stats['transactions']} transactions > "
                         f"budget {self.max_transactions}"
                         + self._busiest(stats, "transactions"))
        if (self.max_cost_us is not None
                and stats["cost_us_total"] > self.max_cost_us):
            found.append(f"{stats['cost_us_total']}us transport cost > "
                         f"budget {self.max_cost_us}us"
                         + self._busiest(stats, "cost_us_total"))
        for label in sorted(self.per_channel):
            row = stats.get("channels", {}).get(label)
            if row is None:
                continue
            found.extend(f"channel '{label}': {violation}"
                         for violation in self.per_channel[label].violations(row))
        return found

    def __repr__(self) -> str:
        return (f"<TransportBudget txn<={self.max_transactions} "
                f"cost<={self.max_cost_us}us "
                f"channels={sorted(self.per_channel) or '-'}>")


class DegradationPolicy:
    """Graceful degradation instead of budget failure.

    Attached to a :class:`DebugSession` next to a
    :class:`TransportBudget`, this closes the budget work's open tail:
    a passive observation plan that *would* bust a ceiling no longer
    raises — the session degrades observability until the projected
    spend fits, applying the cheapest-loss step first:

    1. **slow the poll** — double the poll period, up to
       ``max_slowdown``× the configured period (latency cost only);
    2. **split the plan** — double the poll stride
       (:meth:`~repro.comm.channel.PassiveChannel.set_stride`), polling
       a contiguous fraction of the watches per tick (latency cost per
       watch, full coverage retained);
    3. **shed watches** — drop the lowest-priority (last-listed)
       watches one at a time down to ``min_watches`` (coverage cost —
       the last resort).

    Every step lands in ``DebugSession.degradation_events`` with the
    simulated time, action and detail, so a degraded run is queryable
    after the fact. When every knob is exhausted and the projection
    still busts the ceiling, the default is to record the fact and run
    anyway (partial observability beats none); ``raise_on_exhausted``
    restores the hard failure for campaigns that prefer rejection.
    """

    __slots__ = ("max_slowdown", "max_stride", "min_watches",
                 "raise_on_exhausted")

    def __init__(self, max_slowdown: int = 8, max_stride: int = 4,
                 min_watches: int = 1,
                 raise_on_exhausted: bool = False) -> None:
        if max_slowdown < 1:
            raise DebuggerError(f"max_slowdown must be >= 1, "
                                f"got {max_slowdown}")
        if max_stride < 1:
            raise DebuggerError(f"max_stride must be >= 1, got {max_stride}")
        if min_watches < 1:
            raise DebuggerError(f"min_watches must be >= 1, "
                                f"got {min_watches}")
        self.max_slowdown = max_slowdown
        self.max_stride = max_stride
        self.min_watches = min_watches
        self.raise_on_exhausted = raise_on_exhausted

    def degrade_step(self, channel) -> Optional[Dict[str, object]]:
        """Apply the cheapest available degradation to a passive channel.

        Returns an event dict describing what changed, or ``None`` when
        the channel is already degraded to this policy's floor.
        """
        period_cap = channel.initial_poll_period_us * self.max_slowdown
        if channel.poll_period_us * 2 <= period_cap:
            channel.set_poll_period(channel.poll_period_us * 2)
            return {"action": "slow_poll",
                    "detail": f"poll period -> {channel.poll_period_us}us"}
        if (channel.stride * 2 <= self.max_stride
                and channel.stride * 2 <= len(channel.watches)):
            channel.set_stride(channel.stride * 2)
            return {"action": "split_plan",
                    "detail": f"poll stride -> {channel.stride}"}
        if len(channel.watches) > self.min_watches:
            dropped = channel.shed_watches(1)
            return {"action": "shed_watch",
                    "detail": f"dropped {', '.join(dropped)}"}
        return None

    def __repr__(self) -> str:
        return (f"<DegradationPolicy slowdown<={self.max_slowdown}x "
                f"stride<={self.max_stride} watches>={self.min_watches} "
                f"{'raise' if self.raise_on_exhausted else 'record'}"
                f"-on-exhausted>")


class DebugSession:
    """One GMDF debugging session over a simulated target."""

    CHANNEL_KINDS = ("active", "passive")

    def __init__(self, system: System, channel_kind: str = "active",
                 plan: Optional[InstrumentationPlan] = None,
                 latched: bool = True, net_delay_us: int = 100,
                 baud: int = 115200, poll_period_us: int = 500,
                 tck_hz: int = 4_000_000,
                 budget: Optional[TransportBudget] = None,
                 trace_capacity: Optional[int] = None,
                 trace_spill: Optional[object] = None,
                 chaos: Optional[ChaosConfig] = None,
                 retry: Optional[RetryPolicy] = None,
                 degradation: Optional[DegradationPolicy] = None) -> None:
        """``chaos`` injects seeded wire faults into every per-node debug
        link (:class:`~repro.comm.chaos.ChaosLink`; each node derives its
        own schedule from the config seed). ``retry`` wraps the links in
        a :class:`~repro.comm.retry.RetryingLink` so transient faults are
        absorbed under the policy's attempt/backoff budget. ``degradation``
        (with a ``budget``) degrades passive observation plans instead of
        raising :class:`~repro.errors.BudgetExceededError`.

        ``trace_capacity``/``trace_spill`` configure the engine's
        execution trace: a bounded ring, and/or a
        :class:`~repro.tracedb.store.TraceStore` the ring spills into so
        arbitrarily long sessions keep their full history replayable at
        flat memory (the store's ``checkpoint_every`` additionally turns
        on live seek checkpoints). A spilling session defaults its ring
        to :data:`DEFAULT_SPILL_CACHE_EVENTS` — spilling with an
        unbounded in-memory copy would defeat the flat-memory point.
        """
        if channel_kind not in self.CHANNEL_KINDS:
            raise DebuggerError(
                f"channel_kind must be one of {self.CHANNEL_KINDS}, "
                f"got {channel_kind!r}"
            )
        validate_system(system)
        self.system = system
        self.channel_kind = channel_kind
        # Active debugging needs instrumented code; passive debugging works
        # on clean production code (that is its selling point).
        if plan is None:
            plan = (InstrumentationPlan() if channel_kind == "active"
                    else InstrumentationPlan.none())
        self.plan = plan
        self.latched = latched
        self.net_delay_us = net_delay_us
        self.baud = baud
        self.poll_period_us = poll_period_us
        self.tck_hz = tck_hz
        self.trace_capacity = trace_capacity
        self.trace_spill = trace_spill

        self.sim = Simulator()
        self.registry = MetamodelRegistry()
        self.workflow_log: List[str] = []

        self.model = None
        self.firmware = None
        self.guide: Optional[AbstractionGuide] = None
        self.gdm: Optional[GdmModel] = None
        self.kernel: Optional[DtmKernel] = None
        self.engine: Optional[DebuggerEngine] = None
        self.stepper: Optional[StepController] = None
        self.channel = None
        self.probes: Dict[str, JtagProbe] = {}
        #: one DebugLink per node — the transport every debug byte crosses
        self.links: Dict[str, DebugLink] = {}
        #: extra budgeted links registered via :meth:`add_debug_link`
        self._extra_links: List[DebugLink] = []
        #: optional transport ceilings; checked after every run
        self.budget = budget
        #: set once a run ends over budget (the experiment is failed)
        self.budget_failed = False
        self._warned_absent_channels: set = set()
        #: transport fault injection / retry / degradation configuration
        self.chaos = chaos
        self.retry = retry
        self.degradation = degradation
        #: every degradation step taken, in order: dicts with at least
        #: ``t_us``, ``action`` and ``detail`` (queryable after a run)
        self.degradation_events: List[Dict[str, object]] = []
        #: per-node passive channels (degradation targets)
        self._passive_channels: List[PassiveChannel] = []
        if OBS.metrics is not None:
            # the canonical transport totals (outermost links only, so
            # no wrapper double-count) become transport.* series —
            # including the merged retry/timeout/degradation key set
            OBS.metrics.bind_stats("transport", self.transport_stats,
                                   owner=self)

    def _log(self, step: int, message: str) -> None:
        self.workflow_log.append(f"[{step}] {message}")

    # -- Fig 6 steps -------------------------------------------------------

    def step1_provide_inputs(self) -> "DebugSession":
        """Prerequisites: input meta-model, input model, executable code."""
        self.model = system_to_model(self.system)
        self.firmware = generate_firmware(self.system, self.plan)
        self._log(1, (
            f"inputs ready: metamodel '{self.model.metamodel.name}', "
            f"model '{self.model.name}' ({len(self.model)} objects), "
            f"executable '{self.firmware.name}' "
            f"({self.firmware.instruction_count()} instructions, "
            f"{'instrumented' if self.plan.any_enabled else 'clean'})"
        ))
        return self

    def step2_select_inputs(self) -> "DebugSession":
        """Select the input files (metamodel registration + model pick)."""
        self._require(self.model is not None, "run step1_provide_inputs first")
        self.registry.register(self.model.metamodel)
        self._log(2, (
            f"selected metamodel '{self.model.metamodel.name}' and model "
            f"file '{self.model.name}.model'"
        ))
        return self

    def step3_abstraction(self,
                          table: Optional[MappingTable] = None) -> "DebugSession":
        """Run the abstraction guide and generate the initial GDM."""
        self._require(self.model is not None, "run step1_provide_inputs first")
        self.guide = AbstractionGuide(self.model)
        if table is None:
            table = default_comdes_table(self.model.metamodel)
        self.guide.use_table(table)
        self.gdm = self.guide.finish()
        self._log(3, (
            f"abstraction finished: {len(self.gdm.elements)} elements, "
            f"{len(self.gdm.links)} links from "
            f"{len(table.pairings())} pairings"
        ))
        return self

    def step4_command_setup(self,
                            extra_bindings: Sequence[CommandBinding] = ()
                            ) -> "DebugSession":
        """Add command reaction information (defaults + user additions)."""
        self._require(self.gdm is not None, "run step3_abstraction first")
        for binding in extra_bindings:
            self.gdm.add_binding(binding)
        self._log(4, (
            f"command setup complete: {len(self.gdm.bindings)} bindings "
            f"({len(extra_bindings)} user-defined)"
        ))
        return self

    def step5_connect(self) -> "DebugSession":
        """Create the GDM runtime and the communication channel."""
        self._require(self.gdm is not None, "run step3_abstraction first")
        self.kernel = DtmKernel(
            self.system, self.firmware, sim=self.sim,
            latched=self.latched, net_delay_us=self.net_delay_us,
        )
        composite = CompositeChannel()
        for node in self.system.nodes():
            board = self.kernel.board_of(node)
            if self.channel_kind == "active":
                channel = ActiveChannel(self.sim, board, self.firmware,
                                        link=Rs232Link(self.baud))
                channel.debug_link = self._wrap_link(channel.debug_link,
                                                     node, "active")
                self.links[node] = channel.debug_link
                self.kernel.add_job_hook(
                    node,
                    lambda actor, t, ch=channel: ch.begin_job(t),
                )
                composite.add(channel)
            else:
                tap = TapController(DebugPort(board))
                probe = JtagProbe(tap, tck_hz=self.tck_hz,
                                  transport=UsbTransport())
                self.probes[node] = probe
                link = self._wrap_link(JtagLink(probe), node, "passive")
                self.links[node] = link
                watches = default_watches(self.system, node)
                if watches:
                    channel = PassiveChannel(
                        self.sim, probe, self.firmware, watches,
                        poll_period_us=self.poll_period_us,
                        link=link,
                    )
                    channel.start()
                    composite.add(channel)
                    self._passive_channels.append(channel)
        self.channel = composite
        trace = None
        if self.trace_capacity is not None or self.trace_spill is not None:
            from repro.engine.trace import ExecutionTrace
            capacity = self.trace_capacity
            if capacity is None:
                # spill without a ring would keep an unbounded in-memory
                # duplicate of the on-disk history (deferred import: a
                # plain bounded-ring session never loads tracedb)
                from repro.tracedb.store import DEFAULT_SPILL_CACHE_EVENTS
                capacity = DEFAULT_SPILL_CACHE_EVENTS
            trace = ExecutionTrace(capacity=capacity, spill=self.trace_spill)
        self.engine = DebuggerEngine(self.gdm, channel=composite, trace=trace)
        self.stepper = StepController(self.engine)
        self._log(5, (
            f"GDM created and {self.channel_kind} communication established "
            f"({len(composite.children)} node channel(s)); engine "
            f"{self.engine.state.name}"
        ))
        return self

    def setup(self, table: Optional[MappingTable] = None,
              extra_bindings: Sequence[CommandBinding] = ()) -> "DebugSession":
        """Run all five workflow steps with defaults."""
        return (self.step1_provide_inputs()
                .step2_select_inputs()
                .step3_abstraction(table)
                .step4_command_setup(extra_bindings)
                .step5_connect())

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise DebuggerError(message)

    def _wrap_link(self, link: DebugLink, node: str, label: str) -> DebugLink:
        """Stack the session's chaos/retry wrappers onto a bare link.

        Order matters: faults inject *below* the retry layer, so the
        policy absorbs exactly the transients the chaos schedule emits.
        Each node derives its own chaos seed, so multi-node sessions get
        independent — but reproducible — fault schedules.
        """
        if self.chaos is not None:
            per_node = self.chaos.with_seed(
                derive_seed(self.chaos.seed, "chaos", node))
            link = ChaosLink(link, per_node)
        if self.retry is not None:
            link = RetryingLink(link, self.retry)
        link.label = label
        return link

    # -- runtime ------------------------------------------------------------

    def run(self, duration_us: int) -> "DebugSession":
        """Advance the simulated world to *duration_us*.

        With a :class:`TransportBudget` attached, the transport books
        are audited after the advance; going over the ceiling marks the
        experiment failed and raises
        :class:`~repro.errors.BudgetExceededError`. With a
        :class:`DegradationPolicy` attached as well, the session instead
        *degrades to fit*: before the advance it projects the passive
        poll spend over the horizon and lowers poll rate / splits the
        plan / sheds watches until the projection fits the ceiling,
        recording every step in :attr:`degradation_events` — the hard
        raise stays the explicit opt-in (no policy, or
        ``raise_on_exhausted``).
        """
        self._require(self.kernel is not None, "run step5_connect first")
        self._degrade_to_fit(duration_us)
        t_start = self.sim.now
        self.kernel.run(duration_us)
        if OBS.spans is not None:
            OBS.spans.emit("session.run", t_start,
                           self.sim.now - t_start,
                           track=("engine", "session"), cat="session",
                           args={"horizon_us": duration_us})
        if OBS.live is not None:
            # flush the live plane at every run boundary: a session
            # driven in short windows streams one delta per window even
            # without the kernel's activation ticks
            OBS.live.tick(self.sim.now)
        self._check_budget()
        return self

    def run_for(self, delta_us: int) -> "DebugSession":
        """Advance by *delta_us* from the current instant."""
        return self.run(self.sim.now + delta_us)

    # -- transport accounting ----------------------------------------------

    def transport_stats(self) -> Dict[str, object]:
        """Session-wide :meth:`DebugLink.stats` aggregate over all nodes.

        Top-level keys are the cross-channel totals (what global budget
        ceilings are written against); ``"channels"`` breaks the same
        counters down per attribution label — ``passive`` (JTAG poll
        plane), ``active`` (RS-232 command stream), ``inspect``
        (source-debugger reads registered via :meth:`add_debug_link`).
        ``retries``/``timeouts`` aggregate the retry layer's absorption
        counts (zero on bare links); ``degradations`` counts the
        session's recorded degradation events.
        """
        counters = ("transactions", "words_read", "words_written",
                    "frames_carried", "cost_us_total", "retries",
                    "timeouts")
        totals: Dict[str, object] = {key: 0 for key in counters}
        channels: Dict[str, Dict[str, int]] = {}
        for link in self._all_links():
            stats = link.stats()
            row = channels.setdefault(
                stats["label"], {key: 0 for key in counters} | {"links": 0})
            row["links"] += 1
            for key in counters:
                totals[key] += stats[key]
                row[key] += stats[key]
        totals["links"] = sum(row["links"] for row in channels.values())
        totals["channels"] = channels
        totals["degradations"] = len(self.degradation_events)
        return totals

    def _all_links(self) -> List[DebugLink]:
        """Every budgeted link: per-node channels + registered extras."""
        return list(self.links.values()) + self._extra_links

    def add_debug_link(self, link: DebugLink, label: str = "") -> DebugLink:
        """Register an extra link (e.g. a source debugger's inspect link)
        under the session's transport accounting and budget.

        Idempotent: re-registering a link already tracked (including a
        per-node channel link, to relabel it) never double-books its
        transactions.
        """
        if label:
            link.label = label
        if not any(link is tracked for tracked in self._all_links()):
            self._extra_links.append(link)
        return link

    def budget_violations(self) -> List[str]:
        """Current ceilings exceeded (empty without a budget)."""
        if self.budget is None:
            return []
        return self.budget.violations(self.transport_stats())

    # -- graceful degradation ------------------------------------------------

    def _record_degradation(self, event: Dict[str, object]) -> None:
        event.setdefault("t_us", self.sim.now)
        self.degradation_events.append(event)
        if OBS.metrics is not None:
            # one series per ladder rung (slow_poll / split_plan /
            # shed_watch / over_budget / exhausted)
            OBS.metrics.counter("session.degradation",
                                action=str(event.get("action"))).inc()

    def projected_stats(self, horizon_us: int) -> Dict[str, object]:
        """Transport books projected to *horizon_us*: the current totals
        plus what every passive channel's remaining poll ticks will add
        (one transaction per tick, baseline-scaled words and scan cost).
        Active-channel traffic is workload-driven and not projected —
        degradation reacts to it post-run instead."""
        stats = self.transport_stats()
        remaining_us = max(0, horizon_us - self.sim.now)
        for channel in self._passive_channels:
            ticks = remaining_us // channel.poll_period_us
            if ticks <= 0:
                continue
            words, cost_us = channel.estimated_tick()
            add = {"transactions": ticks, "words_read": ticks * words,
                   "cost_us_total": ticks * cost_us}
            row = stats["channels"].get(getattr(channel.link, "label",
                                                "passive"))
            for key, delta in add.items():
                stats[key] += delta
                if row is not None:
                    row[key] += delta
        return stats

    def _degrade_to_fit(self, horizon_us: int) -> None:
        """Pre-run projection loop: degrade until the horizon fits."""
        if (self.budget is None or self.degradation is None
                or not self._passive_channels):
            return
        # bounded: each iteration moves one knob one notch; the knob
        # space (slowdown x stride x watches, per channel) is finite
        for _ in range(256):
            projected = self.projected_stats(horizon_us)
            violations = self.budget.violations(projected)
            if not violations:
                return
            event = None
            for channel in self._passive_channels:
                event = self.degradation.degrade_step(channel)
                if event is not None:
                    event["reason"] = violations[0]
                    self._record_degradation(event)
                    break
            if event is None:
                self._record_degradation({
                    "action": "exhausted",
                    "detail": "every degradation knob is at its floor",
                    "reason": violations[0],
                })
                if self.degradation.raise_on_exhausted:
                    self.budget_failed = True
                    raise BudgetExceededError(violations, projected)
                return

    def _check_budget(self) -> None:
        if self.budget is None:
            return
        stats = self.transport_stats()
        # A per-channel budget whose label no session link carries can
        # never fire — legitimate for a shared budget template (no
        # active channel on a passive session), but also exactly what a
        # typo looks like. Warn once per label, re-evaluating each check
        # so links registered later (add_debug_link) lift the condition
        # and labels added later still get reported.
        absent = (set(self.budget.per_channel) - set(stats["channels"])
                  - self._warned_absent_channels)
        if absent:
            self._warned_absent_channels |= absent
            warnings.warn(
                f"per-channel budget(s) for {sorted(absent)} currently "
                f"match no link label in this session (present: "
                f"{sorted(stats['channels']) or 'none'}); they cannot be "
                f"enforced unless such a link is registered — check for "
                f"typos", stacklevel=3)
        violations = self.budget.violations(stats)
        if not violations:
            return
        if self.degradation is not None:
            # record-and-degrade, never raise: cumulative books cannot
            # un-spend, so the response to a post-run violation is to
            # cut the *future* spend rate and log what happened
            self._record_degradation({
                "action": "over_budget",
                "detail": "; ".join(violations),
                "reason": violations[0],
            })
            for channel in self._passive_channels:
                event = self.degradation.degrade_step(channel)
                if event is not None:
                    event["reason"] = violations[0]
                    self._record_degradation(event)
                    break
            return
        self.budget_failed = True
        raise BudgetExceededError(violations, stats)

    # -- views --------------------------------------------------------------

    @property
    def trace(self):
        """The engine's execution trace."""
        self._require(self.engine is not None, "run step5_connect first")
        return self.engine.trace

    def inspector(self):
        """A model-level inspector over the running target."""
        self._require(self.kernel is not None, "run step5_connect first")
        from repro.engine.inspector import ModelInspector
        return ModelInspector(self.system, self.firmware, self.kernel)

    def snapshot_ascii(self) -> str:
        """ASCII rendering of the debug model's current display state."""
        return scene_to_ascii(gdm_to_scene(self.gdm))

    def snapshot_svg(self) -> str:
        """SVG rendering of the debug model's current display state."""
        return scene_to_svg(gdm_to_scene(self.gdm))

    def timing_diagram(self) -> TimingDiagram:
        """Timing diagram of everything traced so far."""
        return TimingDiagram(self.trace)

    def workflow_text(self) -> str:
        """The numbered Fig 6 workflow log."""
        return "\n".join(self.workflow_log)
