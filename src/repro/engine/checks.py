"""Requirement monitors: turning wrong animations into bug reports.

"If the actions taken are not consistent with system requirements, a bug is
considered to be found." Monitors encode requirements at the model level
and subscribe to the engine's command stream; violations become
:class:`BugReport` objects, which the fault-injection campaign (E9) scores.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.comm.protocol import Command, CommandKind
from repro.engine.engine import DebuggerEngine


class BugReport:
    """One detected requirement violation."""

    __slots__ = ("monitor", "message", "command", "t_us")

    def __init__(self, monitor: str, message: str, command: Command) -> None:
        self.monitor = monitor
        self.message = message
        self.command = command
        self.t_us = command.t_host

    def __repr__(self) -> str:
        return f"<BugReport [{self.monitor}] {self.message} @ {self.t_us}us>"


class Monitor:
    """Base class: inspect each command, report violations."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.reports: List[BugReport] = []

    def inspect(self, command: Command) -> Optional[BugReport]:
        """Return a report if *command* violates the requirement."""
        raise NotImplementedError

    def _report(self, message: str, command: Command) -> BugReport:
        report = BugReport(self.name, message, command)
        self.reports.append(report)
        return report

    @property
    def violated(self) -> bool:
        """Whether any violation has been recorded."""
        return bool(self.reports)


class SequenceMonitor(Monitor):
    """States of a machine must follow an allowed successor relation.

    ``allowed`` maps each state path to the set of state paths that may
    legally follow it. The first observed state seeds the tracking.
    """

    def __init__(self, name: str, group_prefix: str,
                 allowed: Dict[str, Set[str]]) -> None:
        super().__init__(name)
        self.group_prefix = group_prefix
        self.allowed = {k: set(v) for k, v in allowed.items()}
        self._current: Optional[str] = None

    def inspect(self, command: Command) -> Optional[BugReport]:
        if command.kind is not CommandKind.STATE_ENTER:
            return None
        if not command.path.startswith(self.group_prefix):
            return None
        previous, self._current = self._current, command.path
        if previous is None:
            return None
        if command.path not in self.allowed.get(previous, set()):
            return self._report(
                f"illegal state order: {previous} -> {command.path}", command
            )
        return None


class RangeMonitor(Monitor):
    """A signal must stay inside [lo, hi]."""

    def __init__(self, name: str, signal_path: str, lo: int, hi: int) -> None:
        super().__init__(name)
        self.signal_path = signal_path
        self.lo = lo
        self.hi = hi

    def inspect(self, command: Command) -> Optional[BugReport]:
        if command.kind is not CommandKind.SIG_UPDATE:
            return None
        if command.path != self.signal_path:
            return None
        if not (self.lo <= command.value <= self.hi):
            return self._report(
                f"{self.signal_path} = {command.value} outside "
                f"[{self.lo}, {self.hi}]", command,
            )
        return None


class ResponseMonitor(Monitor):
    """After a trigger event, a response event must occur within a window."""

    def __init__(self, name: str,
                 trigger: Callable[[Command], bool],
                 response: Callable[[Command], bool],
                 within_us: int) -> None:
        super().__init__(name)
        self.trigger = trigger
        self.response = response
        self.within_us = within_us
        self._pending_since: Optional[int] = None
        self._pending_command: Optional[Command] = None

    def inspect(self, command: Command) -> Optional[BugReport]:
        report: Optional[BugReport] = None
        if self._pending_since is not None:
            if self.response(command):
                self._pending_since = None
                self._pending_command = None
            elif command.t_host - self._pending_since > self.within_us:
                overdue = self._pending_command
                self._pending_since = None
                self._pending_command = None
                report = self._report(
                    f"no response within {self.within_us}us of trigger "
                    f"at {overdue.t_host}us", command,
                )
        # A response may itself be the next trigger — always re-check.
        if self._pending_since is None and self.trigger(command):
            self._pending_since = command.t_host
            self._pending_command = command
        return report


class DwellMonitor(Monitor):
    """Time spent in a state must lie within [lo_us, hi_us].

    Catches timing design errors (a wrong guard constant changes a phase
    duration) that sequence and range checks cannot see.
    """

    def __init__(self, name: str, state_path: str, group_prefix: str,
                 lo_us: int, hi_us: int) -> None:
        super().__init__(name)
        self.state_path = state_path
        self.group_prefix = group_prefix
        self.lo_us = lo_us
        self.hi_us = hi_us
        self._entered_at: Optional[int] = None

    def inspect(self, command: Command) -> Optional[BugReport]:
        if command.kind is not CommandKind.STATE_ENTER:
            return None
        if not command.path.startswith(self.group_prefix):
            return None
        if command.path == self.state_path:
            self._entered_at = command.t_target
            return None
        if self._entered_at is None:
            return None
        dwell = command.t_target - self._entered_at
        self._entered_at = None
        if not (self.lo_us <= dwell <= self.hi_us):
            return self._report(
                f"dwell in {self.state_path} was {dwell}us, expected "
                f"[{self.lo_us}, {self.hi_us}]us", command,
            )
        return None


class StateValueMonitor(Monitor):
    """Entering a state must drive a signal to its corresponding value.

    The quintessential *model-level* consistency check: "state RED implies
    lamp code 0". A code-level range watch cannot express it (both the
    state index and the lamp value are individually in range).
    """

    def __init__(self, name: str, state_path: str, signal_path: str,
                 expected: int, within_us: int) -> None:
        super().__init__(name)
        self.state_path = state_path
        self.signal_path = signal_path
        self.expected = expected
        self.within_us = within_us
        self._armed_at: Optional[int] = None

    def inspect(self, command: Command) -> Optional[BugReport]:
        if (command.kind is CommandKind.STATE_ENTER
                and command.path == self.state_path):
            self._armed_at = command.t_host
            return None
        if self._armed_at is None:
            return None
        if (command.kind is CommandKind.SIG_UPDATE
                and command.path == self.signal_path):
            armed_at = self._armed_at
            self._armed_at = None
            if command.value != self.expected:
                return self._report(
                    f"{self.state_path} should drive "
                    f"{self.signal_path}={self.expected}, saw {command.value}",
                    command,
                )
            return None
        if command.t_host - self._armed_at > self.within_us:
            self._armed_at = None
            return self._report(
                f"{self.signal_path} never updated within {self.within_us}us "
                f"of entering {self.state_path}", command,
            )
        return None


class CrossInvariantMonitor(Monitor):
    """A cross-actor safety invariant: while in a state, a signal predicate
    must hold.

    Tracks the last observed value of the signal and checks the predicate
    both when the state is entered and whenever the signal changes while
    the state is active — "the press must never close while the belt runs".
    """

    def __init__(self, name: str, state_path: str, group_prefix: str,
                 signal_path: str, predicate: Callable[[int], bool],
                 initial_value: int = 0) -> None:
        super().__init__(name)
        self.state_path = state_path
        self.group_prefix = group_prefix
        self.signal_path = signal_path
        self.predicate = predicate
        self._signal_value = initial_value
        self._in_state = False

    def inspect(self, command: Command) -> Optional[BugReport]:
        if (command.kind is CommandKind.SIG_UPDATE
                and command.path == self.signal_path):
            self._signal_value = command.value
            if self._in_state and not self.predicate(command.value):
                return self._report(
                    f"invariant broken: {self.signal_path} became "
                    f"{command.value} while in {self.state_path}", command,
                )
            return None
        if command.kind is not CommandKind.STATE_ENTER:
            return None
        if command.path == self.state_path:
            self._in_state = True
            if not self.predicate(self._signal_value):
                return self._report(
                    f"invariant broken on entry: {self.state_path} entered "
                    f"while {self.signal_path} = {self._signal_value}",
                    command,
                )
        elif command.path.startswith(self.group_prefix):
            self._in_state = False
        return None


class HeartbeatMonitor(Monitor):
    """Events matching a predicate must occur at least every ``every_us``.

    Freezes are the dark matter of runtime debugging: a stuck machine emits
    *nothing*, so violation must be inferred from the passage of other
    traffic. The monitor clocks itself off every incoming command.
    """

    def __init__(self, name: str, predicate: Callable[[Command], bool],
                 every_us: int) -> None:
        super().__init__(name)
        self.predicate = predicate
        self.every_us = every_us
        self._last_beat = 0

    def inspect(self, command: Command) -> Optional[BugReport]:
        if self.predicate(command):
            self._last_beat = command.t_host
            return None
        if command.t_host - self._last_beat > self.every_us:
            silent_for = command.t_host - self._last_beat
            self._last_beat = command.t_host  # avoid a report storm
            return self._report(
                f"no matching event for {silent_for}us "
                f"(limit {self.every_us}us)", command,
            )
        return None


class InitialStateMonitor(Monitor):
    """The first observed state change of a machine must enter a given state.

    Encodes power-on requirements ("the first phase change is into GREEN,
    i.e. the system boots in RED").
    """

    def __init__(self, name: str, group_prefix: str,
                 expected_path: str) -> None:
        super().__init__(name)
        self.group_prefix = group_prefix
        self.expected_path = expected_path
        self._seen_first = False

    def inspect(self, command: Command) -> Optional[BugReport]:
        if self._seen_first:
            return None
        if command.kind is not CommandKind.STATE_ENTER:
            return None
        if not command.path.startswith(self.group_prefix):
            return None
        self._seen_first = True
        if command.path != self.expected_path:
            return self._report(
                f"first state change entered {command.path}, expected "
                f"{self.expected_path}", command,
            )
        return None


class MonitorSuite:
    """Attaches monitors to an engine and aggregates their reports."""

    def __init__(self, monitors: Sequence[Monitor]) -> None:
        self.monitors = list(monitors)
        self._attached = False

    def attach(self, engine: DebuggerEngine) -> None:
        """Subscribe to the engine's command stream."""
        if self._attached:
            raise RuntimeError("monitor suite already attached")
        self._attached = True
        engine.bus.subscribe("command", self._on_command)

    def _on_command(self, command: Command, **_: object) -> None:
        for monitor in self.monitors:
            monitor.inspect(command)

    def reports(self) -> List[BugReport]:
        """All violations, in detection order."""
        merged: List[BugReport] = []
        for monitor in self.monitors:
            merged.extend(monitor.reports)
        return sorted(merged, key=lambda r: r.t_us)

    @property
    def any_violation(self) -> bool:
        """Whether any monitor fired."""
        return any(m.violated for m in self.monitors)

    def first_violation_time(self) -> Optional[int]:
        """Host time of the earliest violation (detection latency metric)."""
        reports = self.reports()
        return reports[0].t_us if reports else None
