"""Integer geometry primitives for the scene graph."""

from __future__ import annotations

from typing import NamedTuple


class Point(NamedTuple):
    """A 2D point."""

    x: int
    y: int


class Size(NamedTuple):
    """A width/height pair."""

    w: int
    h: int


class Rect(NamedTuple):
    """An axis-aligned rectangle (x, y = top-left corner)."""

    x: int
    y: int
    w: int
    h: int

    @property
    def center(self) -> Point:
        """Center point (integer division)."""
        return Point(self.x + self.w // 2, self.y + self.h // 2)

    @property
    def right(self) -> int:
        """x of the right edge."""
        return self.x + self.w

    @property
    def bottom(self) -> int:
        """y of the bottom edge."""
        return self.y + self.h

    def contains(self, point: Point) -> bool:
        """Whether *point* lies inside (inclusive of edges)."""
        return (self.x <= point.x <= self.right
                and self.y <= point.y <= self.bottom)

    def intersects(self, other: "Rect") -> bool:
        """Whether two rectangles overlap (strictly)."""
        return not (self.right <= other.x or other.right <= self.x
                    or self.bottom <= other.y or other.bottom <= self.y)

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both."""
        x0 = min(self.x, other.x)
        y0 = min(self.y, other.y)
        x1 = max(self.right, other.right)
        y1 = max(self.bottom, other.bottom)
        return Rect(x0, y0, x1 - x0, y1 - y0)

    def inflate(self, margin: int) -> "Rect":
        """Grow by *margin* on every side."""
        return Rect(self.x - margin, self.y - margin,
                    self.w + 2 * margin, self.h + 2 * margin)
