"""ASCII backend: render a scene into a character grid.

Coarse but assertable: tests check that the right elements appear, that the
highlighted state is marked, and that figures regenerate deterministically.
"""

from __future__ import annotations

from repro.render.geometry import Point
from repro.render.scene import Scene, SceneNode
from repro.util.textgrid import TextGrid


def _draw_line(grid: TextGrid, p1: Point, p2: Point, arrow: bool) -> None:
    # Bresenham over character cells.
    x0, y0, x1, y1 = p1.x, p1.y, p2.x, p2.y
    dx, dy = abs(x1 - x0), abs(y1 - y0)
    sx = 1 if x0 < x1 else -1
    sy = 1 if y0 < y1 else -1
    err = dx - dy
    x, y = x0, y0
    ch = "-" if dx >= dy else "|"
    while True:
        grid.put(x, y, ch)
        if (x, y) == (x1, y1):
            break
        e2 = 2 * err
        if e2 > -dy:
            err -= dy
            x += sx
        if e2 < dx:
            err += dx
            y += sy
    if arrow:
        grid.put(x1, y1, ">" if dx >= dy else ("v" if y1 > y0 else "^"))


def _draw_node(grid: TextGrid, node: SceneNode, ox: int, oy: int) -> None:
    r = node.rect
    x, y = r.x + ox, r.y + oy
    highlighted = node.style.get("highlighted") == "true"
    error = node.style.get("error") == "true"
    label = node.label
    if error:
        label = f"!{label}!"
    elif highlighted:
        label = f"*{label}*"
    annotation = node.style.get("value", "")
    if annotation:
        label = f"{label}={annotation}"

    if node.shape in ("arrow", "line"):
        p1, p2 = node.endpoints
        _draw_line(grid, Point(p1.x + ox, p1.y + oy),
                   Point(p2.x + ox, p2.y + oy), node.shape == "arrow")
        return
    if node.shape == "label":
        grid.text(x, y, label)
        return
    if r.w >= 2 and r.h >= 2:
        grid.box(x, y, r.w, r.h, label=label)
        if node.shape == "circle":
            grid.put(x, y, "(")
            grid.put(x + r.w - 1, y, ")")
            grid.put(x, y + r.h - 1, "(")
            grid.put(x + r.w - 1, y + r.h - 1, ")")
        elif node.shape == "triangle":
            grid.put(x, y, "/")
            grid.put(x + r.w - 1, y, "\\")
    else:
        grid.text(x, y, label)


def scene_to_ascii(scene: Scene, max_width: int = 200,
                   max_height: int = 120) -> str:
    """Render *scene* to multi-line ASCII art."""
    bounds = scene.bounds().inflate(1)
    width = min(max_width, bounds.w + 2)
    height = min(max_height, bounds.h + 2)
    grid = TextGrid(max(width, len(scene.title) + 2, 4), max(height, 3))
    ox, oy = -bounds.x + 1, -bounds.y + 1

    # Edges below, shapes above (labels must stay readable).
    for node in scene.nodes():
        if node.shape in ("arrow", "line"):
            _draw_node(grid, node, ox, oy)
    for node in scene.nodes():
        if node.shape not in ("arrow", "line"):
            _draw_node(grid, node, ox, oy)

    art = grid.render()
    if scene.title:
        art = f"[{scene.title}]\n{art}"
    return art
