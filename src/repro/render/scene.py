"""A retained scene graph of drawable nodes."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import RenderError
from repro.render.geometry import Point, Rect

#: shape vocabulary shared by all backends
SHAPES = ("rect", "circle", "triangle", "arrow", "line", "label")


class SceneNode:
    """One drawable: a shape with bounds, label and style.

    For ``arrow``/``line`` shapes, ``endpoints`` carries the two anchor
    points and ``rect`` is their bounding box.
    """

    def __init__(self, node_id: str, shape: str, rect: Rect, label: str = "",
                 style: Optional[Dict[str, str]] = None, z: int = 0,
                 endpoints: Optional[Tuple[Point, Point]] = None) -> None:
        if shape not in SHAPES:
            raise RenderError(f"unknown shape {shape!r} (allowed: {SHAPES})")
        if shape in ("arrow", "line") and endpoints is None:
            raise RenderError(f"{shape} node {node_id!r} needs endpoints")
        self.id = node_id
        self.shape = shape
        self.rect = rect
        self.label = label
        self.style: Dict[str, str] = dict(style or {})
        self.z = z
        self.endpoints = endpoints

    def __repr__(self) -> str:
        return f"<SceneNode {self.id} {self.shape} at {tuple(self.rect)}>"


class Scene:
    """An ordered collection of scene nodes with z-sorting."""

    def __init__(self, title: str = "") -> None:
        self.title = title
        self._nodes: Dict[str, SceneNode] = {}

    def add(self, node: SceneNode) -> SceneNode:
        """Add a node (ids must be unique)."""
        if node.id in self._nodes:
            raise RenderError(f"scene already has a node {node.id!r}")
        self._nodes[node.id] = node
        return node

    def node(self, node_id: str) -> SceneNode:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise RenderError(f"no scene node {node_id!r}") from None

    def nodes(self) -> List[SceneNode]:
        """Nodes in draw order (z, then insertion)."""
        return sorted(self._nodes.values(), key=lambda n: n.z)

    def bounds(self) -> Rect:
        """Bounding box of the whole scene (0,0,1,1 when empty)."""
        nodes = list(self._nodes.values())
        if not nodes:
            return Rect(0, 0, 1, 1)
        box = nodes[0].rect
        for node in nodes[1:]:
            box = box.union(node.rect)
        return box

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes
