"""Animation frames: the model-behaviour movie GMDF shows at runtime.

Each frame is a lightweight snapshot of the debug model's dynamic style
(which elements are highlighted, annotated values), timestamped with the
command that caused it. Frames are cheap to capture (no scene rebuild), and
any frame can be rendered on demand by re-applying its styles.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class AnimationFrame:
    """One animation step: time, trigger and the dynamic style snapshot."""

    __slots__ = ("index", "t_us", "trigger", "styles")

    def __init__(self, index: int, t_us: int, trigger: str,
                 styles: Dict[str, Dict[str, str]]) -> None:
        self.index = index
        self.t_us = t_us
        self.trigger = trigger
        #: element id -> style dict at this instant
        self.styles = styles

    def highlighted(self) -> List[str]:
        """Ids of elements highlighted in this frame."""
        return sorted(
            element_id for element_id, style in self.styles.items()
            if style.get("highlighted") == "true"
        )

    def __repr__(self) -> str:
        return f"<AnimationFrame #{self.index} t={self.t_us}us {self.trigger}>"


class FrameSequence:
    """An append-only sequence of animation frames."""

    def __init__(self, max_frames: Optional[int] = None) -> None:
        self._frames: List[AnimationFrame] = []
        self.max_frames = max_frames
        self.dropped = 0

    def capture(self, t_us: int, trigger: str,
                styles: Dict[str, Dict[str, str]]) -> Optional[AnimationFrame]:
        """Append a frame (dropped silently past ``max_frames``)."""
        if self.max_frames is not None and len(self._frames) >= self.max_frames:
            self.dropped += 1
            return None
        frame = AnimationFrame(len(self._frames), t_us, trigger,
                               {k: dict(v) for k, v in styles.items()})
        self._frames.append(frame)
        return frame

    def frames(self) -> List[AnimationFrame]:
        """All captured frames in order."""
        return list(self._frames)

    def __len__(self) -> int:
        return len(self._frames)

    def __getitem__(self, index: int) -> AnimationFrame:
        return self._frames[index]

    def frame_at_time(self, t_us: int) -> Optional[AnimationFrame]:
        """Latest frame with timestamp <= *t_us* (None before the first)."""
        best: Optional[AnimationFrame] = None
        for frame in self._frames:
            if frame.t_us <= t_us:
                best = frame
            else:
                break
        return best
