"""Layout algorithms assigning geometry to abstract elements.

Three layouts cover GMDF's needs: a grid for heterogeneous element sets, a
circle for state machines (states around a ring keeps transition arrows
readable), and a layered left-to-right placement for dataflow DAGs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import RenderError
from repro.render.geometry import Rect


def grid_layout(ids: Sequence[str], cell_w: int = 16, cell_h: int = 6,
                gap: int = 4, columns: int = 0) -> Dict[str, Rect]:
    """Place elements left-to-right, top-to-bottom in a grid.

    ``columns=0`` picks a near-square column count.
    """
    if cell_w <= 0 or cell_h <= 0:
        raise RenderError("grid cells must have positive size")
    n = len(ids)
    if n == 0:
        return {}
    cols = columns if columns > 0 else max(1, math.ceil(math.sqrt(n)))
    placement: Dict[str, Rect] = {}
    for index, element_id in enumerate(ids):
        row, col = divmod(index, cols)
        placement[element_id] = Rect(
            col * (cell_w + gap), row * (cell_h + gap), cell_w, cell_h,
        )
    return placement


def circular_layout(ids: Sequence[str], cell_w: int = 14, cell_h: int = 5,
                    radius: int = 0) -> Dict[str, Rect]:
    """Place elements evenly on a circle (good for state machines)."""
    n = len(ids)
    if n == 0:
        return {}
    if n == 1:
        return {ids[0]: Rect(0, 0, cell_w, cell_h)}
    # A radius that keeps neighbours from overlapping horizontally.
    r = radius if radius > 0 else max(cell_w, round((cell_w + 4) * n / (2 * math.pi)) + cell_h)
    placement: Dict[str, Rect] = {}
    for index, element_id in enumerate(ids):
        angle = 2 * math.pi * index / n - math.pi / 2
        cx = round(r + r * math.cos(angle))
        cy = round(r + r * math.sin(angle))
        placement[element_id] = Rect(cx, cy, cell_w, cell_h)
    return placement


def layered_layout(ids: Sequence[str], edges: Sequence[Tuple[str, str]],
                   cell_w: int = 16, cell_h: int = 6,
                   h_gap: int = 10, v_gap: int = 3) -> Dict[str, Rect]:
    """Longest-path layering for a DAG; cycles fall back to discovery order.

    Produces the left-to-right block-diagram look of dataflow models:
    sources in the first column, each consumer right of its producers.
    """
    known = set(ids)
    adjacency: Dict[str, List[str]] = {i: [] for i in ids}
    indegree: Dict[str, int] = {i: 0 for i in ids}
    for src, dst in edges:
        if src not in known or dst not in known:
            raise RenderError(f"edge {src}->{dst} references unknown element")
        adjacency[src].append(dst)
        indegree[dst] += 1

    # Longest path from any source (Kahn order); cyclic leftovers get layer 0.
    layer: Dict[str, int] = {i: 0 for i in ids}
    ready = [i for i in ids if indegree[i] == 0]
    remaining = dict(indegree)
    order: List[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in adjacency[node]:
            layer[succ] = max(layer[succ], layer[node] + 1)
            remaining[succ] -= 1
            if remaining[succ] == 0:
                ready.append(succ)

    by_layer: Dict[int, List[str]] = {}
    for element_id in ids:
        by_layer.setdefault(layer[element_id], []).append(element_id)

    placement: Dict[str, Rect] = {}
    for layer_index in sorted(by_layer):
        for row, element_id in enumerate(by_layer[layer_index]):
            placement[element_id] = Rect(
                layer_index * (cell_w + h_gap),
                row * (cell_h + v_gap),
                cell_w, cell_h,
            )
    return placement


def assert_no_overlap(placement: Mapping[str, Rect]) -> None:
    """Raise RenderError if any two placed rectangles overlap (test helper)."""
    items = list(placement.items())
    for i, (id_a, rect_a) in enumerate(items):
        for id_b, rect_b in items[i + 1:]:
            if rect_a.intersects(rect_b):
                raise RenderError(f"layout overlap: {id_a} and {id_b}")
