"""SVG backend: serialize a scene to a standalone SVG document."""

from __future__ import annotations

from typing import List
from xml.sax.saxutils import escape

from repro.render.scene import Scene, SceneNode

#: style keys understood by this backend
_FILL_DEFAULT = "#f8f8f8"
_STROKE_DEFAULT = "#222222"
_HIGHLIGHT_FILL = "#ffd54d"
_ERROR_FILL = "#ff6b6b"

SCALE = 8  # abstract units -> pixels


def _fill_of(node: SceneNode) -> str:
    if node.style.get("error") == "true":
        return _ERROR_FILL
    if node.style.get("highlighted") == "true":
        return _HIGHLIGHT_FILL
    return node.style.get("fill", _FILL_DEFAULT)


def _node_svg(node: SceneNode) -> List[str]:
    x, y = node.rect.x * SCALE, node.rect.y * SCALE
    w, h = node.rect.w * SCALE, node.rect.h * SCALE
    stroke = node.style.get("stroke", _STROKE_DEFAULT)
    fill = _fill_of(node)
    stroke_width = 3 if node.style.get("highlighted") == "true" else 1
    parts: List[str] = []

    if node.shape == "rect":
        parts.append(
            f'<rect x="{x}" y="{y}" width="{w}" height="{h}" rx="4" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width}"/>'
        )
    elif node.shape == "circle":
        cx, cy = x + w // 2, y + h // 2
        r = min(w, h) // 2
        parts.append(
            f'<ellipse cx="{cx}" cy="{cy}" rx="{w // 2}" ry="{h // 2}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width}"/>'
        )
        del cy, r
    elif node.shape == "triangle":
        points = f"{x + w // 2},{y} {x},{y + h} {x + w},{y + h}"
        parts.append(
            f'<polygon points="{points}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_width}"/>'
        )
    elif node.shape in ("arrow", "line"):
        (p1, p2) = node.endpoints
        x1, y1 = p1.x * SCALE, p1.y * SCALE
        x2, y2 = p2.x * SCALE, p2.y * SCALE
        marker = ' marker-end="url(#arrowhead)"' if node.shape == "arrow" else ""
        dash = ' stroke-dasharray="6 3"' if node.style.get("pulse") else ""
        parts.append(
            f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}"{marker}{dash}/>'
        )
    # "label" shape draws text only.

    if node.label:
        center = node.rect.center
        tx, ty = center.x * SCALE, center.y * SCALE + 4
        annotation = node.style.get("value", "")
        text = node.label if not annotation else f"{node.label}={annotation}"
        parts.append(
            f'<text x="{tx}" y="{ty}" font-size="12" font-family="monospace" '
            f'text-anchor="middle">{escape(text)}</text>'
        )
    return parts


def scene_to_svg(scene: Scene) -> str:
    """Render *scene* to an SVG document string."""
    bounds = scene.bounds().inflate(4)
    width = (bounds.w + 2) * SCALE
    height = (bounds.h + 2) * SCALE
    offset_x = -bounds.x * SCALE + SCALE
    offset_y = -bounds.y * SCALE + SCALE
    body: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        "<defs>"
        '<marker id="arrowhead" markerWidth="10" markerHeight="8" '
        'refX="9" refY="4" orient="auto">'
        '<polygon points="0 0, 10 4, 0 8" fill="#222222"/>'
        "</marker></defs>",
        f'<g transform="translate({offset_x},{offset_y})">',
    ]
    if scene.title:
        body.append(
            f'<text x="4" y="-2" font-size="14" font-family="monospace" '
            f'font-weight="bold">{escape(scene.title)}</text>'
        )
    for node in scene.nodes():
        body.extend(_node_svg(node))
    body.append("</g></svg>")
    return "\n".join(body)
