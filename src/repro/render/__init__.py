"""Headless rendering: scene graph, layouts, SVG and ASCII backends.

Stands in for the Eclipse GEF canvas of the prototype. Every figure-like
artifact in the reproduction (model diagrams, animation frames, timing
diagrams, the abstraction-guide "screenshot") is produced through this
package, so experiments can both save SVGs and assert on ASCII output.
"""

from repro.render.geometry import Point, Rect, Size
from repro.render.scene import Scene, SceneNode
from repro.render.layout import circular_layout, grid_layout, layered_layout
from repro.render.svg import scene_to_svg
from repro.render.ascii_art import scene_to_ascii
from repro.render.animation import AnimationFrame, FrameSequence

__all__ = [
    "Point", "Size", "Rect",
    "Scene", "SceneNode",
    "grid_layout", "circular_layout", "layered_layout",
    "scene_to_svg",
    "scene_to_ascii",
    "AnimationFrame", "FrameSequence",
]
