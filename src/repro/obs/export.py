"""Chrome trace-event (Perfetto-compatible) export of campaigns and spans.

Renders the framework's modeled-time telemetry into the Trace Event
JSON format that ``chrome://tracing`` and https://ui.perfetto.dev open
directly: lanes (pid/tid) are boards, workers, and comm channels;
slices (``ph:"X"``) are activations, transactions, polls, and stored
trace events. Timestamps are the model's microseconds verbatim — the
format's ``ts``/``dur`` unit *is* microseconds, so no scaling happens
and a slice you measure in Perfetto is a modeled cost you can assert
on in a test.

Two sources, composable into one document:

* a :class:`~repro.tracedb.store.TraceStore` (per-job or merged
  campaign): every stored record becomes a slice — engine trace events
  on the command lane of their job's process, kernel
  :class:`~repro.rtos.task.JobRecord` spills as activation slices on
  their actor's lane;
* a :class:`~repro.obs.spans.SpanTracer` snapshot: live spans from an
  instrumented run (polls, session windows, activations), laned by
  their ``(process-ish, thread-ish)`` track.

Determinism: pid/tid assignment is by sorted lane name (never dict or
arrival order), events are emitted under a total sort, and the JSON is
canonical (sorted keys, fixed separators) — so same seed ⇒ byte-identical
export, which ``BENCH_obs.json``'s determinism fingerprint gates in CI.

CLI::

    python -m repro.obs.export --campaign <store-root> -o trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsSnapshot
from repro.obs.spans import Span, span_order
from repro.tracedb.store import TraceStore


def _slice(pid: int, tid: int, name: str, cat: str, ts: int, dur: int,
           args: Dict[str, Any]) -> Dict[str, Any]:
    return {"ph": "X", "pid": pid, "tid": tid, "name": name,
            "cat": cat or "repro", "ts": ts, "dur": max(0, dur),
            "args": args}


def _meta(pid: int, tid: int, what: str, name: str) -> Dict[str, Any]:
    # thread_name / process_name metadata events label the lanes
    return {"ph": "M", "pid": pid, "tid": tid, "name": what,
            "args": {"name": name}}


def _store_events(store: TraceStore) -> List[Dict[str, Any]]:
    """Render every stored record as a slice, lanes assigned canonically.

    Processes are jobs: a merged campaign store's ``job_index``/
    ``job_id`` stamps pick the pid (job_index + 1); a single-session
    store (no stamps) is pid 1, "session". Within a process, engine
    command events share the command lane (tid 1) and kernel job
    records get one lane per actor (tid 2..), so a campaign opens as
    one row of boards with their activations and commands side by side.
    """
    records = list(store.events())
    # -- canonical pid per job ------------------------------------------
    jobs: Dict[Tuple[int, str], None] = {}
    for rec in records:
        jobs.setdefault((rec.get("job_index", 0),
                         str(rec.get("job_id", "session"))), None)
    pid_of = {key: key[0] + 1 for key in jobs}
    # -- canonical tid per lane within each job -------------------------
    actors: Dict[Tuple[int, str], List[str]] = {}
    for rec in records:
        if "actor" in rec:
            key = (rec.get("job_index", 0),
                   str(rec.get("job_id", "session")))
            lane = actors.setdefault(key, [])
            if rec["actor"] not in lane:
                lane.append(rec["actor"])
    tid_of: Dict[Tuple[int, str, str], int] = {}
    events: List[Dict[str, Any]] = []
    for key in sorted(jobs):
        pid = pid_of[key]
        events.append(_meta(pid, 0, "process_name", key[1]))
        events.append(_meta(pid, 1, "thread_name", "commands"))
        for tid, actor in enumerate(sorted(actors.get(key, ())), start=2):
            tid_of[(key[0], key[1], actor)] = tid
            events.append(_meta(pid, tid, "thread_name", actor))
    for rec in records:
        key = (rec.get("job_index", 0), str(rec.get("job_id", "session")))
        pid = pid_of[key]
        if "actor" in rec:  # kernel JobRecord spill: an activation slice
            ts = rec.get("release", rec.get("t_target", 0))
            done = rec.get("completion")
            dur = 0 if done is None else done - ts
            events.append(_slice(
                pid, tid_of[(key[0], key[1], rec["actor"])],
                rec["actor"], "activation", ts, dur,
                {"index": rec.get("index"),
                 "deadline_abs": rec.get("deadline_abs"),
                 "skipped": bool(rec.get("skipped", False)),
                 "seq": rec.get("seq", rec.get("job_seq"))}))
            continue
        # engine trace event: host observation of one debug command
        ts = rec.get("t_target", 0)
        dur = rec.get("t_host", ts) - ts
        events.append(_slice(
            pid, 1, f"{rec.get('kind', 'EVENT')} {rec.get('path', '')}",
            "command", ts, dur,
            {"value": rec.get("value"),
             "engine_state": rec.get("engine_state"),
             "seq": rec.get("seq", rec.get("job_seq"))}))
    return events


def _span_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Render tracer spans, pids by sorted process-lane name."""
    spans = [Span(*s) for s in spans]
    procs = sorted({s.track[0] for s in spans})
    # store pids occupy 1..N-jobs; span pids start high to avoid clashes
    pid_of = {proc: 1000 + i for i, proc in enumerate(procs)}
    threads = sorted({s.track for s in spans})
    tid_of: Dict[Tuple[str, str], int] = {}
    events: List[Dict[str, Any]] = []
    for proc in procs:
        events.append(_meta(pid_of[proc], 0, "process_name", proc))
    next_tid: Dict[str, int] = {}
    for track in threads:
        tid = next_tid.get(track[0], 1)
        next_tid[track[0]] = tid + 1
        tid_of[track] = tid
        events.append(_meta(pid_of[track[0]], tid, "thread_name",
                            track[1] or track[0]))
    for s in sorted(spans, key=span_order):
        events.append(_slice(pid_of[s.track[0]], tid_of[s.track], s.name,
                             s.cat, s.ts_us, s.dur_us, dict(s.args)))
    return events


def _recorder_events(recorder) -> List[Dict[str, Any]]:
    """Render flight-recorder windows as Perfetto counter tracks.

    One process per recorded job (pids start at 2000, clear of store
    jobs at 1.. and span lanes at 1000..), one ``ph:"C"`` sample per
    counter series per window at the window's start — so a recorder
    replay draws the storm's shape (retry spikes, fault bursts) as
    counter graphs alongside the campaign's slice lanes.
    """
    windows = recorder.history()
    job_ids: Dict[int, str] = {}
    for window in windows:
        job_ids.setdefault(window.job_index, window.job_id)
    pid_of = {job_index: 2000 + rank
              for rank, job_index in enumerate(sorted(job_ids))}
    events: List[Dict[str, Any]] = []
    for job_index in sorted(job_ids):
        events.append(_meta(pid_of[job_index], 0, "process_name",
                            f"recorder:{job_ids[job_index]}"))
    for window in windows:
        pid = pid_of[window.job_index]
        for name in sorted(window.delta.counters):
            events.append({
                "ph": "C", "pid": pid, "tid": 0, "name": name,
                "ts": window.t_start_us,
                "args": {"value": window.delta.counter_total(name)}})
    return events


def chrome_trace(store: Optional[TraceStore] = None,
                 spans: Optional[Iterable[Span]] = None,
                 metrics: Optional[MetricsSnapshot] = None,
                 recorder=None,
                 title: str = "repro campaign") -> Dict[str, Any]:
    """Build one Trace Event JSON document from any mix of sources.

    Metric snapshots ride in ``otherData`` (Perfetto shows it in trace
    info) — counters have no timeline, so they annotate rather than
    draw; a :class:`~repro.obs.live.FlightRecorder` *does* have a
    timeline and draws as per-window counter tracks.
    """
    events: List[Dict[str, Any]] = []
    if store is not None:
        events.extend(_store_events(store))
    if spans is not None:
        events.extend(_span_events(spans))
    if recorder is not None:
        events.extend(_recorder_events(recorder))
    events.sort(key=lambda e: (e["ph"] != "M", e["pid"], e["tid"],
                               e.get("ts", -1), e["name"]))
    doc: Dict[str, Any] = {
        "displayTimeUnit": "ms",
        "otherData": {"title": title, "timeUnit": "modeled microseconds"},
        "traceEvents": events,
    }
    if metrics is not None:
        doc["otherData"]["metrics"] = metrics.to_dict()
    return doc


def render_bytes(doc: Dict[str, Any]) -> bytes:
    """Canonical encoding: the byte-identity surface CI fingerprints."""
    return (json.dumps(doc, sort_keys=True, separators=(",", ":"))
            + "\n").encode("ascii")


def export_campaign(store_root: str, out_path: Optional[str] = None,
                    metrics: Optional[MetricsSnapshot] = None,
                    title: str = "repro campaign") -> bytes:
    """Export the store at *store_root* to canonical trace JSON bytes,
    optionally writing them to *out_path*."""
    store = TraceStore.open(store_root)
    data = render_bytes(chrome_trace(store=store, metrics=metrics,
                                     title=title))
    if out_path:
        with open(out_path, "wb") as fh:
            fh.write(data)
    return data


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Export a tracedb store and/or a flight-recorder "
                    "file as Chrome trace-event JSON (open it at "
                    "https://ui.perfetto.dev).")
    parser.add_argument("--campaign", metavar="STORE_ROOT", default=None,
                        help="root directory of a tracedb store (a merged "
                             "campaign store or a single per-job store)")
    parser.add_argument("--flight-recorder", metavar="FILE", default=None,
                        help="a saved repro.obs.live flight-recorder JSON "
                             "file; its windows render as counter tracks")
    parser.add_argument("-o", "--out", default=None, metavar="PATH",
                        help="output file (default: stdout)")
    parser.add_argument("--title", default="repro campaign")
    opts = parser.parse_args(argv)
    if opts.campaign is None and opts.flight_recorder is None:
        parser.error("pass --campaign and/or --flight-recorder")
    store = (TraceStore.open(opts.campaign)
             if opts.campaign is not None else None)
    recorder = None
    if opts.flight_recorder is not None:
        from repro.obs.live import FlightRecorder
        recorder = FlightRecorder.load(opts.flight_recorder)
    data = render_bytes(chrome_trace(store=store, recorder=recorder,
                                     title=opts.title))
    if opts.out:
        with open(opts.out, "wb") as fh:
            fh.write(data)
        slices = data.count(b'"ph":"X"')
        counters = data.count(b'"ph":"C"')
        sys.stderr.write(f"wrote {opts.out}: {len(data)} bytes, "
                         f"{slices} slice(s), {counters} counter "
                         f"sample(s)\n")
    else:
        sys.stdout.write(data.decode("ascii"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
