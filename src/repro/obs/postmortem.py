"""Automated post-mortem reports for failed campaign jobs.

A fleet campaign run with ``strict=False`` hands back the jobs that
died on :attr:`CampaignResult.failures` — each a structured
``{"type", "message", "traceback"}`` plus the sealed per-job trace
store the worker spilled before dying (``JobResult.trace_path``; the
worker seals the store in a ``finally``, so the trace survives the
crash it describes). This module turns those raw materials into the
report a debugging engineer wants *first*:

* what died and how (error type/message, retry count, worker pid);
* the **fault pc** for target faults, recovered from the structured
  ``TargetFault`` message (``target fault at pc=N: reason``);
* **backtrace-style context**: the last N model-level events from the
  sealed store, most recent first — what the model was doing when the
  target died, in model terms (paths and states), not interpreter
  frames;
* transport/chaos counters at time of death, when a metrics snapshot
  is available (registry series from :mod:`repro.obs.metrics`).

Reports are deterministic plain text (no wall-clock, no absolute
paths beyond what the caller passed in) so they can be committed as
artifacts and diffed across runs.
"""

from __future__ import annotations

import os
import re
from typing import Any, Iterable, List, Optional

from repro.obs.metrics import MetricsSnapshot

_FAULT_PC = re.compile(r"pc=(-?\d+)")
_RULE = "-" * 72

#: counter-name prefixes worth quoting in a death report, in order
_DEATH_STATS = ("link.", "chaos.", "retry.", "transport.", "session.",
                "fleet.", "tracedb.")


def fault_pc_of(error: Optional[dict]) -> Optional[int]:
    """The faulting program counter, when the failure was a target fault.

    Recovered from the canonical :class:`~repro.errors.TargetFault`
    message (``target fault at pc=N: reason``); None for non-target
    failures or an unpinned fault (pc=-1).
    """
    if not error or error.get("type") != "TargetFault":
        return None
    match = _FAULT_PC.search(error.get("message", ""))
    if match is None:
        return None
    pc = int(match.group(1))
    return pc if pc >= 0 else None


def _event_line(rec: dict) -> str:
    if "actor" in rec:  # kernel JobRecord spill
        status = ("skipped" if rec.get("skipped")
                  else f"done@{rec.get('completion')}")
        return (f"  seq={rec.get('seq', rec.get('job_seq')):>6} "
                f"t={rec.get('release', 0):>9}us  activation "
                f"{rec['actor']}#{rec.get('index')} {status}")
    return (f"  seq={rec.get('seq', rec.get('job_seq')):>6} "
            f"t={rec.get('t_target', 0):>9}us  {rec.get('kind', 'EVENT'):<12} "
            f"{rec.get('path', '')}={rec.get('value')} "
            f"[{rec.get('engine_state', '?')}]")


def _store_tail(trace_path: str, tail: int) -> List[str]:
    if not trace_path:
        return ["  (job collected no trace)"]
    if not os.path.exists(os.path.join(trace_path, "index.json")):
        return [f"  (no store found under {os.path.basename(trace_path)!r})"]
    from repro.tracedb.store import TraceStore
    store = TraceStore.open(trace_path)
    total = store.event_count
    if total == 0:
        return ["  (store sealed empty: the job died before its first "
                "model event)"]
    lo = max(0, total - tail)
    recent = list(store.events((lo, total - 1)))
    lines = [_event_line(rec) for rec in reversed(recent)]
    if lo:
        lines.append(f"  ... {lo} earlier event(s) in the store")
    return lines


def _metrics_section(metrics: Optional[MetricsSnapshot]) -> List[str]:
    if metrics is None:
        return ["  (telemetry was disabled for this run)"]
    lines: List[str] = []
    for name in sorted(metrics.counters):
        if not name.startswith(_DEATH_STATS):
            continue
        for labels, value in sorted(metrics.counters[name].items()):
            if value == 0:
                continue
            tag = ",".join(f"{k}={v}" for k, v in labels)
            lines.append(f"  {name}{{{tag}}} = {value}" if tag
                         else f"  {name} = {value}")
    return lines or ["  (no transport/chaos counters fired)"]


def _recorder_section(recorder, job_index: int, top: int = 3) -> List[str]:
    """The trajectory into death: the job's last aggregated windows.

    Each surviving flight-recorder window for the job renders as one
    line with its *top* counter deltas (largest magnitude first, name
    tie-break) — how the storm built, not just where it landed.
    """
    windows = recorder.for_job(job_index)
    if not windows:
        return ["  (flight recorder holds no windows for this job)"]
    lines = []
    for window in windows:
        deltas = sorted(
            ((-abs(window.delta.counter_total(name)), name)
             for name in window.delta.counters),
            )[:top]
        detail = ", ".join(
            f"{name} {window.delta.counter_total(name):+d}"
            for _, name in deltas) or "(idle)"
        lines.append(f"  window {window.index:>3} "
                     f"[{window.t_start_us:>9}..{window.t_end_us:>9})us: "
                     f"{detail}")
    return lines


def job_postmortem(result, metrics: Optional[MetricsSnapshot] = None,
                   tail: int = 20, recorder=None) -> str:
    """Render one failed :class:`~repro.fleet.jobs.JobResult` as text.

    Accepts non-failed results too (reported as such) so callers can
    map it over a whole result list without filtering first. With a
    :class:`~repro.obs.live.FlightRecorder` the report gains the
    trajectory section — the job's last aggregated telemetry windows
    leading into the failure.
    """
    lines = [_RULE,
             f"POST-MORTEM  job #{result.index}  {result.job_id}",
             _RULE]
    if not getattr(result, "failed", False):
        lines.append("job completed normally; nothing to report")
        return "\n".join(lines) + "\n"
    error: dict = result.error
    lines.append(f"failure    : {error.get('type')}: {error.get('message')}")
    lines.append(f"retries    : {result.retries} isolated retry attempt(s) "
                 f"burned before this terminal failure")
    pc = fault_pc_of(error)
    if pc is not None:
        lines.append(f"fault pc   : {pc}")
    if result.fault is not None:
        lines.append(f"fault under test: {result.fault!r}")
    lines.append("")
    lines.append(f"last model events (most recent first, tail {tail}):")
    lines.extend(_store_tail(result.trace_path, tail))
    lines.append("")
    lines.append("transport/chaos counters at time of death:")
    lines.extend(_metrics_section(metrics))
    if recorder is not None:
        lines.append("")
        lines.append("flight recorder (trajectory into death):")
        lines.extend(_recorder_section(recorder, result.index))
    traceback_text = (error.get("traceback") or "").rstrip()
    if traceback_text:
        lines.append("")
        lines.append("worker traceback:")
        lines.extend("  " + ln for ln in traceback_text.splitlines())
    return "\n".join(lines) + "\n"


def campaign_postmortem(failures: Iterable[Any],
                        total_jobs: Optional[int] = None,
                        metrics: Optional[MetricsSnapshot] = None,
                        tail: int = 20, recorder=None) -> str:
    """One report over every failed job of a campaign.

    *failures* is ``CampaignResult.failures`` (or any JobResult
    iterable); pass the corpus size as *total_jobs* for the headline
    and a live-plane :class:`~repro.obs.live.FlightRecorder` as
    *recorder* for per-job trajectory sections. Deterministic:
    failures are reported in canonical job-index order regardless of
    completion order (size the recorder to the campaign — windows ≤
    capacity — so its surviving set is canonical too).
    """
    failures = sorted(failures, key=lambda r: r.index)
    headline = (f"CAMPAIGN POST-MORTEM: {len(failures)} failed job(s)"
                + (f" of {total_jobs}" if total_jobs is not None else ""))
    if not failures:
        return headline + "\n\nall jobs completed; nothing to report\n"
    sections = [headline, ""]
    sections.extend(job_postmortem(result, metrics=metrics, tail=tail,
                                   recorder=recorder)
                    for result in failures)
    return "\n".join(sections)
