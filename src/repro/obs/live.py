"""The live telemetry plane: heartbeats, windowed aggregation, recorder.

PR 8's observability is retrospective — registry snapshots read at
campaign end. This module makes the same books *streamable while the
campaign runs*, without giving up one bit of determinism:

* :class:`HeartbeatEmitter` (worker side) — hooks the ``OBS.live``
  slot. Instrumented sites feed it modeled time (kernel activation
  releases, session runs); the fleet worker feeds it job lifecycle.
  Every time modeled time crosses a window boundary it publishes the
  *delta* of the worker's registry since the last publish (small
  messages, associative merge), plus ``start``/``finish`` lifecycle
  events and periodic liveness beacons, through any callable sink — a
  multiprocessing queue's ``put`` in fleet workers,
  :meth:`LiveAggregator.feed` directly under the serial runner.
* :class:`LiveAggregator` (parent side) — merges deltas via the
  canonical :class:`~repro.obs.metrics.MetricsSnapshot` merge into
  per-job, per-window rollups; exposes ``current()`` (the running
  merged snapshot), ``history()`` (canonically-ordered windows),
  windowed rates and histogram percentiles, and evaluates
  :mod:`repro.obs.health` rules into the deterministic alert
  transcript.
* :class:`FlightRecorder` — a bounded ring of the last K aggregated
  windows, attachable to post-mortems (the *trajectory into death*)
  and serializable to a canonical JSON file the dashboard and the
  Perfetto exporter (``--flight-recorder``) can replay.

Determinism contract (the part worth being paranoid about): window
indexes are **modeled-µs buckets**, so which window a delta lands in is
decided by simulation time, never the wall clock. Campaign experiments
restart modeled time per phase, so the emitter clamps its clock
monotonically within a job. Worker registry series for *finished* jobs
are constant (bound stats anchors stay alive), so per-window deltas
isolate exactly the active job's changes — identically whether one
process runs every job (serial) or each worker runs a slice (fleet).
Worker pids and queue arrival order exist only as dashboard lane
decoration; everything canonical keys on ``(job_index, window_index)``.
Result: same master seed ⇒ byte-identical ``history()``, alerts and
transcript, serial vs fleet — gated by tests against the committed
``artifacts/obs_live_alerts.txt`` exemplar.

Dashboard::

    python -m repro.obs.live --demo                # run + render live
    python -m repro.obs.live --recorder flight.json  # replay a recording
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import OrderedDict
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from repro.obs import health
from repro.obs.metrics import MetricsSnapshot, percentile
from repro.obs.runtime import OBS

__all__ = ["HeartbeatConfig", "HeartbeatEmitter", "LiveAggregator",
           "FlightRecorder", "Window", "render_dashboard"]

#: lane index the emitter uses for modeled work outside any fleet job
#: (e.g. a long-lived DebugSession ticking the live plane directly)
AMBIENT_INDEX = -1


class HeartbeatConfig:
    """Cadence policy for the emitter (and window width for windows).

    * ``period_us`` — the aggregation window width in modeled
      microseconds; the emitter flushes a delta whenever modeled time
      crosses a ``period_us`` boundary (plus a residual flush at job
      finish). This is the one knob both sides must agree on — the
      aggregator's window indexes are ``t // period_us``.
    * ``every_jobs`` — liveness beacon cadence in *completed jobs*.
      Beacons carry no metric data (they feed wall-clock-ish worker
      lane status only), so any cadence is safe for determinism.
    """

    __slots__ = ("period_us", "every_jobs")

    def __init__(self, period_us: int = 250_000,
                 every_jobs: int = 1) -> None:
        if period_us < 1:
            raise ValueError(f"period_us must be >= 1, got {period_us}")
        if every_jobs < 1:
            raise ValueError(f"every_jobs must be >= 1, got {every_jobs}")
        self.period_us = period_us
        self.every_jobs = every_jobs

    def __repr__(self) -> str:
        return (f"<HeartbeatConfig period={self.period_us}us "
                f"every_jobs={self.every_jobs}>")


class HeartbeatEmitter:
    """Worker-side publisher living in the ``OBS.live`` slot.

    Messages are picklable plain tuples (kind first)::

        ("start",  source, job_index, job_id)
        ("window", source, job_index, job_id, window, t_us, delta)
        ("finish", source, job_index, job_id, window, t_us, status,
                   error_type, delta_or_None)
        ("beacon", source, jobs_done)

    ``delta`` is ``registry.snapshot().diff(last_published)`` — empty
    deltas are skipped (emptiness is itself deterministic, so serial
    and fleet skip the same windows). ``source`` identifies the
    publishing process for dashboard lanes and is never part of any
    canonical output. Modeled time is clamped monotone within a job
    because campaign experiments run two fresh simulators (model phase,
    then code phase) whose clocks both start at zero.
    """

    __slots__ = ("config", "sink", "source", "_last", "_job_index",
                 "_job_id", "_last_t", "_flushed", "_jobs_done")

    def __init__(self, config: HeartbeatConfig,
                 sink: Callable[[tuple], Any],
                 source: Any = None) -> None:
        self.config = config
        self.sink = sink
        if source is None:
            import os
            source = os.getpid()
        self.source = source
        self._last = MetricsSnapshot()
        self._job_index: Optional[int] = None
        self._job_id = ""
        self._last_t = 0
        self._flushed = -1     # highest window index already flushed
        self._jobs_done = 0

    # -- delta protocol ----------------------------------------------------

    def _delta(self) -> Optional[MetricsSnapshot]:
        registry = OBS.metrics
        if registry is None:
            return None
        snapshot = registry.snapshot()
        delta = snapshot.diff(self._last)
        self._last = snapshot
        return None if delta.empty() else delta

    def _rebaseline(self) -> None:
        registry = OBS.metrics
        self._last = (registry.snapshot() if registry is not None
                      else MetricsSnapshot())

    # -- lifecycle ---------------------------------------------------------

    def job_start(self, index: int, job_id: str) -> None:
        """A job begins: close any ambient lane, re-baseline, announce."""
        if self._job_index is not None:
            # an ambient lane (or an unfinished job — defensive) yields
            self.job_finish(self._job_index, self._job_id, "open")
        # changes between jobs are nobody's: attribute from here on only
        self._rebaseline()
        self._job_index = index
        self._job_id = job_id
        self._last_t = 0
        self._flushed = -1
        self.sink(("start", self.source, index, job_id))

    def tick(self, t_us: int) -> None:
        """Modeled time advanced; flush every newly-completed window.

        Ambient ticks (no job active) open the ambient lane so a plain
        instrumented session can stream without fleet plumbing.
        """
        if self._job_index is None:
            self.job_start(AMBIENT_INDEX, "ambient")
        if t_us > self._last_t:
            self._last_t = t_us
        done = self._last_t // self.config.period_us - 1
        if done > self._flushed:
            delta = self._delta()
            self._flushed = done
            if delta is not None:
                self.sink(("window", self.source, self._job_index,
                           self._job_id, done, self._last_t, delta))

    def job_finish(self, index: int, job_id: str, status: str,
                   error_type: str = "") -> None:
        """A job ended: publish the residual delta and the outcome."""
        delta = self._delta()
        window = self._last_t // self.config.period_us
        self.sink(("finish", self.source, index, job_id, window,
                   self._last_t, status, error_type, delta))
        self._job_index = None
        self._job_id = ""
        self._last_t = 0
        self._flushed = -1
        self._jobs_done += 1
        if self._jobs_done % self.config.every_jobs == 0:
            self.sink(("beacon", self.source, self._jobs_done))

    def close(self) -> None:
        """Flush any open (ambient) lane; the emitter can be reused."""
        if self._job_index is not None:
            self.job_finish(self._job_index, self._job_id, "open")


class Window:
    """One aggregated modeled-time bucket of one job's telemetry."""

    __slots__ = ("job_index", "job_id", "index", "t_start_us", "t_end_us",
                 "delta")

    def __init__(self, job_index: int, job_id: str, index: int,
                 t_start_us: int, t_end_us: int,
                 delta: MetricsSnapshot) -> None:
        self.job_index = job_index
        self.job_id = job_id
        self.index = index
        self.t_start_us = t_start_us
        self.t_end_us = t_end_us
        self.delta = delta

    def counter_total(self, name: str) -> int:
        return self.delta.counter_total(name)

    def percentile(self, name: str, q: float, **labels: Any
                   ) -> Optional[float]:
        """Windowed histogram percentile (None when the series is
        absent this window)."""
        return self.delta.histogram_percentile(name, q, **labels)

    def to_dict(self) -> Dict[str, Any]:
        return {"job_index": self.job_index, "job_id": self.job_id,
                "index": self.index, "t_start_us": self.t_start_us,
                "t_end_us": self.t_end_us, "delta": self.delta.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Window":
        return cls(data["job_index"], data["job_id"], data["index"],
                   data["t_start_us"], data["t_end_us"],
                   MetricsSnapshot.from_dict(data["delta"]))

    def __repr__(self) -> str:
        return (f"<Window job #{self.job_index} {self.job_id} "
                f"[{self.t_start_us}..{self.t_end_us})us>")


class _Lane:
    """Per-job aggregation state (internal)."""

    __slots__ = ("job_index", "job_id", "windows", "started", "finished",
                 "status", "error_type", "last_t_us", "start_rank",
                 "source")

    def __init__(self, job_index: int, job_id: str) -> None:
        self.job_index = job_index
        self.job_id = job_id
        self.windows: Dict[int, MetricsSnapshot] = {}
        self.started = False
        self.finished = False
        self.status = ""
        self.error_type = ""
        self.last_t_us = 0
        self.start_rank = 0
        self.source: Any = None


class FlightRecorder:
    """Bounded ring of the last *capacity* aggregated windows.

    Keyed by ``(job_index, window_index)`` — a window updated twice
    (periodic flush, then the finish residual) occupies one slot with
    the latest aggregate. Ring recency follows feed order, so with more
    windows than capacity the *surviving set* can differ between serial
    and fleet runs (arrival order is wall-clock there); size capacity
    to the campaign (windows ≤ capacity) when byte-stable post-mortems
    matter. Serialization is canonical JSON: windows in
    ``(job_index, window_index)`` order, sorted keys, ASCII.
    """

    __slots__ = ("capacity", "period_us", "alerts", "_ring")

    def __init__(self, capacity: int = 256,
                 period_us: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.period_us = period_us
        self.alerts: List[health.Alert] = []
        self._ring: "OrderedDict[Tuple[int, int], Window]" = OrderedDict()

    def push(self, window: Window) -> None:
        key = (window.job_index, window.index)
        self._ring.pop(key, None)
        self._ring[key] = window
        while len(self._ring) > self.capacity:
            self._ring.popitem(last=False)

    def windows(self) -> List[Window]:
        """Ring contents in recency order (oldest first)."""
        return list(self._ring.values())

    def history(self) -> List[Window]:
        """Ring contents in canonical ``(job, window)`` order."""
        return [self._ring[key] for key in sorted(self._ring)]

    def for_job(self, job_index: int) -> List[Window]:
        """This job's surviving windows, in window order."""
        return [self._ring[key] for key in sorted(self._ring)
                if key[0] == job_index]

    def current(self) -> MetricsSnapshot:
        """Merged snapshot over every surviving window."""
        out = MetricsSnapshot()
        for window in self.history():
            out = out.merge(window.delta)
        return out

    def evaluate(self) -> List[health.Alert]:
        """The alerts stamped at close time (already canonical)."""
        return list(self.alerts)

    def lanes(self) -> List[Dict[str, Any]]:
        rows: Dict[int, Dict[str, Any]] = {}
        for window in self.history():
            row = rows.setdefault(window.job_index, {
                "job_index": window.job_index, "job_id": window.job_id,
                "windows": 0, "last_t_us": 0, "status": "recorded",
                "source": "-"})
            row["windows"] += 1
            row["last_t_us"] = max(row["last_t_us"], window.t_end_us)
        return [rows[key] for key in sorted(rows)]

    # -- canonical file form ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"version": 1, "capacity": self.capacity,
                "period_us": self.period_us,
                "windows": [w.to_dict() for w in self.history()],
                "alerts": [a.to_dict() for a in self.alerts]}

    def to_bytes(self) -> bytes:
        return (json.dumps(self.to_dict(), sort_keys=True,
                           separators=(",", ":")) + "\n").encode("ascii")

    def save(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlightRecorder":
        recorder = cls(capacity=max(1, int(data.get("capacity", 256))),
                       period_us=int(data.get("period_us", 0)))
        for row in data.get("windows", ()):
            recorder.push(Window.from_dict(row))
        recorder.alerts = [health.Alert.from_dict(row)
                           for row in data.get("alerts", ())]
        return recorder

    @classmethod
    def load(cls, path: str) -> "FlightRecorder":
        with open(path, "rb") as fh:
            return cls.from_dict(json.loads(fh.read().decode("ascii")))

    def __repr__(self) -> str:
        return (f"<FlightRecorder {len(self._ring)}/{self.capacity} "
                f"window(s), {len(self.alerts)} alert(s)>")


class LiveAggregator:
    """Parent-side merge of heartbeat streams into windows + alerts.

    Feed it messages (:meth:`feed`, or :meth:`drain` over a
    multiprocessing queue); read ``current()`` / ``history()`` /
    ``evaluate()`` at any point — evaluation is a pure function of the
    canonical window set, so reading early never perturbs the final
    transcript. :meth:`close` finalizes: stall detection runs, alerts
    are stamped onto the flight recorder, and the transcript string is
    returned (idempotent).
    """

    def __init__(self, config: Optional[HeartbeatConfig] = None,
                 rules: Sequence[health.Rule] = health.DEFAULT_RULES,
                 recorder: Optional[FlightRecorder] = None,
                 stall_budget: int = 4,
                 on_update: Optional[Callable[["LiveAggregator"], None]]
                 = None) -> None:
        self.config = config if config is not None else HeartbeatConfig()
        self.rules = tuple(rules)
        self.recorder = (recorder if recorder is not None
                         else FlightRecorder())
        self.recorder.period_us = self.config.period_us
        #: a started-but-unfinished job is stalled once this many other
        #: jobs finished after its start heartbeat
        self.stall_budget = stall_budget
        self.on_update = on_update
        self._lanes: Dict[int, _Lane] = {}
        self._sources: Dict[Any, Dict[str, Any]] = {}
        self._merged = MetricsSnapshot()
        self._dirty = False
        self._finish_rank = 0
        self.messages = 0
        self.windows_fed = 0
        self._closed: Optional[str] = None

    # -- ingest ------------------------------------------------------------

    def _lane(self, job_index: int, job_id: str) -> _Lane:
        lane = self._lanes.get(job_index)
        if lane is None:
            lane = self._lanes[job_index] = _Lane(job_index, job_id)
        return lane

    def _source_row(self, source: Any) -> Dict[str, Any]:
        row = self._sources.get(source)
        if row is None:
            row = self._sources[source] = {
                "source": source, "jobs_done": 0, "current": "",
                "messages": 0}
        return row

    def _ingest_window(self, lane: _Lane, index: int, t_us: int,
                       delta: MetricsSnapshot) -> None:
        cur = lane.windows.get(index)
        lane.windows[index] = delta if cur is None else cur.merge(delta)
        lane.last_t_us = max(lane.last_t_us, t_us)
        if not self._dirty:
            self._merged = self._merged.merge(delta)
        self.windows_fed += 1
        period = self.config.period_us
        self.recorder.push(Window(
            lane.job_index, lane.job_id, index, index * period,
            (index + 1) * period, lane.windows[index]))

    def feed(self, msg: tuple) -> None:
        """Ingest one emitter message (any worker, any order)."""
        if self._closed is not None:
            raise RuntimeError("LiveAggregator is closed")
        kind = msg[0]
        self.messages += 1
        if kind == "window":
            _, source, job_index, job_id, index, t_us, delta = msg
            row = self._source_row(source)
            row["messages"] += 1
            row["current"] = job_id
            self._ingest_window(self._lane(job_index, job_id), index,
                                t_us, delta)
        elif kind == "start":
            _, source, job_index, job_id = msg
            lane = self._lane(job_index, job_id)
            if lane.windows and not lane.finished:
                # a retried job restarts from scratch: drop the partial
                # stream so it cannot double-count, recompute lazily
                lane.windows.clear()
                self._dirty = True
            lane.started = True
            lane.finished = False
            lane.source = source
            lane.start_rank = self._finish_rank
            row = self._source_row(source)
            row["messages"] += 1
            row["current"] = job_id
        elif kind == "finish":
            (_, source, job_index, job_id, index, t_us, status,
             error_type, delta) = msg
            lane = self._lane(job_index, job_id)
            if delta is not None:
                self._ingest_window(lane, index, t_us, delta)
            lane.finished = True
            lane.status = status
            lane.error_type = error_type
            lane.last_t_us = max(lane.last_t_us, t_us)
            self._finish_rank += 1
            row = self._source_row(source)
            row["messages"] += 1
            row["current"] = ""
        elif kind == "beacon":
            _, source, jobs_done = msg
            row = self._source_row(source)
            row["messages"] += 1
            row["jobs_done"] = jobs_done
        else:
            raise ValueError(f"unknown heartbeat message kind {kind!r}")
        if self.on_update is not None:
            self.on_update(self)

    def drain(self, queue: Any) -> int:
        """Ingest everything currently buffered on a mp queue."""
        import queue as _queue
        count = 0
        while True:
            try:
                msg = queue.get_nowait()
            except _queue.Empty:
                break
            self.feed(msg)
            count += 1
        return count

    # -- reads -------------------------------------------------------------

    def current(self) -> MetricsSnapshot:
        """The running merge of every ingested delta."""
        if self._dirty:
            merged = MetricsSnapshot()
            for window in self.history():
                merged = merged.merge(window.delta)
            self._merged = merged
            self._dirty = False
        return self._merged

    def history(self) -> List[Window]:
        """Every aggregated window in canonical (job, window) order."""
        period = self.config.period_us
        out: List[Window] = []
        for job_index in sorted(self._lanes):
            lane = self._lanes[job_index]
            for index in sorted(lane.windows):
                out.append(Window(job_index, lane.job_id, index,
                                  index * period, (index + 1) * period,
                                  lane.windows[index]))
        return out

    def lanes(self) -> List[Dict[str, Any]]:
        """Per-job lane rows for the dashboard, canonical order."""
        rows = []
        for job_index in sorted(self._lanes):
            lane = self._lanes[job_index]
            status = (lane.status if lane.finished
                      else "running" if lane.started else "?")
            if lane.error_type:
                status += f"({lane.error_type})"
            rows.append({"job_index": job_index, "job_id": lane.job_id,
                         "windows": len(lane.windows),
                         "last_t_us": lane.last_t_us, "status": status,
                         "source": lane.source})
        return rows

    def sources(self) -> List[Dict[str, Any]]:
        """Per-worker rows (lane decoration only — never canonical)."""
        return [self._sources[key]
                for key in sorted(self._sources, key=repr)]

    def _stalled(self) -> List[Tuple[int, str, str]]:
        stalled = []
        for job_index in sorted(self._lanes):
            lane = self._lanes[job_index]
            if (job_index >= 0 and lane.started and not lane.finished
                    and self._finish_rank - lane.start_rank
                    >= self.stall_budget):
                behind = self._finish_rank - lane.start_rank
                stalled.append((
                    job_index, lane.job_id,
                    f"no finish heartbeat while {behind} other job(s) "
                    f"completed (budget {self.stall_budget})"))
        return stalled

    def evaluate(self) -> List[health.Alert]:
        """Rules over the current canonical window set (pure read)."""
        return health.evaluate(self.history(), self.rules,
                               stalled=self._stalled())

    def transcript(self) -> str:
        """The canonical alert transcript for the current state."""
        jobs = sum(1 for idx in self._lanes if idx >= 0)
        return health.render_transcript(self.evaluate(),
                                        windows=len(self.history()),
                                        jobs=jobs)

    def close(self) -> str:
        """Finalize: stamp alerts onto the recorder, return transcript."""
        if self._closed is None:
            alerts = self.evaluate()
            self.recorder.alerts = alerts
            jobs = sum(1 for idx in self._lanes if idx >= 0)
            self._closed = health.render_transcript(
                alerts, windows=len(self.history()), jobs=jobs)
        return self._closed

    def __repr__(self) -> str:
        return (f"<LiveAggregator {len(self._lanes)} lane(s) "
                f"{self.windows_fed} window(s) fed, "
                f"{self.messages} message(s)>")


# -- plain-text dashboard --------------------------------------------------

def _rate_rows(source, top: int) -> List[str]:
    windows = source.history()
    if not windows:
        return ["  (no windows yet)"]
    merged = source.current()
    span = max(1, len(windows))
    rows = []
    for name in merged.counters:
        total = merged.counter_total(name)
        rows.append((-abs(total), name, total))
    rows.sort()
    out = []
    for _, name, total in rows[:top]:
        out.append(f"  {name:<34} {total:>12} total "
                   f"{total / span:>10.1f}/window")
    for name in sorted(merged.histograms):
        for labels_key in sorted(merged.histograms[name]):
            h = merged.histograms[name][labels_key]
            p50 = percentile(h, 50)
            p95 = percentile(h, 95)
            tag = ",".join(f"{k}={v}" for k, v in labels_key)
            label = f"{name}{{{tag}}}" if tag else name
            out.append(f"  {label:<34} p50={p50:.1f} p95={p95:.1f} "
                       f"n={h['count']}")
    return out or ["  (no counter series yet)"]


def render_dashboard(source, top: int = 8) -> str:
    """Plain-text dashboard over a :class:`LiveAggregator` or a loaded
    :class:`FlightRecorder` (both expose history/current/evaluate/lanes).
    """
    windows = source.history()
    alerts = source.evaluate()
    lanes = source.lanes()
    rule = "-" * 72
    lines = [f"LIVE TELEMETRY  {len(lanes)} lane(s)  "
             f"{len(windows)} window(s)  {len(alerts)} alert(s)", rule]
    lines.append("lanes:")
    if not lanes:
        lines.append("  (no heartbeats yet)")
    for row in lanes:
        lines.append(f"  job #{row['job_index']:>3} {row['job_id']:<32} "
                     f"{row['windows']:>3} window(s)  "
                     f"t={row['last_t_us']:>9}us  {row['status']}")
    workers = getattr(source, "sources", None)
    if workers is not None:
        rows = workers()
        if rows:
            lines.append("workers:")
            for row in rows:
                current = row["current"] or "idle"
                lines.append(f"  {str(row['source']):<12} "
                             f"{row['jobs_done']:>3} job(s) done  "
                             f"{row['messages']:>4} msg(s)  {current}")
    lines.append(f"top {top} series by windowed rate:")
    lines.extend(_rate_rows(source, top))
    lines.append("active alerts:")
    if not alerts:
        lines.append("  (none)")
    else:
        lines.extend("  " + alert.line() for alert in alerts)
    return "\n".join(lines) + "\n"


# -- CLI -------------------------------------------------------------------

def _demo(window_us: int, workers: int, duration_us: int,
          save_recorder: str) -> str:
    """A small deterministic heartbeat campaign rendered live."""
    from repro.comdes.examples import traffic_light_system
    from repro.experiments import (
        traffic_light_code_watches,
        traffic_light_monitor_suite,
    )
    from repro.faults import run_campaign
    from repro.fleet import FleetRunner, SerialRunner

    aggregator = LiveAggregator(HeartbeatConfig(period_us=window_us))
    if workers > 1:
        runner = FleetRunner(workers=workers, live=aggregator)
    else:
        runner = SerialRunner(live=aggregator)
    run_campaign(
        traffic_light_system, traffic_light_monitor_suite,
        traffic_light_code_watches, runner=runner,
        design_kinds=("wrong_target",), impl_kinds=("inverted_branch",),
        comm_kinds=("frame_loss",), seeds=(1,), duration_us=duration_us)
    transcript = aggregator.close()
    if save_recorder:
        aggregator.recorder.save(save_recorder)
    return render_dashboard(aggregator) + "\n" + transcript


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.live",
        description="Plain-text live-telemetry dashboard: render a "
                    "recorded flight-recorder file, or run the built-in "
                    "deterministic demo campaign with heartbeats on.")
    parser.add_argument("--recorder", metavar="FILE", default=None,
                        help="render a saved flight-recorder JSON file")
    parser.add_argument("--demo", action="store_true",
                        help="run the demo campaign and render it")
    parser.add_argument("--window-us", type=int, default=250_000,
                        help="aggregation window width in modeled µs "
                             "(demo; default 250000)")
    parser.add_argument("--workers", type=int, default=1,
                        help="demo fleet size (1 = serial runner)")
    parser.add_argument("--duration-us", type=int, default=1_000_000,
                        help="demo experiment horizon in modeled µs")
    parser.add_argument("--save-recorder", metavar="FILE", default="",
                        help="with --demo: also save the flight "
                             "recorder to FILE")
    opts = parser.parse_args(argv)
    if opts.recorder is None and not opts.demo:
        parser.error("pass --recorder FILE and/or --demo")
    if opts.recorder is not None:
        recorder = FlightRecorder.load(opts.recorder)
        sys.stdout.write(render_dashboard(recorder))
    if opts.demo:
        sys.stdout.write(_demo(opts.window_us, opts.workers,
                               opts.duration_us, opts.save_recorder))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
