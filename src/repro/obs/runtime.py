"""Process-wide observability switch: one holder, one None check.

Instrumented code across the stack (links, channels, sessions, the
fleet, the tracedb store) all asks the same question on its hot path:
*is telemetry on?* The answer has to be cheap enough to ask millions of
times per second when the answer is no — the repo's zero-cost-when-
unused discipline (see ``repro.obs``'s package docstring and the
``obs.*_disabled_ratio`` ceilings in benchmarks/FLOORS.json).

The mechanism is a single module-global holder, :data:`OBS`, with
three slots: ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`
or ``None``), ``spans`` (a :class:`~repro.obs.spans.SpanTracer` or
``None``) and ``live`` (a :class:`~repro.obs.live.HeartbeatEmitter` or
``None`` — the streaming plane, installed by fleet runners rather than
by :func:`enable`). Disabled means the slot is ``None``, so the guard
an instrumentation site pays is one attribute load and an
``is not None`` test — no dict lookup, no call, no allocation:

    from repro.obs.runtime import OBS
    ...
    if OBS.metrics is not None:
        OBS.metrics.counter("poll.failed", channel=self.label).inc()

Scope and lifetime:

* The holder is **per process**. Fleet pool workers start with
  telemetry off unless the worker enables it in-process; parent-side
  fleet instrumentation (job lifecycle in ``fleet/pool.py``) covers the
  multiprocess path, and picklable snapshots merge worker-side data
  back when a runner opts in (``SerialRunner``/``BatchRunner`` run in
  the caller's process, so their telemetry lands directly).
* Components *bind* their stats surfaces at construction time
  (``MetricsRegistry.bind_stats``), so enable telemetry **before**
  building the stack you want observed. ``observed()`` scopes this
  naturally.
* The registry/tracer hold strong references to what they observe;
  scope them to a run (the context manager) rather than a process
  lifetime when observing throwaway stacks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer


class _ObsState:
    """The holder. One per process; every slot ``None`` when disabled.

    ``live`` is the streaming plane's slot (a
    :class:`~repro.obs.live.HeartbeatEmitter`); unlike the other two it
    is managed by whoever owns the delta stream — fleet runners install
    it around a run — so :func:`enable` leaves it alone and
    :func:`disable` clears it like everything else.
    """

    __slots__ = ("metrics", "spans", "live")

    def __init__(self) -> None:
        self.metrics: Optional[MetricsRegistry] = None
        self.spans: Optional[SpanTracer] = None
        self.live = None  # Optional[repro.obs.live.HeartbeatEmitter]


#: The process-wide telemetry holder. Import the *holder* (module
#: attribute rebinding would go stale); test ``OBS.metrics is not None``
#: on hot paths.
OBS = _ObsState()


def enable(metrics: bool = True, spans: bool = True,
           registry: Optional[MetricsRegistry] = None,
           tracer: Optional[SpanTracer] = None
           ) -> Tuple[Optional[MetricsRegistry], Optional[SpanTracer]]:
    """Turn telemetry on; returns ``(registry, tracer)`` (None if off).

    Passing an existing *registry*/*tracer* resumes into it (e.g. a
    worker continuing a parent-provided registry); otherwise fresh
    instances are created for the enabled facets.
    """
    OBS.metrics = (registry if registry is not None
                   else MetricsRegistry()) if metrics else None
    OBS.spans = (tracer if tracer is not None
                 else SpanTracer()) if spans else None
    return OBS.metrics, OBS.spans


def disable() -> None:
    """Turn all telemetry off (hot paths go back to one None check)."""
    OBS.metrics = None
    OBS.spans = None
    OBS.live = None


def enabled() -> bool:
    """True if any telemetry facet is currently on."""
    return (OBS.metrics is not None or OBS.spans is not None
            or OBS.live is not None)


@contextmanager
def observed(metrics: bool = True, spans: bool = True
             ) -> Iterator[Tuple[Optional[MetricsRegistry],
                                 Optional[SpanTracer]]]:
    """Scope telemetry to a block; restores the prior state on exit.

        with observed() as (reg, tracer):
            session = build_session(...)   # binds into reg
            session.run(10_000)
        snap = reg.snapshot()
    """
    prior = (OBS.metrics, OBS.spans, OBS.live)
    try:
        yield enable(metrics=metrics, spans=spans)
    finally:
        OBS.metrics, OBS.spans, OBS.live = prior
