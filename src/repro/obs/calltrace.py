"""Flame-style calltrace aggregation: pc samples and stored emit sites.

Two aggregation axes, both producing collapsed-stack frames (the
``flamegraph.pl`` / speedscope text format: ``root;frame;leaf count``
per line) so standard tooling renders them:

* **pc rollup** — ground truth from the interpreter. ``Cpu.run(
  pc_profile={})`` counts every retired instruction by address (the
  per-pc sibling of the PR-7 opcode profile); :func:`pc_rollup` folds
  those counts through the firmware's task entries and per-instruction
  source map (``Instr.src_path``) into ``task → model element → pc``
  frames. This is the "where does target time go" view, weighted by
  retired instructions.
* **emit-site rollup** — observational, from stored traces.
  :func:`store_rollup` aggregates a tracedb store's records by job and
  command path (the model-element emit site), weighted by occurrence.
  This is the "what does the host observe" view over a million-event
  campaign store, streamed segment by segment.

Both are pure functions over plain data: no registry, no global state,
deterministic output ordering (sorted frames), so rollups diff cleanly
between runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

PRELUDE = "<prelude>"


def task_of_pc(firmware, pc: int) -> str:
    """Which task's code region *pc* falls in.

    Firmware lays task bodies out sequentially; a pc belongs to the
    task with the greatest entry address <= pc. Code before the first
    entry (shared prologues) books under ``<prelude>``.
    """
    best_task, best_entry = PRELUDE, -1
    for task, entry in firmware.entries.items():
        if best_entry < entry <= pc:
            best_task, best_entry = task, entry
    return best_task


def pc_rollup(firmware, pc_counts: Mapping[int, int]
              ) -> List[Tuple[Tuple[str, ...], int]]:
    """Fold per-pc retired-instruction counts into flame frames.

    Returns sorted ``((task, element, "pc:N"), count)`` rows; *element*
    is the instruction's ``src_path`` (the model element the codegen
    attributed it to) or ``<anon>`` where codegen left no attribution.
    """
    rows: Dict[Tuple[str, ...], int] = {}
    code = firmware.code
    for pc in sorted(pc_counts):
        count = pc_counts[pc]
        element = None
        if 0 <= pc < len(code):
            element = getattr(code[pc], "src_path", None)
        frame = (task_of_pc(firmware, pc), element or "<anon>", f"pc:{pc}")
        rows[frame] = rows.get(frame, 0) + count
    return sorted(rows.items())


def profile_activation(cpu, firmware, task: str,
                       max_instructions: int = 1_000_000
                       ) -> List[Tuple[Tuple[str, ...], int]]:
    """Run one activation of *task* under a pc profile and roll it up.

    Convenience wrapper: points the cpu at the task entry, runs it with
    ``pc_profile`` collection on (the checked loop — measurement, not
    the fast path), and folds the counts through *firmware*'s source
    map.
    """
    pc_counts: Dict[int, int] = {}
    cpu.pc = firmware.entry_of(task)
    cpu.halted = False
    cpu.run(max_instructions, pc_profile=pc_counts)
    return pc_rollup(firmware, pc_counts)


def store_rollup(store, weight_key: Optional[str] = None
                 ) -> List[Tuple[Tuple[str, ...], int]]:
    """Aggregate a tracedb store's records into emit-site flame frames.

    Frames are ``(job, kind, *path components)`` — a merged campaign
    store fans out per job (``job_id``), a single-session store books
    everything under ``session``. Weight is 1 per record, or the
    record's *weight_key* value when given (e.g. ``"demand_us"`` over a
    kernel spill store weights frames by modeled CPU time).
    """
    rows: Dict[Tuple[str, ...], int] = {}
    for rec in store.events():
        job = str(rec.get("job_id", "session"))
        if "actor" in rec:  # kernel JobRecord spill
            frame = (job, "activation", rec["actor"])
        else:
            path = str(rec.get("path", "")) or "<no-path>"
            frame = (job, str(rec.get("kind", "EVENT")), *path.split("."))
        weight = 1
        if weight_key is not None:
            value = rec.get(weight_key)
            if isinstance(value, int) and not isinstance(value, bool):
                weight = value
        rows[frame] = rows.get(frame, 0) + weight
    return sorted(rows.items())


def flame_lines(rollup: Iterable[Tuple[Tuple[str, ...], int]]) -> List[str]:
    """Collapsed-stack text: one ``a;b;c count`` line per frame, sorted.

    Feed the joined lines to ``flamegraph.pl`` or paste into
    https://www.speedscope.app.
    """
    return [f"{';'.join(frame)} {count}" for frame, count in sorted(rollup)]
