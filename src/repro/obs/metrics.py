"""Metrics registry: labeled counters/gauges/histograms + canonical snapshots.

The registry is the unification layer over the stack's ad-hoc stats
surfaces: ``DebugLink.stats()`` (transaction accounting), chaos/retry
outcome counters, ``DebugSession.transport_stats()``, BatchCpu's
splits/merges/peels, tracedb segment I/O. Each of those dicts stays
exactly what it was — the registry *binds* them (:meth:`MetricsRegistry.
bind_stats`) and reads them once at snapshot time, so the existing
dict-returning APIs become the source of truth for registry series
without adding a single instruction to their hot paths.

Three instrument kinds, all with labeled series:

* :class:`Counter` — monotone int, ``inc(n)``.
* :class:`Gauge` — last-write-wins value, ``set(v)``.
* :class:`Histogram` — fixed-bound bucket counts + sum/count,
  ``observe(v)``.

A *series* is ``(name, sorted label items)``; asking for the same
name+labels twice returns the same instrument, so call sites can be
naive. Instruments are plain-slot objects — ``inc`` is one integer add.

Snapshots (:class:`MetricsSnapshot`) are picklable plain data with
**canonical merge** semantics, the same discipline as
``fleet.merge.merge_results`` and the tracedb campaign merge: counters
and histograms sum per-series, gauges take the right-hand value,
ordering is deterministic. Fleet workers can therefore ship snapshots
upward and the merged result is independent of arrival order up to the
documented gauge rule.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

LabelsKey = Tuple[Tuple[str, str], ...]

#: Default histogram bounds: powers-of-4 microsecond-ish ladder wide
#: enough for both per-poll costs (~1e2) and whole-run spans (~1e7).
DEFAULT_BOUNDS: Tuple[int, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304)


def _labels_key(labels: Mapping[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotone counter; one series of one registry."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins value; one series of one registry."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, v: int) -> None:
        self.value = v


class Histogram:
    """Fixed-bound histogram: counts per bucket (+overflow), sum, count."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[int, ...] = DEFAULT_BOUNDS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, v: int) -> None:
        self.sum += v
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def percentile(self, q: float) -> Optional[float]:
        """Bucket-interpolated percentile; see :func:`percentile`."""
        return percentile(self, q)


def percentile(hist: Any, q: float) -> Optional[float]:
    """Bucket-interpolated percentile of a histogram series.

    Accepts either a live :class:`Histogram` instrument or the plain
    snapshot dict form (``{"bounds", "counts", "sum", "count"}``).
    Within a bucket the value is linearly interpolated between the
    previous bound and the bucket's own bound, and the estimate is
    **exact on recorded bounds**: when the requested rank lands exactly
    on a bucket's cumulative count, the bucket's upper bound is returned
    unfudged. Observations past the last bound (the overflow bucket)
    have no upper edge to interpolate against and clamp to
    ``bounds[-1]``. Returns ``None`` for an empty series.
    """
    if isinstance(hist, Histogram):
        bounds, counts, count = hist.bounds, hist.counts, hist.count
    else:
        bounds, counts, count = (tuple(hist["bounds"]),
                                 list(hist["counts"]), hist["count"])
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if count <= 0:
        return None
    rank = q * count / 100.0
    cum = 0
    lo = 0
    for i, bound in enumerate(bounds):
        c = counts[i]
        if c:
            if cum + c >= rank:
                if rank <= cum:  # q == 0 lands on the bucket's low edge
                    return float(lo)
                return lo + (rank - cum) / c * (bound - lo)
            cum += c
        lo = bound
    return float(bounds[-1])


class MetricsSnapshot:
    """Picklable point-in-time registry state with canonical merge.

    Plain-data mirrors of the registry's series::

        counters   {name: {labels_key: int}}
        gauges     {name: {labels_key: int}}
        histograms {name: {labels_key: {"bounds","counts","sum","count"}}}

    ``merge`` sums counters and histograms per series, lets the
    right-hand gauge win, and never mutates its operands — so folding a
    list of worker snapshots is associative and order-independent
    except for the documented gauge rule.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Dict[LabelsKey, int]] = {}
        self.gauges: Dict[str, Dict[LabelsKey, int]] = {}
        self.histograms: Dict[str, Dict[LabelsKey, Dict[str, Any]]] = {}

    # -- reads -------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> int:
        """Counter series value (0 if the series never fired)."""
        return self.counters.get(name, {}).get(_labels_key(labels), 0)

    def gauge(self, name: str, **labels: Any) -> int:
        return self.gauges.get(name, {}).get(_labels_key(labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all label sets."""
        return sum(self.counters.get(name, {}).values())

    def series(self, name: str) -> List[Tuple[LabelsKey, int]]:
        """All ``(labels_key, value)`` pairs of a counter/gauge name,
        in canonical (sorted) label order."""
        table = self.counters.get(name) or self.gauges.get(name) or {}
        return sorted(table.items())

    def histogram_percentile(self, name: str, q: float,
                             **labels: Any) -> Optional[float]:
        """:func:`percentile` of one histogram series (None if absent)."""
        h = self.histograms.get(name, {}).get(_labels_key(labels))
        return None if h is None else percentile(h, q)

    def empty(self) -> bool:
        """True when no series carries any data (the delta-skip test)."""
        return not (self.counters or self.gauges or self.histograms)

    # -- merge -------------------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        out = MetricsSnapshot()
        for snap in (self, other):
            for name, table in snap.counters.items():
                dst = out.counters.setdefault(name, {})
                for key, value in table.items():
                    dst[key] = dst.get(key, 0) + value
            for name, table in snap.gauges.items():
                dst = out.gauges.setdefault(name, {})
                dst.update(table)
            for name, table in snap.histograms.items():
                dst = out.histograms.setdefault(name, {})
                for key, h in table.items():
                    cur = dst.get(key)
                    if cur is None:
                        dst[key] = {"bounds": tuple(h["bounds"]),
                                    "counts": list(h["counts"]),
                                    "sum": h["sum"], "count": h["count"]}
                        continue
                    if tuple(cur["bounds"]) != tuple(h["bounds"]):
                        raise ValueError(
                            f"histogram {name!r} bucket bounds differ "
                            "between snapshots; cannot merge")
                    cur["counts"] = [a + b for a, b
                                     in zip(cur["counts"], h["counts"])]
                    cur["sum"] += h["sum"]
                    cur["count"] += h["count"]
        return out

    def diff(self, prev: "MetricsSnapshot") -> "MetricsSnapshot":
        """The incremental change since *prev* — the heartbeat delta.

        Counters and histograms subtract per series (zero-change series
        are omitted, so an idle window diffs to an :meth:`empty`
        snapshot; negative deltas are legal — bound stats surfaces may
        shrink, e.g. a shed watch list — and re-merge correctly).
        Gauges carry their *current* value, included only when it
        changed, so folding a delta chain with :meth:`merge`
        reconstructs the full snapshot under the documented
        last-write-wins gauge rule. Never mutates either operand.
        """
        out = MetricsSnapshot()
        for name, table in self.counters.items():
            ptable = prev.counters.get(name, {})
            dst = None
            for key, value in table.items():
                d = value - ptable.get(key, 0)
                if d:
                    if dst is None:
                        dst = out.counters.setdefault(name, {})
                    dst[key] = d
        for name, table in self.gauges.items():
            ptable = prev.gauges.get(name, {})
            dst = None
            for key, value in table.items():
                if key not in ptable or ptable[key] != value:
                    if dst is None:
                        dst = out.gauges.setdefault(name, {})
                    dst[key] = value
        for name, table in self.histograms.items():
            ptable = prev.histograms.get(name, {})
            for key, h in table.items():
                p = ptable.get(key)
                if p is not None and tuple(p["bounds"]) != tuple(h["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ "
                        "between snapshots; cannot diff")
                if p is None:
                    if h["count"]:
                        out.histograms.setdefault(name, {})[key] = {
                            "bounds": tuple(h["bounds"]),
                            "counts": list(h["counts"]),
                            "sum": h["sum"], "count": h["count"]}
                    continue
                if h["count"] != p["count"] or h["sum"] != p["sum"]:
                    out.histograms.setdefault(name, {})[key] = {
                        "bounds": tuple(h["bounds"]),
                        "counts": [a - b for a, b
                                   in zip(h["counts"], p["counts"])],
                        "sum": h["sum"] - p["sum"],
                        "count": h["count"] - p["count"]}
        return out

    # -- canonical plain form ---------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-able form: every level sorted."""
        def render(table: Dict[LabelsKey, Any],
                   value_fn: Callable[[Any], Any]) -> List[Dict[str, Any]]:
            return [{"labels": dict(key), "value": value_fn(v)}
                    for key, v in sorted(table.items())]

        return {
            "counters": {name: render(self.counters[name], int)
                         for name in sorted(self.counters)},
            "gauges": {name: render(self.gauges[name], int)
                       for name in sorted(self.gauges)},
            "histograms": {
                name: render(self.histograms[name],
                             lambda h: {"bounds": list(h["bounds"]),
                                        "counts": list(h["counts"]),
                                        "sum": h["sum"],
                                        "count": h["count"]})
                for name in sorted(self.histograms)},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        snap = cls()
        for name, rows in data.get("counters", {}).items():
            snap.counters[name] = {
                _labels_key(row["labels"]): int(row["value"]) for row in rows}
        for name, rows in data.get("gauges", {}).items():
            snap.gauges[name] = {
                _labels_key(row["labels"]): int(row["value"]) for row in rows}
        for name, rows in data.get("histograms", {}).items():
            snap.histograms[name] = {
                _labels_key(row["labels"]): {
                    "bounds": tuple(row["value"]["bounds"]),
                    "counts": list(row["value"]["counts"]),
                    "sum": row["value"]["sum"],
                    "count": row["value"]["count"],
                } for row in rows}
        return snap


class MetricsRegistry:
    """Get-or-create instrument registry with late-bound stats views.

    Direct instruments (``counter``/``gauge``/``histogram``) are for
    event-shaped facts counted where they happen. ``bind_stats`` is for
    components that already keep books — the bound dict is read once
    per :meth:`snapshot` and folded into counter series named
    ``{prefix}.{key}``, so the existing stats surface *is* the registry
    series and the component's hot path is untouched.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}
        # (prefix, stats_fn, static labels, label_keys), deduped by owner
        self._bound: List[Tuple[str, Callable[[], Mapping[str, Any]],
                                Dict[str, Any], Tuple[str, ...]]] = []
        self._bound_owners: set = set()
        self._bound_anchors: List[object] = []

    # -- direct instruments ------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labels_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labels_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str,
                  bounds: Tuple[int, ...] = DEFAULT_BOUNDS,
                  **labels: Any) -> Histogram:
        key = (name, _labels_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(bounds)
        return inst

    # -- late-bound stats surfaces ----------------------------------------

    def bind_stats(self, prefix: str,
                   stats_fn: Callable[[], Mapping[str, Any]],
                   owner: Optional[object] = None,
                   label_keys: Tuple[str, ...] = (),
                   **labels: Any) -> None:
        """Register *stats_fn* as a lazy series source under *prefix*.

        At snapshot time ``stats_fn()`` is called and every numeric
        value folds into the counter series ``{prefix}.{key}`` with the
        given static *labels* (non-numeric values are skipped).
        *label_keys* names stats-dict entries that become labels
        instead — e.g. ``("kind", "label")`` for link stats, so the
        dict's own identity fields tag its series, read late enough to
        see wrapper/channel reassignment. Multiple bindings landing on
        the same series sum. Re-binding the same *owner* (default: the
        function object) under the same prefix is a no-op, so
        construction-time binding is idempotent.
        """
        anchor = owner if owner is not None else stats_fn
        ident = (prefix, id(anchor))
        if ident in self._bound_owners:
            return
        self._bound_owners.add(ident)
        # pin the anchor: ids are only unique among *live* objects, so
        # the dedupe set is meaningless unless every anchor stays alive
        self._bound_anchors.append(anchor)
        self._bound.append((prefix, stats_fn, dict(labels),
                            tuple(label_keys)))

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        snap = MetricsSnapshot()
        for (name, key), c in self._counters.items():
            table = snap.counters.setdefault(name, {})
            table[key] = table.get(key, 0) + c.value
        for (name, key), g in self._gauges.items():
            snap.gauges.setdefault(name, {})[key] = g.value
        for (name, key), h in self._histograms.items():
            snap.histograms.setdefault(name, {})[key] = {
                "bounds": h.bounds, "counts": list(h.counts),
                "sum": h.sum, "count": h.count}
        for prefix, stats_fn, labels, label_keys in self._bound:
            stats = stats_fn()
            if label_keys:
                labels = dict(labels)
                labels.update((k, stats[k]) for k in label_keys
                              if k in stats)
            key = _labels_key(labels)
            for stat_name, value in stats.items():
                if stat_name in label_keys:
                    continue
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue
                table = snap.counters.setdefault(f"{prefix}.{stat_name}", {})
                table[key] = table.get(key, 0) + int(value)
        return snap


def merge_snapshots(snaps: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold snapshots left-to-right under the canonical merge."""
    out = MetricsSnapshot()
    for snap in snaps:
        out = out.merge(snap)
    return out
