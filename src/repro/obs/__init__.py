"""repro.obs — unified observability: metrics, spans, export, post-mortems.

Every subsystem in this framework already keeps books — link
transaction accounting, chaos/retry outcome counters, session
transport totals, the batch tier's splits/merges/peels, tracedb
segment I/O. This package is the layer that makes those books *one
surface*: a labeled metrics registry they all publish into, a span
tracer that turns modeled time into renderable slices, a
Perfetto-compatible exporter, flame-style calltrace rollups, and
automated post-mortems for failed campaign jobs. Raw event streams
only become debugging leverage once they are aggregated, rendered and
scriptable — that is the job here.

Invariants (each one gated, not aspirational):

* **Modeled-time spans.** Span timestamps and durations come from the
  simulation/transport/CPU cost model (``sim.now``, link ``cost_us``,
  ``t_target``/``t_host``) — never the wall clock. A span you measure
  in Perfetto is a modeled cost you can assert on in a test.
* **Determinism at a fixed seed.** Same seed ⇒ byte-identical
  metrics snapshots, span lists, and exported trace JSON: lane
  assignment is by sorted name, snapshots sort every level, the JSON
  encoding is canonical. ``BENCH_obs.json`` exports two same-seed
  campaigns and FLOORS.json (``BENCH_obs_determinism``) floors the
  byte comparison at exact equality.
* **Zero cost when unused.** Telemetry off means the holder slots in
  :mod:`repro.obs.runtime` are ``None`` and every instrumentation
  site pays one attribute load + ``is not None`` — no allocation, no
  call, and nothing at all inside the per-instruction interpreter
  loops (instrumentation sits at transaction/activation granularity,
  never per instruction). Ceilings in FLOORS.json (``BENCH_obs`` on
  ``overhead.poll_disabled_ratio``, ``BENCH_obs_interp`` on
  ``overhead.interp_disabled_ratio``) keep it true.
* **Canonical snapshot merge.** Metrics snapshots and span lists are
  picklable plain data; merging is associative and order-independent
  (counters/histograms sum, spans re-sort, gauges last-write-wins as
  documented) — the same discipline as ``fleet.merge`` and the
  tracedb campaign merge, so fleet workers ship telemetry upward
  without breaking parallel == serial.
* **Existing stats APIs are unchanged.** ``DebugLink.stats()``,
  ``ChaosLink.stats()``, ``RetryingLink.stats()``,
  ``DebugSession.transport_stats()`` and BatchCpu's stats dict keep
  their exact keys and values; the registry *binds* them
  (:meth:`~repro.obs.metrics.MetricsRegistry.bind_stats`) and reads
  them once per snapshot, so they became the registry's series
  without their hot paths learning anything new.

The live plane (:mod:`repro.obs.live` + :mod:`repro.obs.health`)
streams the same books *while the run executes*, under three more
invariants:

* **Delta protocol.** Workers never ship full snapshots mid-run: a
  heartbeat carries ``snapshot().diff(last_published)`` — counters and
  histograms subtract (zero-change series omitted, negative deltas
  legal for shrinking bound surfaces), gauges ride only when changed —
  and folding a delta chain through the canonical ``merge``
  reconstructs the full snapshot exactly. Empty deltas are skipped,
  and emptiness is itself deterministic, so serial and fleet skip the
  same windows.
* **Modeled-time windowing.** Window indexes are modeled-µs buckets
  (``t // period_us``), ticked from the kernel's activation releases
  and session run boundaries — never timers or the wall clock — with
  the emitter's clock clamped monotone within a job (campaign phases
  each restart simulation time at zero). Which window a delta lands
  in is therefore a pure function of the seed.
* **Live determinism contract.** Everything canonical keys on
  ``(job_index, window_index)``; worker pids and queue arrival order
  decorate dashboard lanes only. Same master seed ⇒ byte-identical
  window history, health alerts and transcript whether the campaign
  ran under ``SerialRunner(live=...)`` or ``FleetRunner(live=...)`` —
  pinned by the committed ``artifacts/obs_live_alerts.txt`` exemplar
  and the serial-vs-fleet identity tests, with the heartbeat-enabled
  campaign overhead ceilinged (≤1.10x) in ``BENCH_live.json``.

Quick start::

    from repro.obs import observed
    with observed() as (registry, tracer):
        session = ...   # build + run the stack under telemetry
        session.run(50_000)
        snap = registry.snapshot()
    print(snap.counter_total("link.transactions"))

Export a campaign store for https://ui.perfetto.dev::

    python -m repro.obs.export --campaign runs/trace_dir/campaign -o t.json
"""

from repro.obs.health import DEFAULT_RULES, Alert, Rule
from repro.obs.live import (
    FlightRecorder,
    HeartbeatConfig,
    HeartbeatEmitter,
    LiveAggregator,
)
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
    percentile,
)
from repro.obs.runtime import OBS, disable, enable, enabled, observed
from repro.obs.spans import Span, SpanTracer, merge_spans, span_order

__all__ = [
    "OBS",
    "Alert",
    "DEFAULT_RULES",
    "FlightRecorder",
    "HeartbeatConfig",
    "HeartbeatEmitter",
    "LiveAggregator",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Rule",
    "Span",
    "SpanTracer",
    "disable",
    "enable",
    "enabled",
    "merge_snapshots",
    "merge_spans",
    "observed",
    "percentile",
    "span_order",
]
