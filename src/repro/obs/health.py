"""Deterministic health watchdogs over aggregated telemetry windows.

The live plane (:mod:`repro.obs.live`) turns a running campaign into a
stream of per-job, per-modeled-time-window metric deltas. This module
is the judgment layer on top: declarative :class:`Rule`s evaluated
against every aggregated window, producing :class:`Alert`s and a
canonical plain-text transcript.

The one hard requirement is **determinism at a fixed seed**. Every
input a rule sees is modeled-time data (window indexes are modeled-µs
buckets, series values are registry deltas), evaluation walks windows
in canonical ``(job_index, window_index)`` order, matched series are
visited in sorted-name order, and the resulting alert list carries a
total order — so the same master seed produces a byte-identical
transcript whether the campaign ran serial or fanned out over a fleet,
and the committed ``artifacts/obs_live_alerts.txt`` exemplar can be
regenerated in tests. Anything wall-clock-shaped (worker pids, arrival
order, queue timing) is structurally unable to reach a rule.

Built-in :data:`DEFAULT_RULES` watch the failure shapes this stack
actually exhibits: transport retry storms (``retry.*``), chaos fault
bursts on the wire (``chaos.fault``), degradation-ladder descent
(``session.degradation``), kernel deadline misses and spill-ring
record drops. Worker stalls — a job that heartbeat its start but never
its finish while the rest of the fleet kept completing — are detected
at aggregation close from lifecycle events, not from a series, and
surface through the same transcript.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

#: alert severities, mildest first (transcript lines tag them verbatim)
SEVERITIES = ("info", "warn", "error")

_RULE_LINE = "-" * 72


class Alert:
    """One rule firing on one window of one job — plain, orderable data."""

    __slots__ = ("job_index", "job_id", "window_index", "t_start_us",
                 "t_end_us", "rule", "severity", "series", "value",
                 "detail")

    def __init__(self, job_index: int, job_id: str, window_index: int,
                 t_start_us: int, t_end_us: int, rule: str, severity: str,
                 series: str, value: int, detail: str = "") -> None:
        self.job_index = job_index
        self.job_id = job_id
        self.window_index = window_index
        self.t_start_us = t_start_us
        self.t_end_us = t_end_us
        self.rule = rule
        self.severity = severity
        self.series = series
        self.value = value
        self.detail = detail

    def order(self) -> tuple:
        """Canonical total order: job, window, rule, series."""
        return (self.job_index, self.window_index, self.rule,
                self.series, self.severity, self.value, self.detail)

    def line(self) -> str:
        """One transcript line (fixed-width severity tag)."""
        window = (f"window {self.window_index} "
                  f"[{self.t_start_us}..{self.t_end_us})us"
                  if self.window_index >= 0 else "no heartbeat")
        text = (f"[{self.severity:<5}] job #{self.job_index} "
                f"{self.job_id}  {window}  {self.rule}: "
                f"{self.series}={self.value}")
        if self.detail:
            text += f"  ({self.detail})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Alert":
        return cls(**{name: data[name] for name in cls.__slots__})

    def __repr__(self) -> str:
        return f"<Alert {self.line()}>"


class Rule:
    """One declarative watchdog: glob over series names + a predicate.

    ``series_glob`` matches counter series names in a window's delta
    (``fnmatch`` syntax: ``retry.*``, ``*records_dropped``); the
    per-window value a predicate sees is the series' delta summed
    across its label sets. ``predicate(value, window)`` returning true
    raises an alert at ``severity``. ``debounce`` suppresses re-firing
    for the same ``(rule, job)`` until that many windows have passed —
    1 means every offending window alerts, 3 means at most one alert
    per three windows per job, so a sustained storm reads as a beat,
    not a wall of lines.
    """

    __slots__ = ("name", "series_glob", "predicate", "severity",
                 "debounce", "description")

    def __init__(self, name: str, series_glob: str,
                 predicate: Callable[[int, Any], bool],
                 severity: str = "warn", debounce: int = 1,
                 description: str = "") -> None:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}; "
                             f"options: {SEVERITIES}")
        if debounce < 1:
            raise ValueError(f"debounce must be >= 1, got {debounce}")
        self.name = name
        self.series_glob = series_glob
        self.predicate = predicate
        self.severity = severity
        self.debounce = debounce
        self.description = description

    def matches(self, window) -> List[Tuple[str, int]]:
        """``(series, value)`` hits in this window, sorted by name."""
        hits: List[Tuple[str, int]] = []
        for name in sorted(window.delta.counters):
            if not fnmatchcase(name, self.series_glob):
                continue
            value = sum(window.delta.counters[name].values())
            if self.predicate(value, window):
                hits.append((name, value))
        return hits

    def __repr__(self) -> str:
        return (f"<Rule {self.name} {self.series_glob!r} "
                f"{self.severity} debounce={self.debounce}>")


def threshold(n: int) -> Callable[[int, Any], bool]:
    """Predicate factory: fire when the windowed delta reaches *n*."""
    def at_least(value: int, window) -> bool:
        return value >= n
    at_least.threshold = n  # introspectable for reprs/docs
    return at_least


#: The built-in watchdog set, evaluated in this (fixed) order. Globs
#: name real registry series bound in PR 8; thresholds are per window
#: (one aggregation period of modeled time), tuned so a healthy control
#: run is silent and the chaos fault kinds raise a readable beat.
DEFAULT_RULES: Tuple[Rule, ...] = (
    Rule("retry-storm", "retry.*", threshold(8), "warn", debounce=2,
         description="transport retry-layer events spiking in one window"),
    Rule("comm-fault-storm", "chaos.fault", threshold(2), "warn",
         debounce=2,
         description="injected wire faults bursting on the chaos link"),
    Rule("degradation-descent", "session.degradation", threshold(1),
         "warn",
         description="the session stepped down the degradation ladder"),
    Rule("deadline-miss", "kernel.deadline_misses", threshold(1), "error",
         description="the modeled scheduler missed an actor deadline"),
    Rule("spill-pressure", "*records_dropped", threshold(1), "warn",
         description="a spill ring dropped records instead of spilling"),
)


def evaluate(windows: Iterable[Any],
             rules: Sequence[Rule] = DEFAULT_RULES,
             stalled: Iterable[Tuple[int, str, str]] = ()) -> List[Alert]:
    """Run every rule over every window; returns alerts in total order.

    *windows* must already be in canonical ``(job_index, window_index)``
    order (:meth:`repro.obs.live.LiveAggregator.history` provides it) —
    debounce counts windows per job, so order is semantic here, not
    just cosmetic. *stalled* adds close-time worker-stall alerts as
    ``(job_index, job_id, detail)`` rows (window index -1: the job has
    no windows to point at — that is the finding).
    """
    alerts: List[Alert] = []
    last_fired: Dict[Tuple[str, int], int] = {}
    for window in windows:
        for rule in rules:
            hits = rule.matches(window)
            if not hits:
                continue
            key = (rule.name, window.job_index)
            prev = last_fired.get(key)
            if prev is not None and window.index - prev < rule.debounce:
                continue
            last_fired[key] = window.index
            for series, value in hits:
                alerts.append(Alert(
                    window.job_index, window.job_id, window.index,
                    window.t_start_us, window.t_end_us,
                    rule.name, rule.severity, series, value,
                    detail=rule.description))
    for job_index, job_id, detail in stalled:
        alerts.append(Alert(job_index, job_id, -1, 0, 0, "worker-stall",
                            "error", "heartbeat", 0, detail=detail))
    alerts.sort(key=Alert.order)
    return alerts


def render_transcript(alerts: Sequence[Alert], windows: int = 0,
                      jobs: int = 0) -> str:
    """The canonical alert transcript: headline, rule, one line each.

    Byte-identical for byte-identical alert lists — this is the string
    the ``artifacts/obs_live_alerts.txt`` exemplar pins and the
    serial-vs-fleet identity tests compare.
    """
    headline = (f"HEALTH TRANSCRIPT: {len(alerts)} alert(s) "
                f"over {windows} window(s), {jobs} job(s)")
    lines = [headline, _RULE_LINE]
    if not alerts:
        lines.append("no alerts: every window stayed inside thresholds")
    else:
        lines.extend(alert.line() for alert in alerts)
    return "\n".join(lines) + "\n"
