"""Deterministic span tracer: modeled-time slices, byte-identical at a seed.

A span is one timed slice of modeled work — a passive poll scan, an
actor activation, a whole ``DebugSession.run`` window. The tracer's one
hard rule is **no wall clock**: timestamps and durations come from the
simulation/transport/CPU cost model (``sim.now``, link ``cost_us``,
command ``t_target``/``t_host``), so the same seed produces the same
spans byte for byte, and a trace diff is a *behavior* diff, never
host-load noise. That determinism is gated: ``BENCH_obs.json`` records
an export fingerprint across two identical runs and FLOORS.json floors
it at exact equality.

Spans live on a *track*, a ``(process-ish, thread-ish)`` string pair —
``("node", "sensor")``, ``("comm", "passive")`` — which maps directly
onto Chrome trace-event pid/tid lanes in :mod:`repro.obs.export`.

Emission is one tuple append; the tracer does no aggregation (that is
:mod:`repro.obs.metrics`'s job) and no I/O. Snapshots are picklable
plain tuples under a canonical sort, so fleet workers can ship spans
upward and merged traces are arrival-order independent.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple


class Span(NamedTuple):
    """One complete slice of modeled time on a track."""

    track: Tuple[str, str]   # (process-ish, thread-ish) lane
    name: str                # what the slice is ("poll", actor name, ...)
    cat: str                 # coarse category ("comm", "activation", ...)
    ts_us: int               # modeled start, microseconds
    dur_us: int              # modeled duration, microseconds (0 = instant)
    args: Tuple[Tuple[str, Any], ...]  # sorted key/value detail pairs


def _canon_args(args: Optional[Dict[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not args:
        return ()
    return tuple(sorted(args.items()))


def span_order(span: Span) -> tuple:
    """Total-order sort key: modeled time first, then every field.

    Plain tuple comparison on :class:`Span` is *not* a total order —
    two spans tying on ``(track, name, cat, ts, dur)`` compare their
    ``args`` values, which may be mixed-type (``None`` vs int vs str)
    and raise ``TypeError`` mid-sort, and which key on ``track`` before
    time so merged timelines interleave lanes. This key starts at
    ``ts_us`` (a trace reads in time order) and breaks every tie
    through the full field tuple with args values rendered via
    ``repr``, so sorting is defined for every span pair and merged
    lists are byte-stable regardless of arrival order.
    """
    return (span.ts_us, span.dur_us, span.track, span.name, span.cat,
            tuple((k, repr(v)) for k, v in span.args))


class SpanTracer:
    """Collects :class:`Span`s; emission is append-only and allocation-light.

    There is deliberately no begin/end pairing state: every emit site in
    this codebase already knows its start *and* duration from the cost
    model at the moment the work completes, so spans are emitted whole
    (``ph:"X"`` complete events in Chrome trace terms). That keeps the
    tracer stateless and the disabled path a single None check upstream.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []

    def emit(self, name: str, ts_us: int, dur_us: int = 0,
             track: Tuple[str, str] = ("repro", "main"), cat: str = "",
             args: Optional[Dict[str, Any]] = None) -> None:
        """Record one complete span with modeled timestamps.

        *ts_us*/*dur_us* must come from the cost model (``sim.now``,
        link costs, ``t_target``/``t_host``) — never ``time.*`` — or
        the byte-identity guarantee dies.
        """
        self.spans.append(Span(track, name, cat, ts_us, dur_us,
                               _canon_args(args)))

    def snapshot(self) -> List[Span]:
        """Canonical picklable form: spans under the :func:`span_order`
        total order (modeled time, then the full field tuple).

        The sort makes merged multi-source traces deterministic even
        when emit interleaving differs (e.g. spans shipped from
        workers in completion order).
        """
        return sorted(self.spans, key=span_order)

    def clear(self) -> None:
        self.spans.clear()


def merge_spans(parts: Iterable[Iterable[Span]]) -> List[Span]:
    """Merge span snapshots from many sources into one canonical list.

    Sorted under :func:`span_order` — a genuine total order — so the
    merged list is byte-stable no matter which worker's spans arrive
    first (concurrently-heartbeating workers deliver in wall-clock
    completion order, which must never show in the output).
    """
    merged: List[Span] = []
    for part in parts:
        merged.extend(Span(*s) for s in part)
    merged.sort(key=span_order)
    return merged
