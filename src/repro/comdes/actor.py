"""Actors: the distributed unit of computation in COMDES.

An actor wraps one component network and binds its boundary ports to system
signals. Its timing contract is a :class:`TaskSpec` — period, deadline,
offset and fixed priority — interpreted by the Distributed Timed Multitasking
runtime (:mod:`repro.rtos`): inputs are latched when the task is released,
outputs become visible exactly at the deadline instant.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.comdes.dataflow import ComponentNetwork
from repro.errors import ModelError


class TaskSpec:
    """Timing parameters of an actor task (all times in microseconds)."""

    def __init__(self, period_us: int, deadline_us: Optional[int] = None,
                 offset_us: int = 0, priority: int = 1) -> None:
        if period_us <= 0:
            raise ModelError(f"task period must be positive, got {period_us}")
        deadline = deadline_us if deadline_us is not None else period_us
        if not (0 < deadline <= period_us):
            raise ModelError(
                f"deadline must satisfy 0 < deadline <= period, got "
                f"deadline={deadline} period={period_us}"
            )
        if offset_us < 0:
            raise ModelError(f"offset must be non-negative, got {offset_us}")
        self.period_us = period_us
        self.deadline_us = deadline
        self.offset_us = offset_us
        self.priority = priority

    def __repr__(self) -> str:
        return (f"<TaskSpec T={self.period_us}us D={self.deadline_us}us "
                f"O={self.offset_us}us P={self.priority}>")


class Actor:
    """A distributed embedded actor: network + signal bindings + task timing.

    ``inputs`` maps network input port -> consumed signal name;
    ``outputs`` maps network output port -> produced signal name.
    """

    def __init__(
        self,
        name: str,
        network: ComponentNetwork,
        task: TaskSpec,
        inputs: Optional[Mapping[str, str]] = None,
        outputs: Optional[Mapping[str, str]] = None,
        node: str = "node0",
    ) -> None:
        if not name or not name.isidentifier():
            raise ModelError(f"actor name must be an identifier, got {name!r}")
        self.name = name
        self.network = network
        self.task = task
        self.inputs: Dict[str, str] = dict(inputs or {})
        self.outputs: Dict[str, str] = dict(outputs or {})
        self.node = node

        for port in self.inputs:
            if port not in network.input_ports:
                raise ModelError(
                    f"actor {name}: network has no input port {port!r} to bind"
                )
        for port in self.outputs:
            if port not in network.output_ports:
                raise ModelError(
                    f"actor {name}: network has no output port {port!r} to bind"
                )
        unbound_inputs = set(network.input_ports) - set(self.inputs)
        if unbound_inputs:
            raise ModelError(
                f"actor {name}: network input ports {sorted(unbound_inputs)} "
                "are not bound to any signal"
            )

    def consumed_signals(self) -> Dict[str, str]:
        """signal name -> network input port (inverse of ``inputs``)."""
        return {signal: port for port, signal in self.inputs.items()}

    def produced_signals(self) -> Dict[str, str]:
        """signal name -> network output port (inverse of ``outputs``)."""
        return {signal: port for port, signal in self.outputs.items()}

    def __repr__(self) -> str:
        return f"<Actor {self.name} on {self.node} {self.task!r}>"
