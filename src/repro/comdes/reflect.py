"""Reflection bridge: native COMDES objects -> reflective model.

GMDF's abstraction engine only understands the reflective API of
:mod:`repro.meta`; this module converts a native :class:`~repro.comdes.system.System`
into a conforming model. Every created object carries a stable **source
path** (its ``path`` attribute) — the same path strings appear in debug
commands emitted by generated code, which is how the runtime engine routes a
command to the right GDM element.

Path conventions::

    actor:<actor>                          an actor
    net:<actor>[.<scope>]                  a network (scope for nested ones)
    block:<actor>.<...>.<block>            a function block
    state:<actor>.<...>.<block>.<state>    a state of a state machine FB
    trans:<actor>.<...>.<block>.<src>-><dst>
    conn:<actor>[.<scope>].<src>-><dst>
    port:<actor>.<in|out>.<name>
    signal:<name>
"""

from __future__ import annotations

from typing import List

from repro.comdes.blocks import FunctionBlock, StateMachineFB
from repro.comdes.composite import CompositeFB
from repro.comdes.dataflow import ComponentNetwork
from repro.comdes.metamodel import comdes_metamodel
from repro.comdes.modal import ModalFB
from repro.comdes.system import System
from repro.meta.model import Model, ModelObject


def state_path(actor: str, block_scope: str, state: str) -> str:
    """Canonical path of a state: ``state:<actor>.<scope>.<state>``."""
    return f"state:{actor}.{block_scope}.{state}"


def block_path(actor: str, block_scope: str) -> str:
    """Canonical path of a block: ``block:<actor>.<scope>``."""
    return f"block:{actor}.{block_scope}"


def signal_path(name: str) -> str:
    """Canonical path of a signal: ``signal:<name>``."""
    return f"signal:{name}"


def system_to_model(system: System) -> Model:
    """Convert a native system into a reflective model with source paths."""
    metamodel = comdes_metamodel()
    model = Model(metamodel, name=system.name)

    root = model.create("System", name=system.name, path=f"system:{system.name}")
    model.add_root(root)

    signal_objects = {}
    for signal in system.signals.values():
        obj = model.create(
            "Signal",
            name=signal.name,
            path=signal_path(signal.name),
            init=signal.init,
            unit=signal.unit,
        )
        root.add_ref("signals", obj)
        signal_objects[signal.name] = obj

    for actor in system.actors.values():
        actor_obj = model.create(
            "Actor",
            name=actor.name,
            path=f"actor:{actor.name}",
            period_us=actor.task.period_us,
            deadline_us=actor.task.deadline_us,
            offset_us=actor.task.offset_us,
            priority=actor.task.priority,
            node=actor.node,
        )
        root.add_ref("actors", actor_obj)
        for signal_name in actor.consumed_signals():
            actor_obj.add_ref("consumes", signal_objects[signal_name])
        for signal_name in actor.produced_signals():
            actor_obj.add_ref("produces", signal_objects[signal_name])
        network_obj = _reflect_network(
            model, actor.network, actor_name=actor.name, scope=""
        )
        actor_obj.set_ref("network", network_obj)

    return model


def _scoped(actor_name: str, scope: str, leaf: str) -> str:
    parts = [actor_name] + ([scope] if scope else []) + [leaf]
    return ".".join(parts)


def _reflect_network(model: Model, network: ComponentNetwork,
                     actor_name: str, scope: str) -> ModelObject:
    net_scope = f"{actor_name}.{scope}" if scope else actor_name
    net_obj = model.create(
        "Network", name=network.name, path=f"net:{net_scope}"
    )
    for direction, names in (("in", network.input_ports), ("out", network.output_ports)):
        for port_name in names:
            port_obj = model.create(
                "Port",
                name=port_name,
                path=f"port:{net_scope}.{direction}.{port_name}",
                direction=direction,
            )
            net_obj.add_ref("ports", port_obj)
    for block in network.blocks:
        net_obj.add_ref("blocks", _reflect_block(model, block, actor_name, scope))
    for conn in network.connections:
        conn_obj = model.create(
            "Connection",
            name=f"{conn.src}->{conn.dst}",
            path=f"conn:{net_scope}.{conn.src}->{conn.dst}",
            src=str(conn.src),
            dst=str(conn.dst),
        )
        net_obj.add_ref("connections", conn_obj)
    return net_obj


def _reflect_block(model: Model, block: FunctionBlock,
                   actor_name: str, scope: str) -> ModelObject:
    block_scope = f"{scope}.{block.name}" if scope else block.name
    path = block_path(actor_name, block_scope)

    if isinstance(block, StateMachineFB):
        obj = model.create("StateMachineFB", name=block.name, path=path,
                           kind=block.kind)
        machine = block.machine
        machine_obj = model.create(
            "StateMachine",
            name=machine.name,
            path=f"sm:{actor_name}.{block_scope}",
            initial=machine.initial,
        )
        obj.set_ref("machine", machine_obj)
        state_objects = {}
        for state in machine.states:
            state_obj = model.create(
                "State",
                name=state,
                path=state_path(actor_name, block_scope, state),
            )
            machine_obj.add_ref("states", state_obj)
            state_objects[state] = state_obj
        for index, t in enumerate(machine.transitions):
            # The index disambiguates parallel transitions between the same
            # state pair (e.g. two CRUISE->OFF transitions with different guards).
            t_obj = model.create(
                "Transition",
                name=f"{t.source}->{t.target}",
                path=f"trans:{actor_name}.{block_scope}.{index}.{t.source}->{t.target}",
                guard=repr(t.guard),
                actions="; ".join(repr(a) for a in t.actions),
            )
            t_obj.set_ref("source", state_objects[t.source])
            t_obj.set_ref("target", state_objects[t.target])
            machine_obj.add_ref("transitions", t_obj)
        return obj

    if isinstance(block, ModalFB):
        obj = model.create("ModalFB", name=block.name, path=path, kind=block.kind)
        for mode in block.modes:
            mode_obj = model.create(
                "Mode",
                name=mode.name,
                path=f"mode:{actor_name}.{block_scope}.{mode.name}",
            )
            inner = _reflect_network(
                model, mode.network, actor_name, f"{block_scope}.{mode.name}"
            )
            mode_obj.set_ref("network", inner)
            obj.add_ref("modes", mode_obj)
        return obj

    if isinstance(block, CompositeFB):
        obj = model.create("CompositeFB", name=block.name, path=path,
                           kind=block.kind)
        inner = _reflect_network(model, block.network, actor_name, block_scope)
        obj.set_ref("subnetwork", inner)
        return obj

    params = ", ".join(f"{k}={v}" for k, v in sorted(block.params().items()))
    return model.create("BasicFB", name=block.name, path=path,
                        kind=block.kind, params=params)


def collect_state_paths(system: System) -> List[str]:
    """All state paths in the system (used to build command tables)."""
    paths: List[str] = []
    for actor in system.actors.values():
        for block in actor.network.blocks:
            if isinstance(block, StateMachineFB):
                for state in block.machine.states:
                    paths.append(state_path(actor.name, block.name, state))
    return paths
