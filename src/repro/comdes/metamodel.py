"""The COMDES metamodel, defined in the reflective framework.

This is the artifact the user hands to GMDF as "input meta-model" (Fig 6,
step 2). The abstraction guide lists these metaclasses for pattern pairing;
the abstraction engine navigates models conforming to this metamodel.
"""

from __future__ import annotations

from repro.meta.metamodel import AttributeKind, MetaModel

COMDES_METAMODEL_NAME = "comdes"


def comdes_metamodel() -> MetaModel:
    """Build (and consistency-check) the COMDES metamodel."""
    mm = MetaModel(COMDES_METAMODEL_NAME)

    named = mm.define("NamedElement", abstract=True)
    named.attribute("name", AttributeKind.STR, required=True)
    named.attribute("path", AttributeKind.STR, required=True)

    system = mm.define("System", supertypes=["NamedElement"])
    system.reference("signals", "Signal", containment=True, many=True)
    system.reference("actors", "Actor", containment=True, many=True)

    signal = mm.define("Signal", supertypes=["NamedElement"])
    signal.attribute("init", AttributeKind.INT, default=0)
    signal.attribute("unit", AttributeKind.STR, default="")

    actor = mm.define("Actor", supertypes=["NamedElement"])
    actor.attribute("period_us", AttributeKind.INT, required=True)
    actor.attribute("deadline_us", AttributeKind.INT, required=True)
    actor.attribute("offset_us", AttributeKind.INT, default=0)
    actor.attribute("priority", AttributeKind.INT, default=1)
    actor.attribute("node", AttributeKind.STR, default="node0")
    actor.reference("network", "Network", containment=True, required=True)
    actor.reference("consumes", "Signal", many=True)
    actor.reference("produces", "Signal", many=True)

    network = mm.define("Network", supertypes=["NamedElement"])
    network.reference("blocks", "FunctionBlock", containment=True, many=True)
    network.reference("connections", "Connection", containment=True, many=True)
    network.reference("ports", "Port", containment=True, many=True)

    port = mm.define("Port", supertypes=["NamedElement"])
    port.attribute("direction", AttributeKind.ENUM, enum_values=("in", "out"),
                   required=True)

    block = mm.define("FunctionBlock", abstract=True, supertypes=["NamedElement"])
    block.attribute("kind", AttributeKind.STR, required=True)

    mm.define("BasicFB", supertypes=["FunctionBlock"]).attribute(
        "params", AttributeKind.STR, default=""
    )

    composite = mm.define("CompositeFB", supertypes=["FunctionBlock"])
    composite.reference("subnetwork", "Network", containment=True, required=True)

    modal = mm.define("ModalFB", supertypes=["FunctionBlock"])
    modal.reference("modes", "Mode", containment=True, many=True)

    mode = mm.define("Mode", supertypes=["NamedElement"])
    mode.reference("network", "Network", containment=True, required=True)

    smfb = mm.define("StateMachineFB", supertypes=["FunctionBlock"])
    smfb.reference("machine", "StateMachine", containment=True, required=True)

    machine = mm.define("StateMachine", supertypes=["NamedElement"])
    machine.attribute("initial", AttributeKind.STR, required=True)
    machine.reference("states", "State", containment=True, many=True)
    machine.reference("transitions", "Transition", containment=True, many=True)

    mm.define("State", supertypes=["NamedElement"])

    transition = mm.define("Transition", supertypes=["NamedElement"])
    transition.attribute("guard", AttributeKind.STR, default="1")
    transition.attribute("actions", AttributeKind.STR, default="")
    transition.reference("source", "State", required=True)
    transition.reference("target", "State", required=True)

    connection = mm.define("Connection", supertypes=["NamedElement"])
    connection.attribute("src", AttributeKind.STR, required=True)
    connection.attribute("dst", AttributeKind.STR, required=True)

    mm.check()
    return mm
