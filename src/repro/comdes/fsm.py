"""State machine models (state transition graphs).

COMDES specifies stateful component behaviour as event-driven state
machines: named states, transitions with integer guards and assignment
actions. The class doubles as the reference interpreter — ``step`` computes
one synchronous reaction, which compiled target code must match exactly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.comdes.expr import Const, Expr
from repro.errors import ModelError, ValidationError


class Assign:
    """An action ``target := expr`` executed when a transition fires."""

    __slots__ = ("target", "expr")

    def __init__(self, target: str, expr: Expr) -> None:
        self.target = target
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.target} := {self.expr!r}"


class Transition:
    """A guarded transition between two named states.

    Transitions out of a state are tried in declaration order; the first
    whose guard evaluates non-zero fires (deterministic priority semantics).
    """

    def __init__(self, source: str, target: str, guard: Optional[Expr] = None,
                 actions: Sequence[Assign] = ()) -> None:
        self.source = source
        self.target = target
        self.guard: Expr = guard if guard is not None else Const(1)
        self.actions: List[Assign] = list(actions)

    def __repr__(self) -> str:
        return f"<Transition {self.source}->{self.target} [{self.guard!r}]>"


class StateMachine:
    """An event-driven finite state machine over integer variables.

    ``inputs`` are read-only names provided by the environment each step;
    ``outputs`` and ``variables`` are written by actions. Variables persist
    between steps; outputs are re-written (or hold their last value).
    """

    def __init__(
        self,
        name: str,
        states: Sequence[str],
        initial: str,
        transitions: Sequence[Transition],
        inputs: Sequence[str] = (),
        outputs: Sequence[str] = (),
        variables: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.name = name
        self.states = list(states)
        self.initial = initial
        self.transitions = list(transitions)
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.variables: Dict[str, int] = dict(variables or {})
        self.check()

    # -- structure ---------------------------------------------------------

    def check(self) -> None:
        """Raise ValidationError on malformed structure."""
        problems: List[str] = []
        if len(set(self.states)) != len(self.states):
            problems.append(f"{self.name}: duplicate state names")
        if self.initial not in self.states:
            problems.append(f"{self.name}: initial state {self.initial!r} undefined")
        known = set(self.states)
        writable = set(self.outputs) | set(self.variables)
        readable = set(self.inputs) | writable
        for t in self.transitions:
            if t.source not in known:
                problems.append(f"{self.name}: transition from unknown state {t.source!r}")
            if t.target not in known:
                problems.append(f"{self.name}: transition to unknown state {t.target!r}")
            for name in t.guard.free_vars():
                if name not in readable:
                    problems.append(
                        f"{self.name}: guard of {t.source}->{t.target} reads "
                        f"undeclared {name!r}"
                    )
            for action in t.actions:
                if action.target not in writable:
                    problems.append(
                        f"{self.name}: action writes undeclared {action.target!r}"
                    )
                for name in action.expr.free_vars():
                    if name not in readable:
                        problems.append(
                            f"{self.name}: action expr reads undeclared {name!r}"
                        )
        if problems:
            raise ValidationError(problems)

    def transitions_from(self, state: str) -> List[Transition]:
        """Outgoing transitions of *state* in priority (declaration) order."""
        return [t for t in self.transitions if t.source == state]

    def reachable_states(self) -> List[str]:
        """States reachable from the initial state through the transition graph."""
        adjacency: Dict[str, List[str]] = {}
        for t in self.transitions:
            adjacency.setdefault(t.source, []).append(t.target)
        seen = [self.initial]
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for nxt in adjacency.get(state, ()):
                if nxt not in seen:
                    seen.append(nxt)
                    frontier.append(nxt)
        return seen

    # -- reference semantics -------------------------------------------------

    def initial_env(self) -> Dict[str, int]:
        """Fresh variable/output environment for a run."""
        env = {name: 0 for name in self.outputs}
        env.update(self.variables)
        return env

    def step(self, state: str, env: Mapping[str, int],
             inputs: Mapping[str, int]) -> Tuple[str, Dict[str, int]]:
        """One synchronous reaction.

        Returns ``(next_state, new_env)`` where *new_env* holds outputs and
        variables after any fired transition's actions. At most one
        transition fires per step (priority = declaration order).
        """
        if state not in self.states:
            raise ModelError(f"{self.name}: unknown state {state!r}")
        scope: Dict[str, int] = dict(env)
        for name in self.inputs:
            if name not in inputs:
                raise ModelError(f"{self.name}: missing input {name!r}")
            scope[name] = inputs[name]
        new_env = dict(env)
        for t in self.transitions_from(state):
            if t.guard.eval(scope) != 0:
                for action in t.actions:
                    value = action.expr.eval({**scope, **new_env})
                    new_env[action.target] = value
                return t.target, new_env
        return state, new_env

    def run(self, input_trace: Sequence[Mapping[str, int]]) -> List[Tuple[str, Dict[str, int]]]:
        """Run from the initial state over a sequence of input maps.

        Returns the list of (state, env) pairs *after* each step — the
        reference trajectory used by differential tests.
        """
        state = self.initial
        env = self.initial_env()
        trajectory: List[Tuple[str, Dict[str, int]]] = []
        for inputs in input_trace:
            state, env = self.step(state, env, inputs)
            trajectory.append((state, dict(env)))
        return trajectory

    def __repr__(self) -> str:
        return (f"<StateMachine {self.name}: {len(self.states)} states, "
                f"{len(self.transitions)} transitions>")
