"""System-level semantic validation for COMDES models."""

from __future__ import annotations

from typing import List

from repro.comdes.system import System
from repro.errors import ValidationError


def system_problems(system: System) -> List[str]:
    """Collect semantic problems without raising."""
    problems: List[str] = []
    for actor in system.actors.values():
        for port, signal in actor.inputs.items():
            if signal not in system.signals:
                problems.append(
                    f"actor {actor.name}: input port {port!r} bound to "
                    f"unknown signal {signal!r}"
                )
        for port, signal in actor.outputs.items():
            if signal not in system.signals:
                problems.append(
                    f"actor {actor.name}: output port {port!r} bound to "
                    f"unknown signal {signal!r}"
                )
    for signal_name in system.signals:
        producers = system.producers_of(signal_name)
        if len(producers) > 1:
            names = sorted(a.name for a in producers)
            problems.append(
                f"signal {signal_name!r} has multiple producers: {names}"
            )
    # Signals nobody produces must be stimuli (consumed only) — fine; but a
    # signal nobody touches at all is almost certainly a modeling slip.
    for signal_name in system.signals:
        if not system.producers_of(signal_name) and not system.consumers_of(signal_name):
            problems.append(f"signal {signal_name!r} is never produced nor consumed")
    return problems


def validate_system(system: System) -> None:
    """Raise :class:`ValidationError` listing all problems, if any."""
    problems = system_problems(system)
    if problems:
        raise ValidationError(problems)
