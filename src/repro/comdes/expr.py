"""Integer expression AST for guards and actions.

Expressions appear in state-machine transition guards and actions. They are
evaluated by the reference interpreter (here) and *also* lowered to target
bytecode by :mod:`repro.codegen` — the differential tests in
``tests/codegen`` assert both agree on random expressions.

Arithmetic follows the target CPU: signed 32-bit wraparound, C-style
truncating division. Comparison and logic operators yield 0/1.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import ModelError
from repro.util.intmath import sdiv, smod, wrap32

#: Binary operators -> reference semantics.
_BINARY_OPS = {
    "add": lambda a, b: wrap32(a + b),
    "sub": lambda a, b: wrap32(a - b),
    "mul": lambda a, b: wrap32(a * b),
    "div": sdiv,
    "mod": smod,
    "min": lambda a, b: a if a <= b else b,
    "max": lambda a, b: a if a >= b else b,
    "and": lambda a, b: 1 if (a != 0 and b != 0) else 0,
    "or": lambda a, b: 1 if (a != 0 or b != 0) else 0,
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
}

_UNARY_OPS = {
    "neg": lambda a: wrap32(-a),
    "not": lambda a: 0 if a != 0 else 1,
}


class Expr:
    """Base expression node. Subclasses: Const, Var, Unary, Binary."""

    def eval(self, env: Mapping[str, int]) -> int:
        """Evaluate under *env* (name -> 32-bit int)."""
        raise NotImplementedError

    def free_vars(self) -> Tuple[str, ...]:
        """Variable names read by this expression, in first-use order."""
        seen: Dict[str, None] = {}
        for node in self.walk():
            if isinstance(node, Var) and node.name not in seen:
                seen[node.name] = None
        return tuple(seen)

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self

    # Arithmetic operator sugar so model code reads naturally.
    def __add__(self, other: "Expr") -> "Expr":
        return Binary("add", self, _coerce(other))

    def __sub__(self, other: "Expr") -> "Expr":
        return Binary("sub", self, _coerce(other))

    def __mul__(self, other: "Expr") -> "Expr":
        return Binary("mul", self, _coerce(other))

    def __floordiv__(self, other: "Expr") -> "Expr":
        return Binary("div", self, _coerce(other))

    def __mod__(self, other: "Expr") -> "Expr":
        return Binary("mod", self, _coerce(other))

    def __neg__(self) -> "Expr":
        return Unary("neg", self)


def _coerce(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return Const(value)
    raise ModelError(f"cannot use {value!r} in an expression")


class Const(Expr):
    """A literal 32-bit constant."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = wrap32(value)

    def eval(self, env: Mapping[str, int]) -> int:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


class Var(Expr):
    """A named variable (signal, FSM variable or block port)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def eval(self, env: Mapping[str, int]) -> int:
        try:
            return wrap32(env[self.name])
        except KeyError:
            raise ModelError(f"unbound variable {self.name!r} in expression") from None

    def __repr__(self) -> str:
        return self.name


class Unary(Expr):
    """Unary operation: ``neg`` or logical ``not``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr) -> None:
        if op not in _UNARY_OPS:
            raise ModelError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand

    def eval(self, env: Mapping[str, int]) -> int:
        return _UNARY_OPS[self.op](self.operand.eval(env))

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.operand.walk()

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


class Binary(Expr):
    """Binary operation over two sub-expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _BINARY_OPS:
            raise ModelError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, env: Mapping[str, int]) -> int:
        return _BINARY_OPS[self.op](self.left.eval(env), self.right.eval(env))

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


# -- convenience constructors ------------------------------------------------

def const(value: int) -> Const:
    """Literal constant."""
    return Const(value)


def var(name: str) -> Var:
    """Named variable."""
    return Var(name)


def eq(a, b) -> Binary:
    """a == b (0/1)."""
    return Binary("eq", _coerce(a), _coerce(b))


def ne(a, b) -> Binary:
    """a != b (0/1)."""
    return Binary("ne", _coerce(a), _coerce(b))


def lt(a, b) -> Binary:
    """a < b (0/1)."""
    return Binary("lt", _coerce(a), _coerce(b))


def le(a, b) -> Binary:
    """a <= b (0/1)."""
    return Binary("le", _coerce(a), _coerce(b))


def gt(a, b) -> Binary:
    """a > b (0/1)."""
    return Binary("gt", _coerce(a), _coerce(b))


def ge(a, b) -> Binary:
    """a >= b (0/1)."""
    return Binary("ge", _coerce(a), _coerce(b))


def band(a, b) -> Binary:
    """Logical AND over 0/1 ints."""
    return Binary("and", _coerce(a), _coerce(b))


def bor(a, b) -> Binary:
    """Logical OR over 0/1 ints."""
    return Binary("or", _coerce(a), _coerce(b))


def lnot(a) -> Unary:
    """Logical NOT over 0/1 ints."""
    return Unary("not", _coerce(a))


def minimum(a, b) -> Binary:
    """min(a, b)."""
    return Binary("min", _coerce(a), _coerce(b))


def maximum(a, b) -> Binary:
    """max(a, b)."""
    return Binary("max", _coerce(a), _coerce(b))
