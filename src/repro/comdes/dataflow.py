"""Component networks: the hierarchical dataflow model of COMDES actors.

A network wires function-block ports together. One synchronous step runs in
three phases — Moore outputs, combinational blocks in dependency order, Moore
state updates — which is exactly the order :mod:`repro.codegen` emits, so
interpreter and target agree step-for-step.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.comdes.blocks import BlockState, FunctionBlock, PortValues
from repro.errors import ModelError, ValidationError

NetworkState = Dict[str, BlockState]


class PortRef:
    """A reference to one port of one block, e.g. ``controller.y``."""

    __slots__ = ("block", "port")

    def __init__(self, block: str, port: str) -> None:
        self.block = block
        self.port = port

    @classmethod
    def parse(cls, dotted: str) -> "PortRef":
        """Parse ``"block.port"`` into a PortRef."""
        if dotted.count(".") != 1:
            raise ModelError(f"port reference must be 'block.port', got {dotted!r}")
        block, port = dotted.split(".")
        return cls(block, port)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PortRef)
                and (self.block, self.port) == (other.block, other.port))

    def __hash__(self) -> int:
        return hash((self.block, self.port))

    def __repr__(self) -> str:
        return f"{self.block}.{self.port}"


class Connection:
    """A directed wire from an output port to an input port."""

    __slots__ = ("src", "dst")

    def __init__(self, src: PortRef, dst: PortRef) -> None:
        self.src = src
        self.dst = dst

    @classmethod
    def wire(cls, src: str, dst: str) -> "Connection":
        """Convenience: ``Connection.wire("a.y", "b.u")``."""
        return cls(PortRef.parse(src), PortRef.parse(dst))

    def __repr__(self) -> str:
        return f"<{self.src} -> {self.dst}>"


class ComponentNetwork:
    """A network of function blocks with named boundary ports.

    ``input_ports`` maps a network-level input name to the block input ports
    it feeds (fan-out allowed); ``output_ports`` maps a network-level output
    name to the block output port that drives it.
    """

    def __init__(
        self,
        name: str,
        blocks: Sequence[FunctionBlock],
        connections: Sequence[Connection] = (),
        input_ports: Mapping[str, Sequence[PortRef]] = None,
        output_ports: Mapping[str, PortRef] = None,
    ) -> None:
        self.name = name
        self.blocks: List[FunctionBlock] = list(blocks)
        self.connections: List[Connection] = list(connections)
        self.input_ports: Dict[str, List[PortRef]] = {
            k: list(v) for k, v in (input_ports or {}).items()
        }
        self.output_ports: Dict[str, PortRef] = dict(output_ports or {})
        self._by_name: Dict[str, FunctionBlock] = {}
        self.check()
        self._topo: List[FunctionBlock] = self._combinational_order()

    # -- structure -----------------------------------------------------------

    def block(self, name: str) -> FunctionBlock:
        """Look up a block by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ModelError(f"network {self.name}: no block named {name!r}") from None

    def check(self) -> None:
        """Validate wiring: names, port existence, single-driver inputs."""
        problems: List[str] = []
        self._by_name = {}
        for block in self.blocks:
            if block.name in self._by_name:
                problems.append(f"duplicate block name {block.name!r}")
            self._by_name[block.name] = block

        def check_ref(ref: PortRef, direction: str, context: str) -> None:
            block = self._by_name.get(ref.block)
            if block is None:
                problems.append(f"{context}: unknown block {ref.block!r}")
                return
            ports = block.outputs if direction == "out" else block.inputs
            if ref.port not in ports:
                problems.append(
                    f"{context}: block {ref.block!r} has no {direction}put "
                    f"port {ref.port!r}"
                )

        drivers: Dict[Tuple[str, str], str] = {}

        def add_driver(dst: PortRef, source_desc: str) -> None:
            key = (dst.block, dst.port)
            if key in drivers:
                problems.append(
                    f"input {dst} driven twice ({drivers[key]} and {source_desc})"
                )
            drivers[key] = source_desc

        for conn in self.connections:
            check_ref(conn.src, "out", f"connection {conn}")
            check_ref(conn.dst, "in", f"connection {conn}")
            add_driver(conn.dst, str(conn.src))
        for net_port, dsts in self.input_ports.items():
            for dst in dsts:
                check_ref(dst, "in", f"network input {net_port!r}")
                add_driver(dst, f"network input {net_port!r}")
        for net_port, src in self.output_ports.items():
            check_ref(src, "out", f"network output {net_port!r}")

        # every block input must have exactly one driver
        for block in self.blocks:
            for port in block.inputs:
                if (block.name, port) not in drivers:
                    problems.append(f"input {block.name}.{port} is unconnected")

        if problems:
            raise ValidationError([f"network {self.name}: {p}" for p in problems])

    def _combinational_order(self) -> List[FunctionBlock]:
        """Topological order of Mealy blocks; raises on combinational cycles."""
        mealy = [b for b in self.blocks if not b.is_moore]
        indeg = {b.name: 0 for b in mealy}
        edges: Dict[str, List[str]] = {b.name: [] for b in mealy}
        for conn in self.connections:
            src_block = self._by_name[conn.src.block]
            dst_block = self._by_name[conn.dst.block]
            if not src_block.is_moore and not dst_block.is_moore:
                edges[src_block.name].append(dst_block.name)
                indeg[dst_block.name] += 1
        ready = [b.name for b in mealy if indeg[b.name] == 0]
        order: List[str] = []
        while ready:
            ready.sort()  # deterministic order among independent blocks
            name = ready.pop(0)
            order.append(name)
            for succ in edges[name]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(mealy):
            cyclic = sorted(set(indeg) - set(order))
            raise ValidationError(
                [f"network {self.name}: combinational cycle through {cyclic} "
                 "(insert a DelayFB to break it)"]
            )
        return [self._by_name[name] for name in order]

    def evaluation_order(self) -> List[str]:
        """Block names in execution order: Moore outputs happen first."""
        moore = sorted(b.name for b in self.blocks if b.is_moore)
        return moore + [b.name for b in self._topo]

    # -- reference semantics ---------------------------------------------------

    def initial_state(self) -> NetworkState:
        """Fresh per-block state for a run."""
        return {b.name: dict(b.state_vars()) for b in self.blocks}

    def step(self, inputs: Mapping[str, int],
             state: NetworkState) -> Tuple[PortValues, NetworkState]:
        """One synchronous step; returns (network outputs, new state)."""
        for net_port in self.input_ports:
            if net_port not in inputs:
                raise ModelError(f"network {self.name}: missing input {net_port!r}")

        in_values: Dict[Tuple[str, str], int] = {}
        out_values: Dict[Tuple[str, str], int] = {}
        # Normalize: every block gets a state dict even if the caller's copy
        # omits stateless blocks (composite/modal blocks flatten sub-states).
        new_state: NetworkState = {
            b.name: dict(state.get(b.name, {})) for b in self.blocks
        }

        def publish(block_name: str, outputs: PortValues) -> None:
            for port, value in outputs.items():
                out_values[(block_name, port)] = value
            for conn in self.connections:
                if conn.src.block == block_name and conn.src.port in outputs:
                    in_values[(conn.dst.block, conn.dst.port)] = outputs[conn.src.port]

        # Phase 0: network inputs fan out to block inputs.
        for net_port, dsts in self.input_ports.items():
            for dst in dsts:
                in_values[(dst.block, dst.port)] = inputs[net_port]

        # Phase 1: Moore blocks publish state-determined outputs.
        moore_blocks = sorted(
            (b for b in self.blocks if b.is_moore), key=lambda b: b.name
        )
        for block in moore_blocks:
            publish(block.name, block.moore_output(new_state[block.name]))

        # Phase 2: Mealy blocks in combinational dependency order.
        for block in self._topo:
            block_inputs = self._gather(block, in_values)
            outputs, bstate = block.behavior(block_inputs, new_state[block.name])
            new_state[block.name] = bstate
            publish(block.name, outputs)

        # Phase 3: Moore blocks advance state (input-less blocks advance too —
        # e.g. a SequenceFB stimulus steps its script every cycle).
        for block in moore_blocks:
            block_inputs = self._gather(block, in_values) if block.inputs else {}
            new_state[block.name] = block.advance(
                block_inputs, new_state[block.name]
            )

        net_outputs = {
            name: out_values[(src.block, src.port)]
            for name, src in self.output_ports.items()
        }
        return net_outputs, new_state

    def _gather(self, block: FunctionBlock,
                in_values: Dict[Tuple[str, str], int]) -> PortValues:
        gathered: PortValues = {}
        for port in block.inputs:
            key = (block.name, port)
            if key not in in_values:
                raise ModelError(
                    f"network {self.name}: {block.name}.{port} has no value this step"
                )
            gathered[port] = in_values[key]
        return gathered

    def run(self, input_trace: Sequence[Mapping[str, int]]) -> List[PortValues]:
        """Run several steps from the initial state; return outputs per step."""
        state = self.initial_state()
        outputs: List[PortValues] = []
        for inputs in input_trace:
            step_out, state = self.step(inputs, state)
            outputs.append(step_out)
        return outputs

    def __repr__(self) -> str:
        return (f"<ComponentNetwork {self.name}: {len(self.blocks)} blocks, "
                f"{len(self.connections)} connections>")
