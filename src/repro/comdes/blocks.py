"""Prefabricated executable function blocks.

COMDES configures actors from reusable function blocks. Two evaluation
families matter for scheduling a synchronous step:

* **Mealy blocks** (``is_moore = False``): outputs depend on the current
  inputs — they participate in the combinational dependency order.
* **Moore blocks** (``is_moore = True``): outputs depend on internal state
  only (delays, constants, sequence generators) — they publish outputs
  *before* the combinational phase and absorb inputs *after* it, which is
  what legally breaks dataflow feedback cycles.

Every block defines reference semantics used by the network interpreter;
:mod:`repro.codegen` lowers the same blocks to target bytecode and the test
suite checks both agree.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.comdes.fsm import StateMachine
from repro.errors import ModelError
from repro.util.intmath import sdiv, smod, wrap32

BlockState = Dict[str, int]
PortValues = Dict[str, int]


class FunctionBlock:
    """Base class for all function blocks."""

    kind = "function-block"
    is_moore = False

    def __init__(self, name: str, inputs: Sequence[str], outputs: Sequence[str]) -> None:
        if not name or not name.isidentifier():
            raise ModelError(f"block name must be an identifier, got {name!r}")
        self.name = name
        self.inputs: List[str] = list(inputs)
        self.outputs: List[str] = list(outputs)

    def state_vars(self) -> BlockState:
        """Initial values of this block's persistent state (empty if stateless)."""
        return {}

    def params(self) -> Dict[str, int]:
        """Configuration parameters, for display and serialization."""
        return {}

    # Mealy interface -------------------------------------------------------

    def behavior(self, inputs: PortValues, state: BlockState) -> Tuple[PortValues, BlockState]:
        """One synchronous evaluation: inputs + state -> outputs + new state."""
        raise NotImplementedError(f"{type(self).__name__} must implement behavior()")

    def _require(self, inputs: PortValues) -> None:
        for port in self.inputs:
            if port not in inputs:
                raise ModelError(f"block {self.name}: missing input {port!r}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class MooreBlock(FunctionBlock):
    """Base for blocks whose outputs are a function of state only."""

    is_moore = True

    def moore_output(self, state: BlockState) -> PortValues:
        """Outputs computed from state alone (pre-combinational phase)."""
        raise NotImplementedError

    def advance(self, inputs: PortValues, state: BlockState) -> BlockState:
        """State update from this step's inputs (post-combinational phase)."""
        raise NotImplementedError

    def behavior(self, inputs: PortValues, state: BlockState) -> Tuple[PortValues, BlockState]:
        outputs = self.moore_output(state)
        return outputs, self.advance(inputs, state)


# -- stateless signal processing ------------------------------------------


class ConstantFB(MooreBlock):
    """Emits a constant value on ``y``."""

    kind = "constant"

    def __init__(self, name: str, value: int) -> None:
        super().__init__(name, inputs=[], outputs=["y"])
        self.value = wrap32(value)

    def params(self) -> Dict[str, int]:
        return {"value": self.value}

    def moore_output(self, state: BlockState) -> PortValues:
        return {"y": self.value}

    def advance(self, inputs: PortValues, state: BlockState) -> BlockState:
        return state


class GainFB(FunctionBlock):
    """``y = u * num / den`` — rational gain in integer arithmetic."""

    kind = "gain"

    def __init__(self, name: str, num: int, den: int = 1) -> None:
        if den == 0:
            raise ModelError(f"gain {name}: zero denominator")
        super().__init__(name, inputs=["u"], outputs=["y"])
        self.num = wrap32(num)
        self.den = wrap32(den)

    def params(self) -> Dict[str, int]:
        return {"num": self.num, "den": self.den}

    def behavior(self, inputs, state):
        self._require(inputs)
        return {"y": sdiv(wrap32(inputs["u"] * self.num), self.den)}, state


class AddFB(FunctionBlock):
    """``y = a + b``."""

    kind = "add"

    def __init__(self, name: str) -> None:
        super().__init__(name, inputs=["a", "b"], outputs=["y"])

    def behavior(self, inputs, state):
        self._require(inputs)
        return {"y": wrap32(inputs["a"] + inputs["b"])}, state


class SubFB(FunctionBlock):
    """``y = a - b``."""

    kind = "sub"

    def __init__(self, name: str) -> None:
        super().__init__(name, inputs=["a", "b"], outputs=["y"])

    def behavior(self, inputs, state):
        self._require(inputs)
        return {"y": wrap32(inputs["a"] - inputs["b"])}, state


class MulFB(FunctionBlock):
    """``y = a * b``."""

    kind = "mul"

    def __init__(self, name: str) -> None:
        super().__init__(name, inputs=["a", "b"], outputs=["y"])

    def behavior(self, inputs, state):
        self._require(inputs)
        return {"y": wrap32(inputs["a"] * inputs["b"])}, state


class CompareFB(FunctionBlock):
    """``y = (a <op> b)`` as 0/1; op is one of eq/ne/lt/le/gt/ge."""

    kind = "compare"
    _OPS = {
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b,
        "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b,
        "ge": lambda a, b: a >= b,
    }

    def __init__(self, name: str, op: str) -> None:
        if op not in self._OPS:
            raise ModelError(f"compare {name}: unknown op {op!r}")
        super().__init__(name, inputs=["a", "b"], outputs=["y"])
        self.op = op

    def behavior(self, inputs, state):
        self._require(inputs)
        return {"y": 1 if self._OPS[self.op](inputs["a"], inputs["b"]) else 0}, state


class ThresholdFB(FunctionBlock):
    """``y = 1`` when ``u >= limit``, with optional hysteresis.

    Once on, the block stays on until ``u < limit - hysteresis`` — the
    classic comparator used for alarms and bang-bang control.
    """

    kind = "threshold"

    def __init__(self, name: str, limit: int, hysteresis: int = 0) -> None:
        if hysteresis < 0:
            raise ModelError(f"threshold {name}: negative hysteresis")
        super().__init__(name, inputs=["u"], outputs=["y"])
        self.limit = wrap32(limit)
        self.hysteresis = wrap32(hysteresis)

    def params(self) -> Dict[str, int]:
        return {"limit": self.limit, "hysteresis": self.hysteresis}

    def state_vars(self) -> BlockState:
        return {"on": 0}

    def behavior(self, inputs, state):
        self._require(inputs)
        u = wrap32(inputs["u"])
        threshold = self.limit - self.hysteresis if state.get("on", 0) else self.limit
        on = 1 if u >= threshold else 0
        return {"y": on}, {"on": on}


class LimiterFB(FunctionBlock):
    """``y = clamp(u, lo, hi)``."""

    kind = "limiter"

    def __init__(self, name: str, lo: int, hi: int) -> None:
        if lo > hi:
            raise ModelError(f"limiter {name}: lo {lo} > hi {hi}")
        super().__init__(name, inputs=["u"], outputs=["y"])
        self.lo = wrap32(lo)
        self.hi = wrap32(hi)

    def params(self) -> Dict[str, int]:
        return {"lo": self.lo, "hi": self.hi}

    def behavior(self, inputs, state):
        self._require(inputs)
        u = wrap32(inputs["u"])
        return {"y": min(max(u, self.lo), self.hi)}, state


class MuxFB(FunctionBlock):
    """``y = a`` when ``sel != 0`` else ``b``."""

    kind = "mux"

    def __init__(self, name: str) -> None:
        super().__init__(name, inputs=["sel", "a", "b"], outputs=["y"])

    def behavior(self, inputs, state):
        self._require(inputs)
        return {"y": wrap32(inputs["a"] if inputs["sel"] != 0 else inputs["b"])}, state


# -- stateful blocks ---------------------------------------------------------


class DelayFB(MooreBlock):
    """Unit delay: ``y[k] = u[k-1]`` (initial output ``init``).

    The canonical cycle-breaker in synchronous dataflow.
    """

    kind = "delay"

    def __init__(self, name: str, init: int = 0) -> None:
        super().__init__(name, inputs=["u"], outputs=["y"])
        self.init = wrap32(init)

    def params(self) -> Dict[str, int]:
        return {"init": self.init}

    def state_vars(self) -> BlockState:
        return {"z": self.init}

    def moore_output(self, state: BlockState) -> PortValues:
        return {"y": wrap32(state["z"])}

    def advance(self, inputs: PortValues, state: BlockState) -> BlockState:
        self._require(inputs)
        return {"z": wrap32(inputs["u"])}


class SequenceFB(MooreBlock):
    """Scripted stimulus: emits a fixed sequence of values, one per step.

    With ``repeat=True`` the sequence wraps around; otherwise the last value
    holds. Used to model operator inputs and test vectors deterministically.
    """

    kind = "sequence"

    def __init__(self, name: str, values: Sequence[int], repeat: bool = True) -> None:
        if not values:
            raise ModelError(f"sequence {name}: empty value list")
        super().__init__(name, inputs=[], outputs=["y"])
        self.values = [wrap32(v) for v in values]
        self.repeat = repeat

    def state_vars(self) -> BlockState:
        return {"idx": 0}

    def moore_output(self, state: BlockState) -> PortValues:
        return {"y": self.values[min(state["idx"], len(self.values) - 1)]}

    def advance(self, inputs: PortValues, state: BlockState) -> BlockState:
        idx = state["idx"] + 1
        if idx >= len(self.values):
            idx = 0 if self.repeat else len(self.values) - 1
        return {"idx": idx}


class IntegratorFB(FunctionBlock):
    """Discrete integrator with clamping: ``acc = clamp(acc + u*num/den)``.

    ``y`` is the post-update accumulator, so the block is combinational in
    ``u`` (a same-step input change is visible on the output).
    """

    kind = "integrator"

    def __init__(self, name: str, num: int = 1, den: int = 1,
                 lo: int = -(1 << 30), hi: int = (1 << 30), init: int = 0) -> None:
        if den == 0:
            raise ModelError(f"integrator {name}: zero denominator")
        if lo > hi:
            raise ModelError(f"integrator {name}: lo {lo} > hi {hi}")
        super().__init__(name, inputs=["u"], outputs=["y"])
        self.num = wrap32(num)
        self.den = wrap32(den)
        self.lo = wrap32(lo)
        self.hi = wrap32(hi)
        self.init = wrap32(init)

    def params(self) -> Dict[str, int]:
        return {"num": self.num, "den": self.den, "lo": self.lo,
                "hi": self.hi, "init": self.init}

    def state_vars(self) -> BlockState:
        return {"acc": self.init}

    def behavior(self, inputs, state):
        self._require(inputs)
        delta = sdiv(wrap32(inputs["u"] * self.num), self.den)
        acc = min(max(wrap32(state["acc"] + delta), self.lo), self.hi)
        return {"y": acc}, {"acc": acc}


class PiFB(FunctionBlock):
    """Discrete PI controller in integer arithmetic with anti-windup.

    ``y = clamp(e*kp_num/kp_den + acc)`` where
    ``acc = clamp(acc + e*ki_num/ki_den)``.
    """

    kind = "pi"

    def __init__(self, name: str, kp_num: int, kp_den: int, ki_num: int, ki_den: int,
                 lo: int, hi: int) -> None:
        if kp_den == 0 or ki_den == 0:
            raise ModelError(f"pi {name}: zero denominator")
        if lo > hi:
            raise ModelError(f"pi {name}: lo {lo} > hi {hi}")
        super().__init__(name, inputs=["e"], outputs=["y"])
        self.kp_num, self.kp_den = wrap32(kp_num), wrap32(kp_den)
        self.ki_num, self.ki_den = wrap32(ki_num), wrap32(ki_den)
        self.lo, self.hi = wrap32(lo), wrap32(hi)

    def params(self) -> Dict[str, int]:
        return {"kp_num": self.kp_num, "kp_den": self.kp_den,
                "ki_num": self.ki_num, "ki_den": self.ki_den,
                "lo": self.lo, "hi": self.hi}

    def state_vars(self) -> BlockState:
        return {"acc": 0}

    def behavior(self, inputs, state):
        self._require(inputs)
        e = wrap32(inputs["e"])
        acc = min(max(wrap32(state["acc"] + sdiv(wrap32(e * self.ki_num), self.ki_den)),
                      self.lo), self.hi)
        y = min(max(wrap32(sdiv(wrap32(e * self.kp_num), self.kp_den) + acc),
                    self.lo), self.hi)
        return {"y": y}, {"acc": acc}


class AbsFB(FunctionBlock):
    """``y = |u|`` (INT_MIN maps to itself, as two's complement does)."""

    kind = "abs"

    def __init__(self, name: str) -> None:
        super().__init__(name, inputs=["u"], outputs=["y"])

    def behavior(self, inputs, state):
        self._require(inputs)
        u = wrap32(inputs["u"])
        return {"y": wrap32(-u) if u < 0 else u}, state


class EmaFB(FunctionBlock):
    """Exponential moving average: ``y += (u - y) * num / den``.

    The standard embedded low-pass filter in integer arithmetic; ``y`` is
    the post-update average (combinational in ``u``).
    """

    kind = "ema"

    def __init__(self, name: str, num: int = 1, den: int = 4,
                 init: int = 0) -> None:
        if den == 0:
            raise ModelError(f"ema {name}: zero denominator")
        super().__init__(name, inputs=["u"], outputs=["y"])
        self.num = wrap32(num)
        self.den = wrap32(den)
        self.init = wrap32(init)

    def params(self) -> Dict[str, int]:
        return {"num": self.num, "den": self.den, "init": self.init}

    def state_vars(self) -> BlockState:
        return {"avg": self.init}

    def behavior(self, inputs, state):
        self._require(inputs)
        avg = wrap32(state["avg"])
        delta = sdiv(wrap32(wrap32(inputs["u"] - avg) * self.num), self.den)
        avg = wrap32(avg + delta)
        return {"y": avg}, {"avg": avg}


class CounterFB(FunctionBlock):
    """Counts rising edges of ``inc``; ``rst != 0`` clears; wraps at modulus.

    ``y`` is the post-update count.
    """

    kind = "counter"

    def __init__(self, name: str, modulus: int = 0) -> None:
        if modulus < 0:
            raise ModelError(f"counter {name}: negative modulus")
        super().__init__(name, inputs=["inc", "rst"], outputs=["y"])
        self.modulus = modulus  # 0 = free-running 32-bit

    def params(self) -> Dict[str, int]:
        return {"modulus": self.modulus}

    def state_vars(self) -> BlockState:
        return {"count": 0, "prev": 0}

    def behavior(self, inputs, state):
        self._require(inputs)
        count = state["count"]
        rising = state["prev"] == 0 and inputs["inc"] != 0
        if inputs["rst"] != 0:
            count = 0
        elif rising:
            count = wrap32(count + 1)
            if self.modulus:
                count = smod(count, self.modulus)
        return {"y": count}, {"count": count, "prev": 1 if inputs["inc"] != 0 else 0}


class EdgeDetectFB(FunctionBlock):
    """``y = 1`` exactly on a rising edge of ``u`` (0 -> non-zero)."""

    kind = "edge"

    def __init__(self, name: str) -> None:
        super().__init__(name, inputs=["u"], outputs=["y"])

    def state_vars(self) -> BlockState:
        return {"prev": 0}

    def behavior(self, inputs, state):
        self._require(inputs)
        now = 1 if inputs["u"] != 0 else 0
        rising = 1 if (state["prev"] == 0 and now == 1) else 0
        return {"y": rising}, {"prev": now}


class StateMachineFB(FunctionBlock):
    """A state-machine function block wrapping a :class:`StateMachine`.

    Ports mirror the machine's declared inputs/outputs. The persistent state
    is the current state index (``_state``) plus the machine's variables and
    latched outputs.
    """

    kind = "state-machine"

    def __init__(self, name: str, machine: StateMachine) -> None:
        super().__init__(name, inputs=list(machine.inputs), outputs=list(machine.outputs))
        self.machine = machine

    def state_vars(self) -> BlockState:
        state: BlockState = {"_state": self.machine.states.index(self.machine.initial)}
        for out in self.machine.outputs:
            state[f"_out_{out}"] = 0
        state.update(self.machine.variables)
        return state

    def behavior(self, inputs, state):
        self._require(inputs)
        current = self.machine.states[state["_state"]]
        env = {name: state[f"_out_{name}"] for name in self.machine.outputs}
        env.update({name: state[name] for name in self.machine.variables})
        next_state, new_env = self.machine.step(current, env, inputs)
        new_block_state: BlockState = {"_state": self.machine.states.index(next_state)}
        outputs: PortValues = {}
        for out in self.machine.outputs:
            outputs[out] = new_env[out]
            new_block_state[f"_out_{out}"] = new_env[out]
        for name in self.machine.variables:
            new_block_state[name] = new_env[name]
        return outputs, new_block_state
