"""Modal function blocks: mode-switched inner networks.

A modal block owns several *modes*, each an inner component network with an
identical port signature. A ``mode`` selector input picks which network runs
this step; the other modes' states are frozen. This is COMDES's construct
for systems whose control law changes with an operating mode (startup /
normal / degraded, off / cruise, ...).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.comdes.blocks import BlockState, FunctionBlock, PortValues
from repro.comdes.dataflow import ComponentNetwork
from repro.errors import ModelError

MODE_SELECTOR_PORT = "mode"


class Mode:
    """One operating mode: a name plus its inner network."""

    def __init__(self, name: str, network: ComponentNetwork) -> None:
        self.name = name
        self.network = network

    def __repr__(self) -> str:
        return f"<Mode {self.name}>"


class ModalFB(FunctionBlock):
    """A function block that dispatches to one of several inner networks.

    The selector input ``mode`` is clamped to the valid mode index range, so
    a wild selector value degrades to the last mode instead of trapping —
    matching the defensive style of embedded mode logic.
    """

    kind = "modal"

    def __init__(self, name: str, modes: Sequence[Mode]) -> None:
        if not modes:
            raise ModelError(f"modal block {name}: needs at least one mode")
        signature = None
        for mode in modes:
            this_signature = (
                tuple(sorted(mode.network.input_ports)),
                tuple(sorted(mode.network.output_ports)),
            )
            if signature is None:
                signature = this_signature
            elif this_signature != signature:
                raise ModelError(
                    f"modal block {name}: mode {mode.name!r} port signature "
                    f"{this_signature} differs from {signature}"
                )
        data_inputs = list(signature[0])
        outputs = list(signature[1])
        if MODE_SELECTOR_PORT in data_inputs:
            raise ModelError(
                f"modal block {name}: inner networks must not use the reserved "
                f"port name {MODE_SELECTOR_PORT!r}"
            )
        super().__init__(name, inputs=[MODE_SELECTOR_PORT] + data_inputs, outputs=outputs)
        self.modes: List[Mode] = list(modes)
        self.data_inputs = data_inputs

    def mode_index(self, selector: int) -> int:
        """Clamp a selector value into the valid mode index range."""
        return min(max(selector, 0), len(self.modes) - 1)

    def state_vars(self) -> BlockState:
        """Flatten every mode's network state under a ``m<i>.block.var`` prefix.

        Outputs also persist (``_out_<port>``) so an inactive mode's last
        outputs hold if a mode produces no value for a port.
        """
        state: BlockState = {}
        for i, mode in enumerate(self.modes):
            for block_name, block_state in mode.network.initial_state().items():
                for var, value in block_state.items():
                    state[f"m{i}.{block_name}.{var}"] = value
        for port in self.outputs:
            state[f"_out_{port}"] = 0
        return state

    def _unflatten(self, state: BlockState, index: int) -> Dict[str, BlockState]:
        prefix = f"m{index}."
        network_state: Dict[str, BlockState] = {}
        for key, value in state.items():
            if key.startswith(prefix):
                block_name, var = key[len(prefix):].split(".", 1)
                network_state.setdefault(block_name, {})[var] = value
        return network_state

    def behavior(self, inputs: PortValues, state: BlockState) -> Tuple[PortValues, BlockState]:
        self._require(inputs)
        index = self.mode_index(inputs[MODE_SELECTOR_PORT])
        mode = self.modes[index]
        inner_inputs = {port: inputs[port] for port in self.data_inputs}
        inner_state = self._unflatten(state, index)
        outputs, new_inner_state = mode.network.step(inner_inputs, inner_state)

        new_state = dict(state)
        for block_name, block_state in new_inner_state.items():
            for var, value in block_state.items():
                new_state[f"m{index}.{block_name}.{var}"] = value
        for port in self.outputs:
            new_state[f"_out_{port}"] = outputs[port]
        return outputs, new_state
