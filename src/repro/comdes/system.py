"""Systems: networks of distributed actors exchanging labeled signals."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.comdes.actor import Actor
from repro.comdes.signals import Signal
from repro.errors import ModelError


class System:
    """A COMDES application: signals + actors (possibly on several nodes)."""

    def __init__(self, name: str, signals: Sequence[Signal],
                 actors: Sequence[Actor]) -> None:
        self.name = name
        self.signals: Dict[str, Signal] = {}
        for signal in signals:
            if signal.name in self.signals:
                raise ModelError(f"system {name}: duplicate signal {signal.name!r}")
            self.signals[signal.name] = signal
        self.actors: Dict[str, Actor] = {}
        for actor in actors:
            if actor.name in self.actors:
                raise ModelError(f"system {name}: duplicate actor {actor.name!r}")
            self.actors[actor.name] = actor

    # -- structure ---------------------------------------------------------

    def actor(self, name: str) -> Actor:
        """Look up an actor by name."""
        try:
            return self.actors[name]
        except KeyError:
            raise ModelError(f"system {self.name}: no actor {name!r}") from None

    def producers_of(self, signal_name: str) -> List[Actor]:
        """Actors that write *signal_name*."""
        return [a for a in self.actors.values() if signal_name in a.produced_signals()]

    def consumers_of(self, signal_name: str) -> List[Actor]:
        """Actors that read *signal_name*."""
        return [a for a in self.actors.values() if signal_name in a.consumed_signals()]

    def nodes(self) -> List[str]:
        """Distinct node names hosting at least one actor, sorted."""
        return sorted({a.node for a in self.actors.values()})

    # -- reference semantics ---------------------------------------------

    def initial_board(self) -> Dict[str, int]:
        """Signal board (name -> value) at time zero."""
        return {name: sig.init for name, sig in self.signals.items()}

    def lockstep_run(self, rounds: int,
                     overrides: Mapping[str, Sequence[int]] = None) -> List[Dict[str, int]]:
        """Synchronous reference execution.

        Every round, each actor reads a snapshot of the signal board taken at
        the round start and performs one network step; all outputs are
        published together at the round end. This matches Distributed Timed
        Multitasking with deadline = period (inputs latched at release,
        outputs at deadline), so the RTOS simulation is differentially tested
        against it.

        ``overrides`` optionally forces signal values per round (stimuli):
        mapping signal name -> per-round value sequence.

        Returns the board snapshot *after* each round.
        """
        overrides = overrides or {}
        board = self.initial_board()
        states = {
            name: actor.network.initial_state()
            for name, actor in self.actors.items()
        }
        order = sorted(
            self.actors.values(), key=lambda a: (a.task.priority, a.name)
        )
        history: List[Dict[str, int]] = []
        for round_index in range(rounds):
            for signal_name, values in overrides.items():
                if round_index < len(values):
                    board[signal_name] = values[round_index]
            snapshot = dict(board)
            pending: Dict[str, int] = {}
            for actor in order:
                inputs = {
                    port: snapshot[signal]
                    for port, signal in actor.inputs.items()
                }
                outputs, states[actor.name] = actor.network.step(
                    inputs, states[actor.name]
                )
                for port, signal in actor.outputs.items():
                    pending[signal] = outputs[port]
            board.update(pending)
            history.append(dict(board))
        return history

    def __repr__(self) -> str:
        return (f"<System {self.name}: {len(self.actors)} actors, "
                f"{len(self.signals)} signals, nodes={self.nodes()}>")
