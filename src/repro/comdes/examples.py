"""Canned COMDES example systems.

These are the workloads the paper's domain motivates — small embedded
control applications mixing state-machine and dataflow models — used across
tests, examples and benchmarks. All are deterministic.
"""

from __future__ import annotations

from repro.comdes.actor import Actor, TaskSpec
from repro.comdes.blocks import (
    DelayFB,
    GainFB,
    IntegratorFB,
    PiFB,
    SequenceFB,
    StateMachineFB,
    SubFB,
)
from repro.comdes.dataflow import ComponentNetwork, Connection, PortRef
from repro.comdes.expr import band, const, eq, ge, gt, lt, var
from repro.comdes.fsm import Assign, StateMachine, Transition
from repro.comdes.modal import ModalFB, Mode
from repro.comdes.signals import Signal
from repro.comdes.system import System
from repro.util.timeunits import ms


def blinker_machine(half_period_steps: int = 3) -> StateMachine:
    """A two-state LED blinker: toggles every *half_period_steps* steps."""
    n = half_period_steps
    return StateMachine(
        name="blinker",
        states=["OFF", "ON"],
        initial="OFF",
        inputs=[],
        outputs=["led"],
        variables={"t": 0},
        transitions=[
            Transition("OFF", "ON", guard=ge(var("t"), const(n - 1)),
                       actions=[Assign("t", const(0)), Assign("led", const(1))]),
            Transition("OFF", "OFF", guard=lt(var("t"), const(n - 1)),
                       actions=[Assign("t", var("t") + const(1))]),
            Transition("ON", "OFF", guard=ge(var("t"), const(n - 1)),
                       actions=[Assign("t", const(0)), Assign("led", const(0))]),
            Transition("ON", "ON", guard=lt(var("t"), const(n - 1)),
                       actions=[Assign("t", var("t") + const(1))]),
        ],
    )


def blinker_system(period_us: int = ms(10)) -> System:
    """Single-actor system: the blinker driving an ``led`` signal."""
    machine = blinker_machine()
    network = ComponentNetwork(
        name="blinker_net",
        blocks=[StateMachineFB("blink", machine)],
        connections=[],
        input_ports={},
        output_ports={"led": PortRef("blink", "led")},
    )
    actor = Actor(
        name="blinky",
        network=network,
        task=TaskSpec(period_us=period_us, priority=1),
        inputs={},
        outputs={"led": "led"},
    )
    return System("blinker", signals=[Signal("led")], actors=[actor])


def traffic_light_machine(red_steps: int = 4, green_steps: int = 4,
                          yellow_steps: int = 2) -> StateMachine:
    """Classic three-state traffic light with a pedestrian request input.

    ``btn`` (pedestrian request) shortens the green phase: when pressed
    during GREEN, the light moves to YELLOW immediately. ``light`` encodes
    the active lamp (0=red, 1=green, 2=yellow).
    """
    return StateMachine(
        name="traffic_light",
        states=["RED", "GREEN", "YELLOW"],
        initial="RED",
        inputs=["btn"],
        outputs=["light"],
        variables={"t": 0},
        transitions=[
            Transition("RED", "GREEN", guard=ge(var("t"), const(red_steps - 1)),
                       actions=[Assign("t", const(0)), Assign("light", const(1))]),
            Transition("RED", "RED",
                       actions=[Assign("t", var("t") + const(1))]),
            Transition("GREEN", "YELLOW", guard=gt(var("btn"), const(0)),
                       actions=[Assign("t", const(0)), Assign("light", const(2))]),
            Transition("GREEN", "YELLOW",
                       guard=ge(var("t"), const(green_steps - 1)),
                       actions=[Assign("t", const(0)), Assign("light", const(2))]),
            Transition("GREEN", "GREEN",
                       actions=[Assign("t", var("t") + const(1))]),
            Transition("YELLOW", "RED",
                       guard=ge(var("t"), const(yellow_steps - 1)),
                       actions=[Assign("t", const(0)), Assign("light", const(0))]),
            Transition("YELLOW", "YELLOW",
                       actions=[Assign("t", var("t") + const(1))]),
        ],
    )


def traffic_light_system(period_us: int = ms(100)) -> System:
    """Two actors: a scripted pedestrian button and the light controller."""
    # Press every 7th step: co-prime with the 10-step lamp cycle, so the
    # request sweeps across all phases (including GREEN, which it shortens).
    button_net = ComponentNetwork(
        name="button_net",
        blocks=[SequenceFB("script", values=[0] * 6 + [1], repeat=True)],
        input_ports={},
        output_ports={"btn": PortRef("script", "y")},
    )
    hmi = Actor(
        name="pedestrian",
        network=button_net,
        task=TaskSpec(period_us=period_us, priority=1),
        outputs={"btn": "btn"},
    )
    light_net = ComponentNetwork(
        name="light_net",
        blocks=[StateMachineFB("lamp", traffic_light_machine())],
        input_ports={"btn": [PortRef("lamp", "btn")]},
        output_ports={"light": PortRef("lamp", "light")},
    )
    controller = Actor(
        name="lights",
        network=light_net,
        task=TaskSpec(period_us=period_us, priority=2),
        inputs={"btn": "btn"},
        outputs={"light": "light"},
    )
    return System(
        "traffic_light",
        signals=[Signal("btn"), Signal("light")],
        actors=[hmi, controller],
    )


def cruise_mode_machine() -> StateMachine:
    """Cruise-control supervisory mode logic.

    OFF -> CRUISE on ``btn_set`` (captures current speed as setpoint);
    CRUISE -> OFF on ``btn_cancel`` or when speed drops below 200 (stall
    guard). ``mode`` output selects the modal controller (0=OFF, 1=CRUISE).
    """
    return StateMachine(
        name="cruise_mode",
        states=["OFF", "CRUISE"],
        initial="OFF",
        inputs=["btn_set", "btn_cancel", "speed"],
        outputs=["mode", "setpoint"],
        variables={},
        transitions=[
            Transition("OFF", "CRUISE", guard=gt(var("btn_set"), const(0)),
                       actions=[Assign("mode", const(1)),
                                Assign("setpoint", var("speed"))]),
            Transition("CRUISE", "OFF", guard=gt(var("btn_cancel"), const(0)),
                       actions=[Assign("mode", const(0)),
                                Assign("setpoint", const(0))]),
            Transition("CRUISE", "OFF", guard=lt(var("speed"), const(200)),
                       actions=[Assign("mode", const(0)),
                                Assign("setpoint", const(0))]),
        ],
    )


def _cruise_off_mode() -> Mode:
    """OFF mode: throttle forced to zero (inputs declared but unused)."""
    network = ComponentNetwork(
        name="off_net",
        blocks=[SequenceFB("zero", values=[0])],
        input_ports={"speed": [], "setpoint": []},
        output_ports={"throttle": PortRef("zero", "y")},
    )
    return Mode("OFF", network)


def _cruise_on_mode() -> Mode:
    """CRUISE mode: PI control of speed toward the captured setpoint."""
    network = ComponentNetwork(
        name="pi_net",
        blocks=[
            SubFB("err"),                       # e = setpoint - speed
            PiFB("pi", kp_num=3, kp_den=2, ki_num=1, ki_den=4, lo=0, hi=1000),
        ],
        connections=[Connection.wire("err.y", "pi.e")],
        input_ports={
            "setpoint": [PortRef("err", "a")],
            "speed": [PortRef("err", "b")],
        },
        output_ports={"throttle": PortRef("pi", "y")},
    )
    return Mode("CRUISE", network)


def cruise_control_system(period_us: int = ms(20)) -> System:
    """The paper-style heterogeneous workload: FSM + modal dataflow + plant.

    Three actors on two nodes:

    * ``hmi`` — scripted set/cancel button presses (stimulus).
    * ``controller`` — a StateMachineFB (mode logic) feeding a ModalFB
      (OFF: zero throttle; CRUISE: PI control). This is the paper's
      "heterogeneous model": a state instance invoking a dataflow instance.
    * ``plant`` — vehicle longitudinal dynamics: speed integrates
      (throttle - drag), with a unit delay breaking the feedback loop.
    """
    hmi_net = ComponentNetwork(
        name="hmi_net",
        blocks=[
            SequenceFB("set_btn", values=[0, 0, 0, 0, 1] + [0] * 95, repeat=True),
            SequenceFB("cancel_btn", values=[0] * 80 + [1] + [0] * 19, repeat=True),
        ],
        input_ports={},
        output_ports={
            "btn_set": PortRef("set_btn", "y"),
            "btn_cancel": PortRef("cancel_btn", "y"),
        },
    )
    hmi = Actor(
        name="hmi",
        network=hmi_net,
        task=TaskSpec(period_us=period_us, priority=1),
        outputs={"btn_set": "btn_set", "btn_cancel": "btn_cancel"},
        node="node0",
    )

    controller_net = ComponentNetwork(
        name="controller_net",
        blocks=[
            StateMachineFB("mode_logic", cruise_mode_machine()),
            ModalFB("regulator", modes=[_cruise_off_mode(), _cruise_on_mode()]),
        ],
        connections=[
            Connection.wire("mode_logic.mode", "regulator.mode"),
            Connection.wire("mode_logic.setpoint", "regulator.setpoint"),
        ],
        input_ports={
            "btn_set": [PortRef("mode_logic", "btn_set")],
            "btn_cancel": [PortRef("mode_logic", "btn_cancel")],
            "speed": [
                PortRef("mode_logic", "speed"),
                PortRef("regulator", "speed"),
            ],
        },
        output_ports={
            "throttle": PortRef("regulator", "throttle"),
            "mode": PortRef("mode_logic", "mode"),
        },
    )
    controller = Actor(
        name="controller",
        network=controller_net,
        task=TaskSpec(period_us=period_us, priority=2),
        inputs={"btn_set": "btn_set", "btn_cancel": "btn_cancel",
                "speed": "speed"},
        outputs={"throttle": "throttle", "mode": "mode"},
        node="node0",
    )

    plant_net = ComponentNetwork(
        name="plant_net",
        blocks=[
            DelayFB("speed_z", init=300),        # previous speed (feedback)
            GainFB("drag", num=1, den=4),        # drag = speed / 4
            SubFB("net_force"),                  # throttle - drag
            IntegratorFB("dynamics", num=1, den=8, lo=0, hi=4000, init=300),
        ],
        connections=[
            Connection.wire("speed_z.y", "drag.u"),
            Connection.wire("drag.y", "net_force.b"),
            Connection.wire("net_force.y", "dynamics.u"),
            Connection.wire("dynamics.y", "speed_z.u"),
        ],
        input_ports={"throttle": [PortRef("net_force", "a")]},
        output_ports={"speed": PortRef("dynamics", "y")},
    )
    plant = Actor(
        name="plant",
        network=plant_net,
        task=TaskSpec(period_us=period_us, priority=3),
        inputs={"throttle": "throttle"},
        outputs={"speed": "speed"},
        node="node1",
    )

    return System(
        "cruise_control",
        signals=[
            Signal("btn_set"), Signal("btn_cancel"),
            Signal("speed", init=300, unit="mm/s"),
            Signal("throttle", unit="0.1%"),
            Signal("mode"),
        ],
        actors=[hmi, controller, plant],
    )


def conveyor_machine(travel_steps: int = 2) -> StateMachine:
    """Conveyor control: feed an item to the press, wait for completion.

    IDLE -> MOVING on an item arrival (belt on); MOVING -> DELIVER after the
    travel time (belt off, item handed to the press); DELIVER -> IDLE once
    the press reports done.
    """
    return StateMachine(
        name="conveyor",
        states=["IDLE", "MOVING", "DELIVER"],
        initial="IDLE",
        inputs=["item_present", "press_done"],
        outputs=["belt", "at_press"],
        variables={"t": 0},
        transitions=[
            Transition("IDLE", "MOVING", guard=gt(var("item_present"), const(0)),
                       actions=[Assign("belt", const(1)),
                                Assign("t", const(0))]),
            Transition("MOVING", "DELIVER",
                       guard=ge(var("t"), const(travel_steps)),
                       actions=[Assign("belt", const(0)),
                                Assign("at_press", const(1)),
                                Assign("t", const(0))]),
            Transition("MOVING", "MOVING",
                       actions=[Assign("t", var("t") + const(1))]),
            Transition("DELIVER", "IDLE",
                       guard=gt(var("press_done"), const(0)),
                       actions=[Assign("at_press", const(0))]),
        ],
    )


def press_machine(press_steps: int = 1) -> StateMachine:
    """Press control with a completion handshake.

    OPEN -> PRESSING when an item waits (and the previous handshake is
    cleared); PRESSING -> OPENING after the press time; OPENING -> OPEN,
    signalling done. The done flag resets once the conveyor takes the item
    away.
    """
    return StateMachine(
        name="press",
        states=["OPEN", "PRESSING", "OPENING"],
        initial="OPEN",
        inputs=["at_press"],
        outputs=["press_done"],
        variables={"t": 0},
        transitions=[
            Transition("OPEN", "PRESSING",
                       guard=band(gt(var("at_press"), const(0)),
                                  eq(var("press_done"), const(0))),
                       actions=[Assign("t", const(0))]),
            Transition("OPEN", "OPEN",
                       guard=band(eq(var("at_press"), const(0)),
                                  eq(var("press_done"), const(1))),
                       actions=[Assign("press_done", const(0))]),
            Transition("PRESSING", "OPENING",
                       guard=ge(var("t"), const(press_steps)),
                       actions=[Assign("t", const(0))]),
            Transition("PRESSING", "PRESSING",
                       actions=[Assign("t", var("t") + const(1))]),
            Transition("OPENING", "OPEN",
                       actions=[Assign("press_done", const(1))]),
        ],
    )


def production_cell_system(period_us: int = ms(50)) -> System:
    """A small production cell: feeder -> conveyor -> press.

    The paper's domain is distributed embedded *control*; this workload has
    the safety property such systems live by: the press must never close
    while the belt is running (checked by a cross-actor invariant monitor in
    :mod:`repro.experiments.requirements`).
    """
    feeder_net = ComponentNetwork(
        name="feeder_net",
        blocks=[SequenceFB("items", values=[1] + [0] * 9, repeat=True)],
        output_ports={"item_present": PortRef("items", "y")},
    )
    feeder = Actor(
        name="feeder",
        network=feeder_net,
        task=TaskSpec(period_us=period_us, priority=1),
        outputs={"item_present": "item_present"},
    )
    conveyor_net = ComponentNetwork(
        name="conveyor_net",
        blocks=[StateMachineFB("belt_ctl", conveyor_machine())],
        input_ports={
            "item_present": [PortRef("belt_ctl", "item_present")],
            "press_done": [PortRef("belt_ctl", "press_done")],
        },
        output_ports={
            "belt": PortRef("belt_ctl", "belt"),
            "at_press": PortRef("belt_ctl", "at_press"),
        },
    )
    conveyor = Actor(
        name="conveyor",
        network=conveyor_net,
        task=TaskSpec(period_us=period_us, priority=2),
        inputs={"item_present": "item_present", "press_done": "press_done"},
        outputs={"belt": "belt", "at_press": "at_press"},
    )
    press_net = ComponentNetwork(
        name="press_net",
        blocks=[StateMachineFB("ram_ctl", press_machine())],
        input_ports={"at_press": [PortRef("ram_ctl", "at_press")]},
        output_ports={"press_done": PortRef("ram_ctl", "press_done")},
    )
    press = Actor(
        name="press",
        network=press_net,
        task=TaskSpec(period_us=period_us, priority=3),
        inputs={"at_press": "at_press"},
        outputs={"press_done": "press_done"},
    )
    return System(
        "production_cell",
        signals=[Signal("item_present"), Signal("belt"),
                 Signal("at_press"), Signal("press_done")],
        actors=[feeder, conveyor, press],
    )
