"""Composite function blocks: a whole network packaged as one block.

COMDES builds hierarchy by composition — a composite block exposes its inner
network's boundary ports as its own and flattens the inner state under
``<block>.<var>`` keys.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.comdes.blocks import BlockState, FunctionBlock, PortValues
from repro.comdes.dataflow import ComponentNetwork


class CompositeFB(FunctionBlock):
    """A function block whose behaviour is an inner component network."""

    kind = "composite"

    def __init__(self, name: str, network: ComponentNetwork) -> None:
        super().__init__(
            name,
            inputs=sorted(network.input_ports),
            outputs=sorted(network.output_ports),
        )
        self.network = network

    def state_vars(self) -> BlockState:
        state: BlockState = {}
        for block_name, block_state in self.network.initial_state().items():
            for var, value in block_state.items():
                state[f"{block_name}.{var}"] = value
        return state

    def behavior(self, inputs: PortValues, state: BlockState) -> Tuple[PortValues, BlockState]:
        self._require(inputs)
        inner: Dict[str, BlockState] = {}
        for key, value in state.items():
            block_name, var = key.split(".", 1)
            inner.setdefault(block_name, {})[var] = value
        outputs, new_inner = self.network.step(inputs, inner)
        new_state: BlockState = {}
        for block_name, block_state in new_inner.items():
            for var, value in block_state.items():
                new_state[f"{block_name}.{var}"] = value
        return outputs, new_state
