"""COMDES: the domain-specific modeling language used as GMDF's input.

COMDES (COMponent-based design of Distributed Embedded Systems, Angelov et
al.) models an application as a network of **actors** exchanging labeled
**signals** with non-blocking state-message semantics. Each actor contains a
**component network** of prefabricated function blocks — basic (signal
processing), composite, modal and state-machine blocks — executed under a
clocked synchronous regime (Distributed Timed Multitasking).

This package implements the modeling constructs plus a reference interpreter
(the ground truth that generated target code is differentially tested
against), the COMDES metamodel in :mod:`repro.meta` terms, and canned example
systems used throughout tests, examples and benchmarks.
"""

from repro.comdes.expr import (
    Expr,
    band,
    bor,
    const,
    eq,
    ge,
    gt,
    le,
    lnot,
    lt,
    maximum,
    minimum,
    ne,
    var,
)
from repro.comdes.signals import Signal
from repro.comdes.fsm import Assign, StateMachine, Transition
from repro.comdes.blocks import (
    AbsFB,
    AddFB,
    CompareFB,
    ConstantFB,
    CounterFB,
    DelayFB,
    EdgeDetectFB,
    EmaFB,
    FunctionBlock,
    GainFB,
    IntegratorFB,
    LimiterFB,
    MulFB,
    MuxFB,
    PiFB,
    SequenceFB,
    StateMachineFB,
    SubFB,
    ThresholdFB,
)
from repro.comdes.dataflow import ComponentNetwork, Connection, PortRef
from repro.comdes.composite import CompositeFB
from repro.comdes.modal import ModalFB, Mode
from repro.comdes.actor import Actor, TaskSpec
from repro.comdes.system import System
from repro.comdes.metamodel import comdes_metamodel
from repro.comdes.reflect import system_to_model
from repro.comdes.validate import validate_system

__all__ = [
    "Expr", "const", "var", "minimum", "maximum",
    "eq", "ne", "lt", "le", "gt", "ge", "band", "bor", "lnot",
    "Signal",
    "Assign", "Transition", "StateMachine",
    "FunctionBlock", "ConstantFB", "GainFB", "AddFB", "SubFB", "MulFB",
    "ThresholdFB", "LimiterFB", "DelayFB", "IntegratorFB", "PiFB", "MuxFB",
    "CompareFB", "SequenceFB", "StateMachineFB",
    "AbsFB", "EmaFB", "CounterFB", "EdgeDetectFB",
    "PortRef", "Connection", "ComponentNetwork",
    "CompositeFB", "Mode", "ModalFB",
    "TaskSpec", "Actor",
    "System",
    "comdes_metamodel", "system_to_model", "validate_system",
]
