"""A fluent builder for COMDES systems — the "modeling tool" facade.

Building systems from raw constructors is verbose (see
:mod:`repro.comdes.examples`); the builder reads like the diagram::

    system = (SystemBuilder("thermostat")
              .signal("temp", init=200)
              .signal("heat")
              .actor("controller", period_us=ms(50))
                  .machine("ctl", thermostat_machine())
                  .reads("temp", into="ctl.temp")
                  .writes("heat", from_="ctl.heat")
              .done()
              .build())

Validation happens at ``build()`` so incremental construction never
half-fails.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.comdes.actor import Actor, TaskSpec
from repro.comdes.blocks import FunctionBlock, StateMachineFB
from repro.comdes.dataflow import ComponentNetwork, Connection, PortRef
from repro.comdes.fsm import StateMachine
from repro.comdes.signals import Signal
from repro.comdes.system import System
from repro.comdes.validate import validate_system
from repro.errors import ModelError


class ActorBuilder:
    """Builds one actor inside a :class:`SystemBuilder`."""

    def __init__(self, parent: "SystemBuilder", name: str, period_us: int,
                 deadline_us: Optional[int], offset_us: int, priority: int,
                 node: str) -> None:
        self._parent = parent
        self._name = name
        self._task = TaskSpec(period_us, deadline_us, offset_us, priority)
        self._node = node
        self._blocks: List[FunctionBlock] = []
        self._connections: List[Connection] = []
        self._input_ports: Dict[str, List[PortRef]] = {}
        self._output_ports: Dict[str, PortRef] = {}
        self._inputs: Dict[str, str] = {}
        self._outputs: Dict[str, str] = {}

    # -- content ------------------------------------------------------------

    def block(self, block: FunctionBlock) -> "ActorBuilder":
        """Add a prefabricated function block."""
        self._blocks.append(block)
        return self

    def machine(self, name: str, machine: StateMachine) -> "ActorBuilder":
        """Add a state-machine function block."""
        return self.block(StateMachineFB(name, machine))

    def wire(self, src: str, dst: str) -> "ActorBuilder":
        """Connect ``"block.port" -> "block.port"`` inside the actor."""
        self._connections.append(Connection.wire(src, dst))
        return self

    # -- boundary ---------------------------------------------------------

    def reads(self, signal: str, into: str) -> "ActorBuilder":
        """Bind a consumed signal to one or more block inputs.

        ``into`` is ``"block.port"``; call again with the same signal to fan
        out to more ports.
        """
        port_name = signal  # network input port named after the signal
        self._input_ports.setdefault(port_name, []).append(
            PortRef.parse(into))
        self._inputs[port_name] = signal
        return self

    def writes(self, signal: str, from_: str) -> "ActorBuilder":
        """Bind a produced signal to a block output (``"block.port"``)."""
        port_name = signal
        if port_name in self._output_ports:
            raise ModelError(
                f"actor {self._name}: signal {signal!r} already written"
            )
        self._output_ports[port_name] = PortRef.parse(from_)
        self._outputs[port_name] = signal
        return self

    def done(self) -> "SystemBuilder":
        """Finish this actor and return to the system builder."""
        network = ComponentNetwork(
            name=f"{self._name}_net",
            blocks=self._blocks,
            connections=self._connections,
            input_ports=self._input_ports,
            output_ports=self._output_ports,
        )
        actor = Actor(self._name, network, self._task,
                      inputs=self._inputs, outputs=self._outputs,
                      node=self._node)
        self._parent._actors.append(actor)
        return self._parent


class SystemBuilder:
    """Accumulates signals and actors; validates on build()."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._signals: List[Signal] = []
        self._actors: List[Actor] = []

    def signal(self, name: str, init: int = 0, unit: str = "") -> "SystemBuilder":
        """Declare a labeled signal."""
        self._signals.append(Signal(name, init=init, unit=unit))
        return self

    def actor(self, name: str, period_us: int,
              deadline_us: Optional[int] = None, offset_us: int = 0,
              priority: Optional[int] = None,
              node: str = "node0") -> ActorBuilder:
        """Open an actor builder (priority defaults to declaration order)."""
        effective_priority = (priority if priority is not None
                              else len(self._actors) + 1)
        return ActorBuilder(self, name, period_us, deadline_us, offset_us,
                            effective_priority, node)

    def build(self) -> System:
        """Assemble and validate the system."""
        system = System(self._name, self._signals, self._actors)
        validate_system(system)
        return system
