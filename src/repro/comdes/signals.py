"""Labeled signals — COMDES's inter-actor messages.

Actors communicate by *state messages*: a producer overwrites the signal's
current value, consumers read the latest value without blocking. A signal is
therefore just a named, typed cell with an initial value.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.util.intmath import wrap32


class Signal:
    """A labeled state-message signal exchanged between actors."""

    def __init__(self, name: str, init: int = 0, unit: str = "", doc: str = "") -> None:
        if not name or not name.isidentifier():
            raise ModelError(f"signal name must be an identifier, got {name!r}")
        self.name = name
        self.init = wrap32(init)
        self.unit = unit
        self.doc = doc

    def __repr__(self) -> str:
        suffix = f" [{self.unit}]" if self.unit else ""
        return f"<Signal {self.name}={self.init}{suffix}>"
