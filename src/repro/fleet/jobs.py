"""Declarative, picklable job descriptions for fleet workers.

A :class:`JobSpec` never carries a live :class:`~repro.target.board.Board`,
firmware image, monitor suite or lambda across the process boundary — it
carries *recipes*: importable callable references plus the fault
coordinates ``(category, kind, seed)``. The worker rebuilds the whole
experiment (system, firmware, fault, debuggers) from those inputs, so a
job produces the same result no matter which process, chunk or machine
executes it. That property is what makes the parallel campaign equal to
the serial one bit for bit.

Callable references are ``"module:qualname"`` strings resolved with
:func:`resolve_ref`. :func:`callable_ref` derives (and validates) the
reference of a module-level callable; lambdas and closures are rejected
up front with an actionable error instead of a pickling crash deep inside
a worker.
"""

from __future__ import annotations

import importlib
import multiprocessing
from typing import Callable, List, Optional, Sequence

from repro.codegen.instrument import InstrumentationPlan
from repro.errors import FleetError
from repro.faults.design import FaultDescriptor

#: the control experiment always sits at canonical index 0
CONTROL_INDEX = 0

#: categories a JobSpec may carry
CATEGORIES = ("control", "design", "implementation", "comm")


def default_mp_context() -> str:
    """The start-method policy shared by every fleet process layer.

    Fork where the platform offers it (workers inherit the parent's
    imported modules and sys.path, so test-module refs resolve), spawn
    everywhere else.
    """
    return ("fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")


def callable_ref(fn: Callable) -> str:
    """The importable ``"module:qualname"`` reference of *fn*.

    Raises :class:`FleetError` for anything a worker process could not
    re-import by name (lambdas, closures, instance methods, callables
    whose name does not resolve back to the same object).
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise FleetError(f"{fn!r} has no importable module/qualname")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise FleetError(
            f"{module}:{qualname} is not importable by name; fleet jobs "
            f"need module-level callables (no lambdas or closures)"
        )
    ref = f"{module}:{qualname}"
    if resolve_ref(ref) is not fn:
        raise FleetError(
            f"{ref} does not resolve back to {fn!r}; pass the module-level "
            f"callable itself, not a wrapper"
        )
    return ref


def resolve_ref(ref: str) -> Callable:
    """Import the callable behind a ``"module:qualname"`` reference."""
    module_name, sep, qualname = ref.partition(":")
    if not sep or not module_name or not qualname:
        raise FleetError(f"malformed callable reference {ref!r} "
                         f"(expected 'module:qualname')")
    try:
        obj = importlib.import_module(module_name)
    except ImportError as exc:
        raise FleetError(f"cannot import module of {ref!r}: {exc}") from exc
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise FleetError(f"{module_name!r} has no attribute chain "
                             f"{qualname!r}") from None
    if not callable(obj):
        raise FleetError(f"{ref!r} resolves to non-callable {obj!r}")
    return obj


class JobSpec:
    """One campaign experiment, described declaratively.

    Everything is a plain value: strings, ints and an
    :class:`InstrumentationPlan` (itself attribute-only). ``index`` is
    the job's canonical position in the corpus — merge order, never
    execution order. A non-empty ``trace_dir`` asks the worker to spill
    the model debugger's execution trace into a per-job
    :class:`~repro.tracedb.store.TraceStore` under that directory and
    hand the path back (never the trace itself) on the result.

    ``cost_hint`` is an optional relative execution-weight estimate
    (firmware activations the job will simulate, stamped by
    :func:`enumerate_campaign_jobs`) that the elastic scheduler uses
    for cost-weighted initial placement. It is advisory only — the
    scheduler falls back to uniform weights when absent — and it is
    pickle-compatible both ways: specs serialized before the field
    existed deserialize with ``cost_hint=None``.
    """

    __slots__ = ("index", "category", "kind", "seed", "duration_us",
                 "system_ref", "monitor_ref", "watch_ref", "plan",
                 "trace_dir", "cost_hint")

    def __init__(self, index: int, category: str, kind: str, seed: int,
                 duration_us: int, system_ref: str, monitor_ref: str,
                 watch_ref: str, plan: InstrumentationPlan,
                 trace_dir: str = "",
                 cost_hint: Optional[int] = None) -> None:
        if category not in CATEGORIES:
            raise FleetError(f"unknown job category {category!r}; "
                             f"options: {CATEGORIES}")
        if duration_us <= 0:
            raise FleetError(f"job duration must be positive, got {duration_us}")
        if cost_hint is not None and cost_hint < 1:
            raise FleetError(f"cost_hint must be >= 1 when set, "
                             f"got {cost_hint}")
        self.index = index
        self.category = category
        self.kind = kind
        self.seed = seed
        self.duration_us = duration_us
        self.system_ref = system_ref
        self.monitor_ref = monitor_ref
        self.watch_ref = watch_ref
        self.plan = plan
        self.trace_dir = trace_dir
        self.cost_hint = cost_hint

    def __getstate__(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        # forward-compatible unpickling: payloads serialized before a
        # slot existed restore with that slot's neutral default
        self.cost_hint = None
        for name, value in state.items():
            setattr(self, name, value)

    @property
    def job_id(self) -> str:
        """Stable human-readable identity (also the log/merge key)."""
        if self.category == "control":
            return "control"
        return f"{self.category}/{self.kind}/{self.seed}"

    def __repr__(self) -> str:
        return f"<JobSpec #{self.index} {self.job_id}>"


class JobResult:
    """What a worker hands back for one :class:`JobSpec`.

    Exactly one of three shapes:

    * executed — ``model`` and ``code`` hold ``(detected, latency, how)``
      tuples (``fault`` set for fault jobs, ``None`` for the control);
    * declined — the injector reported the kind does not apply
      (``declined=True``, nothing else set);
    * failed — the worker caught an exception (or died); ``error`` holds
      the structured failure ``{"type", "message", "traceback"}``.

    ``trace_path`` is the path-based trace handoff: the root of the
    per-job store the worker spilled into (empty when the job did not
    collect traces). Paths cross the process boundary; traces never do.

    ``retries`` counts how many isolated retry attempts the runner
    burned before this result landed: 0 for a first-pass success, N for
    a job that succeeded on (or terminally failed after) retry N.
    """

    __slots__ = ("index", "job_id", "fault", "declined", "model", "code",
                 "classified_as", "error", "worker_pid", "trace_path",
                 "retries")

    def __init__(self, index: int, job_id: str,
                 fault: Optional[FaultDescriptor] = None,
                 declined: bool = False,
                 model: Optional[tuple] = None,
                 code: Optional[tuple] = None,
                 classified_as: str = "",
                 error: Optional[dict] = None,
                 worker_pid: int = 0,
                 trace_path: str = "",
                 retries: int = 0) -> None:
        self.index = index
        self.job_id = job_id
        self.fault = fault
        self.declined = declined
        self.model = model
        self.code = code
        self.classified_as = classified_as
        self.error = error
        self.worker_pid = worker_pid
        self.trace_path = trace_path
        self.retries = retries

    @property
    def failed(self) -> bool:
        """Whether this job died instead of producing a verdict."""
        return self.error is not None

    @property
    def status(self) -> str:
        """Canonical one-word outcome: ``failed``/``declined``/``ok``.

        The shared vocabulary of the ``fleet.job`` metric series and
        the live plane's finish heartbeats, derived in one place so the
        two surfaces can never disagree.
        """
        if self.failed:
            return "failed"
        return "declined" if self.declined else "ok"

    def __repr__(self) -> str:
        if self.failed:
            status = f"FAILED({self.error['type']})"
        elif self.declined:
            status = "declined"
        else:
            status = (f"model={'HIT' if self.model[0] else 'miss'} "
                      f"code={'HIT' if self.code[0] else 'miss'}")
        return f"<JobResult #{self.index} {self.job_id} {status}>"


def estimate_cost_hints(system, duration_us: int) -> dict:
    """Per-category activation-count cost estimates for one system.

    The dominant cost of a campaign job is simulated firmware
    activations: every actor fires ``duration_us / period_us`` times
    per executed phase. Control and comm jobs execute two phases
    (model debugger + generated code); design and implementation jobs
    add a third (faulty regeneration / patched-image run plus
    classification). Absolute scale is irrelevant — the scheduler only
    compares hints against each other.
    """
    activations = sum(max(1, duration_us // max(actor.task.period_us, 1))
                      for actor in system.actors.values()) or 1
    return {"control": 2 * activations, "comm": 2 * activations,
            "design": 3 * activations, "implementation": 3 * activations}


def enumerate_campaign_jobs(
    system_factory: Callable,
    monitor_factory: Callable,
    watch_factory: Callable,
    design_kinds: Sequence[str],
    impl_kinds: Sequence[str],
    seeds: Sequence[int],
    duration_us: int,
    plan: InstrumentationPlan,
    master_seed: Optional[int] = None,
    seeds_per_kind: Optional[int] = None,
    trace_dir: Optional[str] = None,
    comm_kinds: Sequence[str] = (),
) -> List[JobSpec]:
    """The campaign corpus as an ordered job list (control first).

    Enumeration order is the canonical result order: control, then
    design kinds x seeds, then implementation kinds x seeds, then comm
    (transport-fault) kinds x seeds — exactly the serial loop's order,
    independent of how jobs are later chunked or scheduled. Per-kind
    seeds come from :func:`~repro.faults.campaign.campaign_seeds`, so
    derived-seed corpora (``master_seed``) enumerate identically here
    and inline.
    """
    if not callable(watch_factory):
        raise FleetError(
            "a parallel campaign needs code watches as an importable "
            "zero-argument factory (e.g. traffic_light_code_watches), "
            f"not a pre-built list; got {type(watch_factory).__name__}"
        )
    from repro.faults.campaign import campaign_seeds  # deferred: cycle
    system_ref = callable_ref(system_factory)
    monitor_ref = callable_ref(monitor_factory)
    watch_ref = callable_ref(watch_factory)
    try:
        cost_hints = estimate_cost_hints(system_factory(), duration_us)
    except Exception:  # noqa: BLE001 - hints are advisory, never fatal
        cost_hints = {}

    def spec(index: int, category: str, kind: str, seed: int) -> JobSpec:
        return JobSpec(index, category, kind, seed, duration_us,
                       system_ref, monitor_ref, watch_ref, plan,
                       trace_dir=trace_dir or "",
                       cost_hint=cost_hints.get(category))

    specs = [spec(CONTROL_INDEX, "control", "", 0)]
    index = CONTROL_INDEX + 1
    for category, kinds in (("design", design_kinds),
                            ("implementation", impl_kinds),
                            ("comm", comm_kinds)):
        for kind in kinds:
            for seed in campaign_seeds(category, kind, seeds,
                                       master_seed, seeds_per_kind):
                specs.append(spec(index, category, kind, seed))
                index += 1
    return specs
