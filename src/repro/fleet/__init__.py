"""repro.fleet — elastic scheduled execution for campaigns and sharding.

Parson's observation (*Extension Language Automation of Embedded System
Debugging*) is that a debugger becomes an experimentation platform the
moment its runs can be scripted and batched. This package is that batch
layer: fault campaigns and multi-board simulations stop serializing on
one interpreter and fan out over worker processes, so scenario count
scales with cores instead of wall-clock.

Architecture — policy shells around one scheduler core::

    merge.py     results -> CampaignResult       canonical order, loud failures
    pool.py      SerialRunner / FleetRunner   }
    batch.py     BatchRunner / BoardCohort    }  policy shells: unit shape,
    sharding.py  ShardedDtmKernel epochs      }  backend, retry budget
    sched.py     ElasticScheduler + WorkUnit     THE event loop: per-worker
                 Inline/Process/Stepped backends queues, cost-hint placement,
                                                 work stealing, per-item
                                                 deadlines, non-blocking retry,
                                                 heartbeat draining
    worker.py    run_job / run_unit_stealable    the process entry points
    jobs.py      JobSpec / JobResult             picklable recipes, cost hints

Every runner builds :class:`~repro.fleet.sched.WorkUnit`\\ s — single
specs (serial), firmware-fingerprint cohorts (batch), contiguous chunks
(fleet), pinned shard epochs (sharding) — and hands them to
:class:`~repro.fleet.sched.ElasticScheduler`, which owns per-worker
local queues, steals from the longest queue for idle workers, preempts
multi-item units when everything else is dry (workers return *partial
batches* and the remainder migrates), enforces per-item deadlines, and
folds crash/timeout retries into the same loop as dispatch and
heartbeat draining.

The load-bearing design rules:

* **Recipes cross processes, objects never do.** A ``JobSpec`` carries
  ``"module:qualname"`` references plus ``(category, kind, seed)`` fault
  coordinates; the worker rebuilds system, firmware and fault locally.
  No live ``Board``, monitor lambda or half-run simulator is ever
  pickled, so results cannot depend on which process ran the job.
* **Any schedule, one answer.** Workers execute the exact functions the
  inline serial loop uses, results key on the canonical corpus index,
  and the live plane canonicalizes on ``(job, window)`` — so any steal
  schedule, worker count, chunking or interleaving produces a
  ``CampaignResult``, campaign trace store and live-alert transcript
  byte-identical to ``SerialRunner`` at the same master seed
  (hypothesis-forced in ``tests/test_sched.py``).
* **Failures are data, and they are contained.** Workers stream one
  result per item, so a crash or deadline kill costs exactly the item
  being executed: finished chunk mates are already home, queued mates
  re-dispatch uncharged, and the victim retries on a backoff *deadline*
  (never a blocking sleep) until its budget produces a structured
  ``WorkerCrashed``/``JobTimeout`` failure. The merge refuses to
  fabricate a detection table from a corpus with holes unless
  explicitly asked (``strict=False``).

Entry points:

* campaigns — ``run_campaign(..., runner=FleetRunner(workers=4))`` in
  :mod:`repro.faults.campaign`; on a core-starved host prefer
  ``runner=BatchRunner()`` (cohort-grouped, in-process) — process
  scale-out cannot win there but identical-firmware cohorts can;
* seed sweeps — :class:`repro.fleet.batch.BoardCohort` runs N
  same-firmware boards in SoA lockstep via
  :class:`repro.target.batch.BatchCpu` (see ``benchmarks/perf_batch.py``
  for the measured 16/64-lane speedups);
* multi-board sharding — :class:`repro.rtos.sharding.ShardedDtmKernel`
  runs node-subset kernels in persistent shard workers
  (:mod:`repro.fleet.shards`), their lookahead epochs dispatched as
  pinned scheduler units (process shards run each epoch concurrently);
* scoreboard — ``benchmarks/perf_fleet.py`` (BENCH_fleet.json) tracks
  campaign throughput and parity; ``benchmarks/perf_sched.py``
  (BENCH_sched.json) floors steal speedup on a skewed corpus, schedule
  parity and stranded-recovery wall time.
"""

from repro.fleet.batch import (
    BatchRunner,
    BoardCohort,
    cohorts_of,
    firmware_fingerprint,
)
from repro.fleet.jobs import (
    JobResult,
    JobSpec,
    callable_ref,
    enumerate_campaign_jobs,
    estimate_cost_hints,
    resolve_ref,
)
from repro.fleet.merge import merge_results
from repro.fleet.pool import (
    FleetRunner,
    SerialRunner,
    default_workers,
    derive_seed,
    seed_stream,
    serial_live_scope,
)
from repro.fleet.sched import (
    ElasticScheduler,
    InlineBackend,
    ProcessBackend,
    SteppedInlineBackend,
    WorkUnit,
    unit_cost,
)
from repro.fleet.worker import run_job, run_job_batch, run_unit_stealable

__all__ = [
    "JobSpec", "JobResult", "callable_ref", "resolve_ref",
    "enumerate_campaign_jobs", "estimate_cost_hints",
    "FleetRunner", "SerialRunner", "default_workers", "serial_live_scope",
    "BatchRunner", "BoardCohort", "cohorts_of", "firmware_fingerprint",
    "ElasticScheduler", "WorkUnit", "unit_cost",
    "InlineBackend", "ProcessBackend", "SteppedInlineBackend",
    "derive_seed", "seed_stream",
    "run_job", "run_job_batch", "run_unit_stealable",
    "merge_results",
]
