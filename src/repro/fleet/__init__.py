"""repro.fleet — process-pool execution for campaign scale-out and sharding.

Parson's observation (*Extension Language Automation of Embedded System
Debugging*) is that a debugger becomes an experimentation platform the
moment its runs can be scripted and batched. This package is that batch
layer: fault campaigns and multi-board simulations stop serializing on
one interpreter and fan out over worker processes, so scenario count
scales with cores instead of wall-clock.

Architecture — five layers, strictly stacked::

    merge.py    results -> CampaignResult     canonical order, loud failures
    pool.py     FleetRunner / SerialRunner    chunked dispatch, crash retry,
                                              deterministic seed derivation
    batch.py    BatchRunner / BoardCohort     firmware-fingerprint cohorts,
                                              SoA lockstep board execution
    worker.py   run_job(JobSpec) -> JobResult the process entry point
    jobs.py     JobSpec / JobResult           picklable recipes, callable refs

The load-bearing design rules:

* **Recipes cross processes, objects never do.** A ``JobSpec`` carries
  ``"module:qualname"`` references plus ``(category, kind, seed)`` fault
  coordinates; the worker rebuilds system, firmware and fault locally.
  No live ``Board``, monitor lambda or half-run simulator is ever
  pickled, so results cannot depend on which process ran the job.
* **One code path.** Workers execute the exact functions the inline
  serial loop uses (``run_fault_experiment`` / ``run_control_experiment``
  in :mod:`repro.faults.campaign`), and results are merged by canonical
  corpus index — parallel output equals serial output bit for bit, for
  any worker count and chunk size.
* **Failures are data.** A worker exception returns as a structured
  ``JobResult.error`` (type, message, traceback); a worker that dies
  outright is retried in isolation and, if it dies again, reported as a
  ``WorkerCrashed`` failure. The merge refuses to fabricate a detection
  table from a corpus with holes unless explicitly asked
  (``strict=False``).

Entry points:

* campaigns — ``run_campaign(..., runner=FleetRunner(workers=4))`` in
  :mod:`repro.faults.campaign`; on a core-starved host prefer
  ``runner=BatchRunner()`` (cohort-grouped, in-process) — process
  scale-out cannot win there (``speedup_4w`` 0.87x on 1 CPU) but
  identical-firmware cohorts can;
* seed sweeps — :class:`repro.fleet.batch.BoardCohort` runs N
  same-firmware boards in SoA lockstep via
  :class:`repro.target.batch.BatchCpu` (see ``benchmarks/perf_batch.py``
  for the measured 16/64-lane speedups);
* multi-board sharding — :class:`repro.rtos.sharding.ShardedDtmKernel`
  runs node-subset kernels in persistent shard workers
  (:mod:`repro.fleet.shards`) synchronized at network-lookahead epochs;
* scoreboard — ``benchmarks/perf_fleet.py`` (BENCH_fleet.json) tracks
  campaign throughput, speedup and serial/parallel parity across PRs.
"""

from repro.fleet.batch import (
    BatchRunner,
    BoardCohort,
    cohorts_of,
    firmware_fingerprint,
)
from repro.fleet.jobs import (
    JobResult,
    JobSpec,
    callable_ref,
    enumerate_campaign_jobs,
    resolve_ref,
)
from repro.fleet.merge import merge_results
from repro.fleet.pool import (
    FleetRunner,
    SerialRunner,
    default_workers,
    derive_seed,
    seed_stream,
)
from repro.fleet.worker import run_job, run_job_batch

__all__ = [
    "JobSpec", "JobResult", "callable_ref", "resolve_ref",
    "enumerate_campaign_jobs",
    "FleetRunner", "SerialRunner", "default_workers",
    "BatchRunner", "BoardCohort", "cohorts_of", "firmware_fingerprint",
    "derive_seed", "seed_stream",
    "run_job", "run_job_batch",
    "merge_results",
]
