"""Merge worker results back into a CampaignResult, canonically ordered.

The merge is where "parallel equals serial" is enforced: results arrive
keyed by their spec's canonical index (enumeration order), declined jobs
vanish exactly like the serial loop's ``continue``, and the control job
becomes the false-positive count. Execution order, chunking and worker
count leave no fingerprint on the output.

Failures are loud by default: a campaign with worker-side failures raises
:class:`~repro.errors.FleetError` listing every broken job (type, message
and the worker traceback of the first few), because a detection-rate
table silently missing experiments would be a lie. Pass ``strict=False``
to drop failed *fault* jobs instead (exploratory sweeps over known-flaky
corpora), in which case the failures are still returned on the result as
``CampaignResult.failures``. A failed or missing **control** job is
fatal in either mode — ``false_positives`` without a control run is not
a number, it is fiction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import FleetError
from repro.faults.campaign import CampaignResult, FaultOutcome
from repro.fleet.jobs import JobResult, JobSpec


def _format_failure(result: JobResult) -> str:
    return f"{result.job_id}: {result.error['type']}: {result.error['message']}"


def merge_results(specs: Sequence[JobSpec], results: Sequence[JobResult],
                  strict: bool = True,
                  trace_dir: Optional[str] = None) -> CampaignResult:
    """Fold job results into a :class:`CampaignResult` in canonical order.

    With ``trace_dir`` (a campaign that collected traces), the per-job
    stores named by each result's ``trace_path`` are additionally merged
    into one canonically-ordered campaign
    :class:`~repro.tracedb.store.TraceStore` under
    ``trace_dir/campaign``, returned as ``CampaignResult.trace_store``.
    """
    if len(specs) != len(results):
        raise FleetError(f"result count {len(results)} does not match "
                         f"spec count {len(specs)}")
    by_index = {}
    for result in results:
        if result.index in by_index:
            raise FleetError(f"duplicate result for job index {result.index}")
        by_index[result.index] = result

    failures: List[JobResult] = []
    false_positives = 0
    outcomes: List[FaultOutcome] = []
    saw_control = False

    for spec in sorted(specs, key=lambda s: s.index):
        try:
            result = by_index[spec.index]
        except KeyError:
            raise FleetError(f"no result for job {spec.job_id!r} "
                             f"(index {spec.index})") from None
        if result.failed:
            if spec.category == "control":
                raise FleetError(
                    f"the control job failed — false positives cannot be "
                    f"scored: {_format_failure(result)}\n"
                    f"{result.error['traceback']}")
            failures.append(result)
            continue
        if spec.category == "control":
            saw_control = True
            false_positives = int(result.model[0]) + int(result.code[0])
            continue
        if result.declined:
            continue
        outcomes.append(FaultOutcome(result.fault, *result.model,
                                     *result.code,
                                     classified_as=result.classified_as))

    if failures and strict:
        head = failures[:3]
        detail = "\n".join(f"  - {_format_failure(f)}" for f in head)
        tracebacks = "\n".join(f.error["traceback"] for f in head
                               if f.error["traceback"])
        raise FleetError(
            f"{len(failures)} of {len(specs)} fleet job(s) failed:\n"
            f"{detail}\n{tracebacks}"
        )
    if not saw_control:
        raise FleetError("corpus has no control job; cannot score "
                         "false positives")

    merged = CampaignResult(outcomes, false_positives)
    merged.failures = failures
    if trace_dir is not None:
        from repro.tracedb.collect import collect_campaign_store
        merged.trace_store = collect_campaign_store(results, trace_dir)
    return merged
