"""Persistent shard workers: one node-subset kernel per process.

Campaign jobs are stateless — ship a recipe, get a result. A shard is
the opposite: its boards, scheduler queues and simulator clock must
survive across epochs, so each shard runs in a *persistent* worker
process driven over a pipe by :class:`repro.rtos.sharding.ShardedDtmKernel`.

Per the fleet discipline, nothing live crosses the pipe. The worker
rebuilds its kernel from declarative inputs (``system_ref`` + an
instrumentation plan; codegen is deterministic, so every shard generates
the identical firmware image), and the messages are plain tuples:

* ``("run", t2, injections)`` — schedule the remote publications handed
  over at the barrier, advance the local kernel to ``t2``, reply with the
  publications this shard made during the epoch;
* ``("report",)`` — reply with a :class:`ShardReport` snapshot (job
  records, misses, jitter samples, bus views);
* ``("close",)`` — shut the worker down.

A worker that hits an exception replies ``("error", type, message,
traceback)`` and the host raises a :class:`FleetError` carrying the
worker-side traceback — a crashed shard is a diagnosis, not a hang.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FleetError
from repro.fleet.jobs import default_mp_context
from repro.rtos.kernel import DtmKernel
from repro.rtos.task import JobRecord
from repro.sim.kernel import Simulator

#: a captured publication: (t_publish, producer_node, signal, value)
Publication = Tuple[int, str, str, int]

#: a scheduled remote arrival: (t_arrive, signal, value)
Injection = Tuple[int, str, int]


class ShardReport:
    """Plain-data snapshot of one shard's observable state."""

    __slots__ = ("records", "deadline_misses", "jobs_skipped",
                 "records_dropped", "jitter_records", "views")

    def __init__(self, records: List[JobRecord], deadline_misses: int,
                 jobs_skipped: int, records_dropped: int,
                 jitter_records: Dict[str, List[Tuple[int, int]]],
                 views: Dict[str, Dict[str, int]]) -> None:
        self.records = records
        self.deadline_misses = deadline_misses
        self.jobs_skipped = jobs_skipped
        self.records_dropped = records_dropped
        self.jitter_records = jitter_records
        self.views = views


def build_shard_kernel(system, firmware, nodes: Sequence[str],
                       latched: bool, net_delay_us: int,
                       record_capacity: Optional[int],
                       outbox: List[Publication]) -> DtmKernel:
    """A node-subset kernel whose bus publications land in *outbox*."""
    kernel = DtmKernel(system, firmware, sim=Simulator(), latched=latched,
                       net_delay_us=net_delay_us, nodes=nodes,
                       record_capacity=record_capacity)
    kernel.bus.on_publish = (
        lambda t, node, signal, value: outbox.append((t, node, signal, value))
    )
    return kernel


def shard_report(kernel: DtmKernel) -> ShardReport:
    """Snapshot a shard kernel as plain pipe-safe data."""
    return ShardReport(
        records=kernel.records,
        deadline_misses=kernel.deadline_misses,
        jobs_skipped=kernel.jobs_skipped,
        records_dropped=kernel.records_dropped,
        jitter_records=kernel.jitter.export_records(),
        views={node: kernel.bus.snapshot(node) for node in kernel.local_nodes},
    )


def run_shard_epoch(kernel: DtmKernel, t2: int,
                    injections: Sequence[Injection],
                    outbox: List[Publication]) -> List[Publication]:
    """Schedule remote arrivals, advance to *t2*, drain the outbox."""
    for t_arrive, signal, value in injections:
        kernel.sim.schedule_at(t_arrive, kernel.bus.inject, signal, value)
    kernel.run(t2)
    published, outbox[:] = list(outbox), []
    return published


def _shard_worker_main(conn, system_ref: str, plan, nodes: List[str],
                       latched: bool, net_delay_us: int,
                       record_capacity: Optional[int]) -> None:
    try:
        from repro.codegen.pipeline import generate_firmware
        from repro.fleet.jobs import resolve_ref

        system = resolve_ref(system_ref)()
        firmware = generate_firmware(system, plan)
        outbox: List[Publication] = []
        kernel = build_shard_kernel(system, firmware, nodes, latched,
                                    net_delay_us, record_capacity, outbox)
        while True:
            message = conn.recv()
            if message[0] == "run":
                _, t2, injections = message
                conn.send(("ok", run_shard_epoch(kernel, t2, injections,
                                                 outbox)))
            elif message[0] == "report":
                conn.send(("ok", shard_report(kernel)))
            elif message[0] == "close":
                conn.send(("ok", None))
                return
            else:
                conn.send(("error", "FleetError",
                           f"unknown shard command {message[0]!r}", ""))
    except EOFError:
        return
    except Exception as exc:  # noqa: BLE001 - forwarded to the host
        import traceback
        try:
            conn.send(("error", type(exc).__name__, str(exc),
                       traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class ShardHost:
    """Host-side handle of one persistent shard worker process."""

    def __init__(self, system_ref: str, plan, nodes: Sequence[str],
                 latched: bool, net_delay_us: int,
                 record_capacity: Optional[int],
                 mp_context: Optional[str] = None) -> None:
        ctx = multiprocessing.get_context(mp_context if mp_context is not None
                                          else default_mp_context())
        self.nodes = list(nodes)
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(child, system_ref, plan, self.nodes, latched,
                  net_delay_us, record_capacity),
            daemon=True,
        )
        self._process.start()
        child.close()

    def _send(self, message: tuple) -> None:
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise FleetError(
                f"shard worker for nodes {self.nodes} died "
                f"(exitcode {self._process.exitcode})") from exc

    def collect(self):
        """Receive one pending reply (pairs with :meth:`dispatch_run`)."""
        try:
            reply = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise FleetError(
                f"shard worker for nodes {self.nodes} died "
                f"(exitcode {self._process.exitcode})") from exc
        if reply[0] == "error":
            _, kind, text, trace = reply
            raise FleetError(f"shard worker for nodes {self.nodes} failed: "
                             f"{kind}: {text}\n{trace}")
        return reply[1]

    def _request(self, message: tuple):
        self._send(message)
        return self.collect()

    def dispatch_run(self, t2: int,
                     injections: Sequence[Injection]) -> None:
        """Start the epoch without waiting for it.

        The split half of :meth:`run_to`: the scheduler dispatches every
        shard's epoch first and only then collects, so process-backend
        shards execute one epoch genuinely in parallel instead of
        serializing on one synchronous pipe round-trip per shard.
        """
        self._send(("run", t2, list(injections)))

    def run_to(self, t2: int,
               injections: Sequence[Injection]) -> List[Publication]:
        """Advance the shard to *t2*; returns its epoch publications."""
        self.dispatch_run(t2, injections)
        return self.collect()

    def report(self) -> ShardReport:
        """Fetch the shard's current observable state."""
        return self._request(("report",))

    def close(self) -> None:
        """Stop the worker (idempotent; tolerates an already-dead one)."""
        if self._process.is_alive():
            try:
                self._request(("close",))
            except FleetError:
                pass
        self._conn.close()
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
