"""The elastic work-stealing scheduler core under every fleet runner.

One event loop, many policies. :class:`ElasticScheduler` owns a deque of
:class:`WorkUnit`\\ s — single campaign :class:`~repro.fleet.jobs.JobSpec`\\ s
(``SerialRunner``), fingerprint-grouped cohort units (``BatchRunner``),
contiguous chunks (``FleetRunner``) or shard-epoch commands
(:class:`~repro.rtos.sharding.ShardedDtmKernel`) — distributes them into
per-worker local queues, and runs a single loop that interleaves
dispatch, result harvesting, heartbeat draining (``live.drain``),
deadline enforcement and isolated-retry resubmission. The three
sequential phases of the old pool (dispatch pass, timeout pass, serial
stranded-retry pass with blocking sleeps) collapse into that one loop.

Scheduling policy:

* **placement** — units are placed greedily onto the least-loaded local
  queue; with ``cost_placement`` (and :attr:`JobSpec.cost_hint` stamped
  by ``enumerate_campaign_jobs``) placement is longest-processing-time
  first, so a known-heavy unit never lands behind another heavy one.
  Hints are optional: units without them weigh ``len(items)`` (uniform).
* **queue stealing** — an idle worker whose local queue is dry takes the
  newest unit from the tail of the *longest remaining* queue (by cost).
  Pinned units (shard epochs) never migrate.
* **preemptive stealing** — when every queue is empty and a worker is
  still grinding through a multi-item unit, the scheduler asks the
  busiest in-flight unit to yield; the worker finishes its current item,
  returns the untouched remainder (a *partial batch*), and the remainder
  is re-queued for the idle capacity.
* **per-item deadlines** — with ``job_timeout_s`` the in-flight item of
  every busy worker has its own deadline (reset on each harvested
  result), replacing the old coarse whole-pass ``timeout * len(specs)``
  bound. A breach kills *that worker only*; queued and in-flight mates
  are re-enqueued unharmed.
* **non-blocking retries** — a died/killed item burns one attempt and is
  resubmitted as a single-item unit gated on a ``not_before`` deadline
  (``backoff * 2**(attempt-1)`` after the death), so N stranded jobs
  recover concurrently in max-of-backoffs wall time, with heartbeats
  drained between polls, instead of the old serial sum-of-backoffs stall.

The determinism contract: results are keyed by each item's canonical
``index`` and merged by the caller in canonical order, and every item is
executed by the same pure ``run_job`` path no matter which worker, steal
or interleaving ran it — so *any* steal schedule produces byte-identical
campaign results, trace stores and live-alert transcripts to
``SerialRunner`` at the same master seed. ``tests/test_sched.py`` proves
it under hypothesis-forced interleavings via
:class:`SteppedInlineBackend` and an injectable scheduler clock.

Backends implement mechanism, not policy::

    InlineBackend         in-process, one slot   Serial/Batch runners
    ProcessBackend        persistent pipe-driven worker processes, one
                          per slot, respawned on death  FleetRunner
    SteppedInlineBackend  N virtual workers, one item per poll, caller-
                          chosen interleaving   the test harness

A process worker streams one ``("result", uid, offset, JobResult)``
message per item, so a crash loses only the item being executed — the
chunk mates that already finished came home before the worker died, and
the ones still queued inside the unit are re-dispatched untouched.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import sys
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import FleetError
from repro.fleet.jobs import default_mp_context

__all__ = [
    "WorkUnit", "unit_cost", "MonotonicClock", "VirtualClock",
    "ElasticScheduler", "InlineBackend", "ProcessBackend",
    "SteppedInlineBackend", "worker_init",
]


def unit_cost(items: Sequence[Any]) -> int:
    """A unit's placement weight: summed cost hints, else uniform.

    Falls back to ``len(items)`` the moment any item lacks a hint —
    mixing activation-count hints with unit weights would let one
    unhinted item vanish next to a 10k-activation neighbour.
    """
    hints = [getattr(item, "cost_hint", None) for item in items]
    if not hints or any(h is None for h in hints):
        return max(1, len(items))
    return max(1, sum(hints))


class WorkUnit:
    """An ordered slice of schedulable items (specs, cohorts, epochs).

    ``items`` are opaque to the scheduler except for two attributes:
    ``index`` (the canonical result key) and an optional ``cost_hint``
    (placement weight). ``pinned`` binds the unit to one backend slot —
    shard epochs must run on the persistent process that owns their
    kernel state — and pinned units are never stolen.
    """

    __slots__ = ("items", "cost", "pinned", "uid", "not_before")

    def __init__(self, items: Sequence[Any], cost: Optional[int] = None,
                 pinned: Optional[int] = None) -> None:
        items = list(items)
        if not items:
            raise FleetError("a work unit needs at least one item")
        self.items = items
        self.cost = cost if cost is not None else unit_cost(items)
        self.pinned = pinned
        self.uid = -1        # assigned when the scheduler admits the unit
        self.not_before = 0.0  # retry units: earliest dispatch instant

    def __repr__(self) -> str:
        pin = f" pinned={self.pinned}" if self.pinned is not None else ""
        return (f"<WorkUnit uid={self.uid} items={len(self.items)} "
                f"cost={self.cost}{pin}>")


class MonotonicClock:
    """Real time for real runs (the default scheduler clock)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock:
    """A deterministic clock for tests: sleeping *is* advancing."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            self._now += seconds

    def advance(self, seconds: float) -> None:
        self._now += seconds


def worker_init(extra_paths: List[str], hb_config=None,
                hb_queue=None) -> None:
    """Spawned workers must see the same import roots as the parent.

    With a heartbeat config + queue (the live-telemetry plane), the
    worker also enables an in-process metrics registry and installs a
    :class:`~repro.obs.live.HeartbeatEmitter` in ``OBS.live`` whose
    sink is the parent's queue — every job this process runs then
    streams windowed registry deltas upward.
    """
    for path in reversed(extra_paths):
        if path not in sys.path:
            sys.path.insert(0, path)
    if hb_config is not None and hb_queue is not None:
        from repro.obs.live import HeartbeatEmitter
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.runtime import OBS
        if OBS.metrics is None:
            OBS.metrics = MetricsRegistry()
        OBS.live = HeartbeatEmitter(hb_config, hb_queue.put)


def _pool_worker_main(conn, extra_paths: List[str], entry_ref: str,
                      hb_config, hb_queue) -> None:
    """Persistent pool-worker loop: units in, streamed results out.

    Protocol (host -> worker): ``("unit", uid, items)``,
    ``("steal", uid)``, ``("close",)``. Worker -> host: one
    ``("result", uid, offset, payload)`` per finished item, then either
    ``("done", uid)`` or ``("yield", uid, next_offset)`` when a steal
    request preempted the unit between items. A ``steal`` for a unit
    that already finished is stale and ignored.
    """
    from repro.fleet.jobs import resolve_ref
    from repro.fleet.worker import run_job, run_unit_stealable

    worker_init(extra_paths, hb_config, hb_queue)
    execute = resolve_ref(entry_ref) if entry_ref else run_job
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "unit":
                _, uid, items = message

                def emit(offset, payload, _uid=uid):
                    conn.send(("result", _uid, offset, payload))

                def should_yield(_uid=uid):
                    while conn.poll(0):
                        inner = conn.recv()
                        if inner[0] == "steal" and inner[1] == _uid:
                            return True
                        if inner[0] == "close":
                            raise SystemExit(0)
                    return False

                done = run_unit_stealable(items, emit, should_yield, execute)
                if done < len(items):
                    conn.send(("yield", uid, done))
                else:
                    conn.send(("done", uid))
            elif kind == "steal":
                continue  # stale steal: that unit already reported
            elif kind == "close":
                return
            else:
                raise FleetError(f"unknown pool command {kind!r}")
    except (EOFError, KeyboardInterrupt, SystemExit):
        return
    finally:
        try:
            conn.close()
        except OSError:
            pass


class InlineBackend:
    """One in-process slot; a dispatched unit executes immediately.

    The SerialRunner/BatchRunner mechanism: zero processes, items run
    through *execute* in dispatch order, results are buffered as events
    for the next poll. Nothing can die and nothing can be preempted, so
    steal/kill are unsupported.
    """

    supports_steal = False
    supports_kill = False
    slot_count = 1

    def __init__(self, execute: Callable[[Any], Any]) -> None:
        self.execute = execute
        self._events: List[tuple] = []

    def dispatch(self, slot: int, uid: int, items: Sequence[Any]) -> None:
        for item in items:
            self._events.append(("result", slot, uid, self.execute(item)))
        self._events.append(("done", slot, uid))

    def poll(self, timeout_s) -> List[tuple]:
        events, self._events = self._events, []
        return events

    def close(self) -> None:
        pass


class SteppedInlineBackend:
    """N virtual workers advanced one item per poll — the test harness.

    ``choose(busy_slots, step)`` picks which busy slot executes its next
    item, so a hypothesis test can force *any* interleaving of units
    across virtual workers. Steal requests are honored exactly like a
    real worker would: the chosen slot yields its untouched remainder
    (never before its first item). Execution is still the real
    *execute* path, in-process — which is what makes "any schedule is
    byte-identical to serial" a provable property rather than a race.
    """

    supports_steal = True
    supports_kill = False

    def __init__(self, slot_count: int,
                 choose: Callable[[Sequence[int], int], int],
                 execute: Callable[[Any], Any]) -> None:
        if slot_count < 1:
            raise FleetError(f"slot_count must be >= 1, got {slot_count}")
        self.slot_count = slot_count
        self.choose = choose
        self.execute = execute
        self._busy: Dict[int, list] = {}  # slot -> [uid, items, done]
        self._steal: set = set()
        self._step = 0

    def dispatch(self, slot: int, uid: int, items: Sequence[Any]) -> None:
        self._busy[slot] = [uid, list(items), 0]

    def steal(self, slot: int, uid: int) -> None:
        self._steal.add(uid)

    def poll(self, timeout_s) -> List[tuple]:
        busy = tuple(sorted(self._busy))
        if not busy:
            return []
        slot = self.choose(busy, self._step)
        self._step += 1
        if slot not in self._busy:
            raise FleetError(f"choose() picked idle slot {slot}; "
                             f"busy: {busy}")
        uid, items, done = self._busy[slot]
        if uid in self._steal and 0 < done < len(items):
            # exactly a real worker's window: between items, never
            # before the first (yields always make progress)
            self._steal.discard(uid)
            del self._busy[slot]
            return [("yield", slot, uid, done)]
        result = self.execute(items[done])
        self._busy[slot][2] = done + 1
        events = [("result", slot, uid, result)]
        if done + 1 == len(items):
            del self._busy[slot]
            self._steal.discard(uid)
            events.append(("done", slot, uid))
        return events

    def close(self) -> None:
        pass


class _ProcSlot:
    __slots__ = ("proc", "conn")

    def __init__(self) -> None:
        self.proc = None
        self.conn = None


class ProcessBackend:
    """Persistent pipe-driven worker processes, one per slot.

    Workers are spawned lazily, live across units (warm firmware memos),
    and are respawned transparently after a death or a deadline kill —
    a wedged or crashed job costs *its* slot a restart, never the pool.
    ``entry_ref`` optionally swaps the per-item executor (a
    ``"module:qualname"`` of a ``spec -> result`` callable; empty means
    :func:`~repro.fleet.worker.run_job`), which is how benchmarks drive
    the identical scheduler with synthetic workloads.
    """

    supports_steal = True
    supports_kill = True

    def __init__(self, slot_count: int, mp_context: Optional[str] = None,
                 entry_ref: str = "", hb_config=None, hb_queue=None,
                 extra_paths: Optional[List[str]] = None) -> None:
        if slot_count < 1:
            raise FleetError(f"slot_count must be >= 1, got {slot_count}")
        self.slot_count = slot_count
        self._ctx = multiprocessing.get_context(
            mp_context if mp_context is not None else default_mp_context())
        self.entry_ref = entry_ref
        self.hb_config = hb_config
        self.hb_queue = hb_queue
        self.extra_paths = (list(sys.path) if extra_paths is None
                            else list(extra_paths))
        self._slots = [_ProcSlot() for _ in range(slot_count)]
        self._busy: Dict[int, int] = {}  # slot -> uid of in-flight unit
        #: worker processes (re)spawned over the backend's lifetime
        self.spawns = 0

    def _ensure(self, slot: int) -> _ProcSlot:
        state = self._slots[slot]
        if state.proc is not None and state.proc.is_alive():
            return state
        self._reap(slot)
        parent, child = self._ctx.Pipe()
        state.proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(child, self.extra_paths, self.entry_ref,
                  self.hb_config, self.hb_queue),
            daemon=True,
        )
        state.proc.start()
        child.close()
        state.conn = parent
        self.spawns += 1
        return state

    def _reap(self, slot: int) -> None:
        state = self._slots[slot]
        self._busy.pop(slot, None)
        if state.proc is not None:
            if state.proc.is_alive():
                state.proc.terminate()
            state.proc.join(timeout=5)
            if state.proc.is_alive():  # pragma: no cover - refused SIGTERM
                state.proc.kill()
                state.proc.join(timeout=5)
            state.proc = None
        if state.conn is not None:
            state.conn.close()
            state.conn = None

    def dispatch(self, slot: int, uid: int, items: Sequence[Any]) -> None:
        state = self._ensure(slot)
        state.conn.send(("unit", uid, list(items)))
        self._busy[slot] = uid

    def steal(self, slot: int, uid: int) -> None:
        state = self._slots[slot]
        if state.conn is None:
            return
        try:
            state.conn.send(("steal", uid))
        except (BrokenPipeError, OSError):
            pass  # the death will surface as an event on the next poll

    def kill(self, slot: int) -> None:
        self._reap(slot)

    def poll(self, timeout_s) -> List[tuple]:
        conns = {self._slots[slot].conn: slot for slot in self._busy}
        if not conns:
            if timeout_s:
                time.sleep(timeout_s)
            return []
        ready = multiprocessing.connection.wait(list(conns), timeout_s)
        events: List[tuple] = []
        for conn in ready:
            slot = conns[conn]
            uid = self._busy.get(slot)
            try:
                while True:
                    message = conn.recv()
                    kind = message[0]
                    if kind == "result":
                        events.append(("result", slot, message[1],
                                       message[3]))
                    elif kind == "yield":
                        events.append(("yield", slot, message[1],
                                       message[2]))
                        self._busy.pop(slot, None)
                    elif kind == "done":
                        events.append(("done", slot, message[1]))
                        self._busy.pop(slot, None)
                    if not conn.poll(0):
                        break
            except (EOFError, OSError):
                # results buffered before the death were harvested above
                self._reap(slot)
                events.append(("died", slot, uid))
        return events

    def close(self) -> None:
        for slot, state in enumerate(self._slots):
            if state.proc is None:
                continue
            if slot in self._busy or not state.proc.is_alive():
                self._reap(slot)
                continue
            try:
                state.conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
            state.proc.join(timeout=5)
            if state.proc.is_alive():  # pragma: no cover - defensive
                state.proc.terminate()
                state.proc.join(timeout=5)
            state.conn.close()
            state.proc = None
            state.conn = None
        self._busy.clear()


class _Flight:
    """One dispatched unit on one slot."""

    __slots__ = ("unit", "completed", "deadline", "steal_sent")

    def __init__(self, unit: WorkUnit, deadline: Optional[float]) -> None:
        self.unit = unit
        self.completed = 0
        self.deadline = deadline
        self.steal_sent = False


class ElasticScheduler:
    """The one event loop under Serial/Fleet/Batch runners and shards.

    ``run(units)`` places units onto per-slot queues, then loops:
    drain heartbeats, promote due retry units, dispatch idle slots
    (stealing across queues when a local queue is dry), request a
    preemptive yield when all queues are empty, poll the backend,
    harvest results/yields/deaths, and enforce per-item deadlines —
    until every expected item index has a result. Returns
    ``{item.index: payload}``.

    Deaths charge only the in-flight item: it is resubmitted as a
    single-item unit after ``retry_backoff_s * 2**(attempt-1)`` (a
    deadline, not a sleep), and after ``max_retries`` burned attempts
    the ``terminal_result(item, kind, retries)`` policy produces its
    structured failure (no policy: the scheduler raises, which is the
    shard-epoch stance — persistent state cannot be retried). Items of
    the unit that were still queued behind the victim are re-enqueued
    uncharged.
    """

    def __init__(self, backend, *, max_retries: int = 0,
                 retry_backoff_s: float = 0.0,
                 job_timeout_s: Optional[float] = None,
                 steal: bool = True, cost_placement: bool = True,
                 live=None, live_queue=None, clock=None,
                 terminal_result: Optional[Callable[[Any, str, int], Any]]
                 = None) -> None:
        self.backend = backend
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.job_timeout_s = job_timeout_s
        self.steal = steal
        self.cost_placement = cost_placement
        self.live = live
        self.live_queue = live_queue
        self.clock = clock if clock is not None else MonotonicClock()
        self.terminal_result = terminal_result
        # forensics for runners, benchmarks and the fleet.* metric books
        self.stranded_items: set = set()
        self.steals = 0
        self.preemptions = 0
        self.dispatches = 0

    # -- policy pieces -----------------------------------------------------

    def _terminal(self, item, kind: str, retries: int):
        if self.terminal_result is None:
            raise FleetError(
                f"worker {kind} on item {getattr(item, 'index', item)!r} "
                f"with no retry budget left")
        return self.terminal_result(item, kind, retries)

    def _place(self, units: List[WorkUnit], queues: List[deque]) -> None:
        """Initial placement: pinned first, then LPT greedy by load."""
        slots = len(queues)
        floating = []
        for unit in units:
            if unit.pinned is not None:
                queues[unit.pinned % slots].append(unit)
            else:
                floating.append(unit)
        if self.cost_placement:
            floating = sorted(floating, key=lambda u: (-u.cost, u.uid))
        loads = [sum(u.cost for u in queue) for queue in queues]
        for unit in floating:
            slot = min(range(slots), key=lambda s: (loads[s], s))
            queues[slot].append(unit)
            loads[slot] += unit.cost

    @staticmethod
    def _steal_from_longest(queues: List[deque]) -> Optional[WorkUnit]:
        """Pop the newest unpinned unit off the costliest queue."""
        victim, best = None, 0
        for slot, queue in enumerate(queues):
            cost = sum(u.cost for u in queue if u.pinned is None)
            if cost > best:
                victim, best = slot, cost
        if victim is None:
            return None
        queue = queues[victim]
        for i in range(len(queue) - 1, -1, -1):
            if queue[i].pinned is None:
                unit = queue[i]
                del queue[i]
                return unit
        return None  # pragma: no cover - guarded by the cost scan

    def _poll_timeout(self, busy: Dict[int, _Flight],
                      waiting: List[WorkUnit], now: float):
        if not busy:
            return 0.0
        bounds = []
        if self.live is not None:
            bounds.append(0.05)
        for flight in busy.values():
            if flight.deadline is not None:
                bounds.append(max(flight.deadline - now, 0.0))
        for unit in waiting:
            bounds.append(max(unit.not_before - now, 0.0))
        return min(bounds) if bounds else None

    # -- the event loop ----------------------------------------------------

    def run(self, units: Sequence[WorkUnit]) -> Dict[int, Any]:
        units = list(units)
        slots = self.backend.slot_count
        queues: List[deque] = [deque() for _ in range(slots)]
        waiting: List[WorkUnit] = []
        busy: Dict[int, _Flight] = {}
        results: Dict[int, Any] = {}
        deaths: Dict[int, int] = {}
        next_uid = 0
        expected = 0
        for unit in units:
            unit.uid = next_uid
            next_uid += 1
            expected += len(unit.items)
        self._place(units, queues)

        def admit(items, slot_hint: Optional[int] = None,
                  not_before: float = 0.0) -> None:
            nonlocal next_uid
            unit = WorkUnit(items)
            unit.uid = next_uid
            next_uid += 1
            if not_before:
                unit.not_before = not_before
                waiting.append(unit)
                return
            if slot_hint is None:
                slot_hint = min(
                    range(slots),
                    key=lambda s: (s in busy,
                                   sum(u.cost for u in queues[s]), s))
            queues[slot_hint].append(unit)

        def handle_death(flight: _Flight, kind: str) -> None:
            items = flight.unit.items
            offset = flight.completed
            victim = items[offset] if offset < len(items) else None
            rest = items[offset + 1:]
            if victim is not None:
                attempts = deaths.get(victim.index, 0) + 1
                deaths[victim.index] = attempts
                self.stranded_items.add(victim.index)
                if attempts > self.max_retries:
                    results[victim.index] = self._terminal(
                        victim, kind, self.max_retries)
                else:
                    backoff = (self.retry_backoff_s * 2 ** (attempts - 1)
                               if self.retry_backoff_s else 0.0)
                    admit([victim],
                          not_before=(self.clock.now() + backoff
                                      if backoff else 0.0))
            if rest:
                # innocent queue-mates: uncharged, back in circulation
                admit(rest)

        while len(results) < expected:
            if self.live is not None and self.live_queue is not None:
                self.live.drain(self.live_queue)
            now = self.clock.now()

            # promote retry units whose backoff deadline passed
            due = [u for u in waiting if u.not_before <= now]
            if due:
                waiting = [u for u in waiting if u.not_before > now]
                for unit in due:
                    slot = min(
                        range(slots),
                        key=lambda s: (s in busy,
                                       sum(u.cost for u in queues[s]), s))
                    queues[slot].append(unit)

            # dispatch every idle slot; steal when the local queue is dry
            for slot in range(slots):
                if slot in busy:
                    continue
                unit = None
                if queues[slot]:
                    unit = queues[slot].popleft()
                elif self.steal:
                    unit = self._steal_from_longest(queues)
                    if unit is not None:
                        self.steals += 1
                if unit is None:
                    continue
                self.backend.dispatch(slot, unit.uid, unit.items)
                self.dispatches += 1
                deadline = (now + self.job_timeout_s
                            if (self.job_timeout_s is not None
                                and self.backend.supports_kill) else None)
                busy[slot] = _Flight(unit, deadline)

            # preemptive steal: idle capacity, nothing queued anywhere
            if (self.steal and self.backend.supports_steal
                    and len(busy) < slots and not waiting
                    and not any(queues)):
                candidates = [
                    (slot, flight) for slot, flight in busy.items()
                    if flight.unit.pinned is None
                    and not flight.steal_sent
                    and len(flight.unit.items) - flight.completed > 1
                ]
                if candidates:
                    slot, flight = max(
                        candidates,
                        key=lambda pair: (unit_cost(
                            pair[1].unit.items[pair[1].completed + 1:]),
                            -pair[0]))
                    self.backend.steal(slot, flight.unit.uid)
                    flight.steal_sent = True

            events = self.backend.poll(self._poll_timeout(busy, waiting,
                                                          now))
            if not events and not busy and waiting:
                next_due = min(u.not_before for u in waiting)
                pause = next_due - self.clock.now()
                # drain heartbeats at least every 50ms while backing off
                self.clock.sleep(min(max(pause, 0.0), 0.05)
                                 if self.live is not None
                                 else max(pause, 0.0))

            for event in events:
                kind = event[0]
                if kind == "result":
                    _, slot, uid, payload = event
                    flight = busy.get(slot)
                    if flight is None or flight.unit.uid != uid:
                        continue  # late message from a replaced flight
                    item = flight.unit.items[flight.completed]
                    retries = deaths.get(item.index, 0)
                    if retries and hasattr(payload, "retries"):
                        payload.retries = retries
                    results[item.index] = payload
                    flight.completed += 1
                    if flight.deadline is not None:
                        flight.deadline = (self.clock.now()
                                           + self.job_timeout_s)
                elif kind == "yield":
                    _, slot, uid, next_offset = event
                    flight = busy.get(slot)
                    if flight is None or flight.unit.uid != uid:
                        continue
                    del busy[slot]
                    self.preemptions += 1
                    rest = flight.unit.items[next_offset:]
                    if rest:
                        admit(rest)
                elif kind == "done":
                    _, slot, uid = event
                    flight = busy.get(slot)
                    if flight is not None and flight.unit.uid == uid:
                        del busy[slot]
                elif kind == "died":
                    _, slot, uid = event
                    flight = busy.pop(slot, None)
                    if flight is None or flight.unit.uid != uid:
                        continue
                    handle_death(flight, "crashed")

            # per-item deadline enforcement: kill that slot only
            if self.job_timeout_s is not None and self.backend.supports_kill:
                now = self.clock.now()
                for slot in list(busy):
                    flight = busy[slot]
                    if (flight.deadline is not None
                            and now >= flight.deadline):
                        self.backend.kill(slot)
                        del busy[slot]
                        handle_death(flight, "timeout")

            if (len(results) < expected and not busy and not waiting
                    and not any(queues) and not events):
                missing = expected - len(results)
                raise FleetError(
                    f"scheduler lost {missing} result(s): no unit in "
                    f"flight, queued or awaiting retry")

        return results

    def __repr__(self) -> str:
        return (f"<ElasticScheduler {type(self.backend).__name__} "
                f"slots={self.backend.slot_count} "
                f"steal={'on' if self.steal else 'off'} "
                f"retries={self.max_retries}>")
