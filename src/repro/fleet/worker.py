"""The worker process entry point: run one experiment, return one result.

:func:`run_job` is the whole contract between the pool and a worker — a
pure function from :class:`~repro.fleet.jobs.JobSpec` to
:class:`~repro.fleet.jobs.JobResult`. It rebuilds the experiment from the
spec's declarative refs and executes it through the *same* functions the
inline campaign loop uses (:func:`~repro.faults.campaign.run_fault_experiment`
and :func:`~repro.faults.campaign.run_control_experiment`), which is how
parallel results stay equal to serial ones by construction rather than by
testing luck.

Worker-side exceptions never escape as pickled tracebacks-of-doom: they
come back as structured failures (``JobResult.error``) carrying the
exception type, message and formatted traceback, so a campaign can report
*which* fault recipe blew up and keep going.

Workers memoize the pristine firmware per ``(system_ref, plan)``: every
implementation-fault job and the control job start from the same
deterministic codegen output, so regenerating it per job is pure waste.
The cache is per-process and read-only shared state (firmware images are
never mutated after generation; fault injectors deep-copy first).
"""

from __future__ import annotations

import os
import traceback
from typing import Dict, List, Sequence, Tuple

from repro.codegen.pipeline import generate_firmware
from repro.faults.campaign import (
    run_control_experiment,
    run_fault_experiment,
)
from repro.fleet.jobs import JobResult, JobSpec, resolve_ref
from repro.obs.runtime import OBS
from repro.target.firmware import FirmwareImage

#: per-process pristine-firmware memo: (system_ref, plan key) -> image
_base_firmware_cache: Dict[Tuple[str, tuple], FirmwareImage] = {}


def _plan_key(plan) -> tuple:
    return (plan.state_enter, plan.signal_update, plan.transitions,
            plan.task_markers, plan.self_loops)


def _base_firmware(spec: JobSpec) -> FirmwareImage:
    key = (spec.system_ref, _plan_key(spec.plan))
    firmware = _base_firmware_cache.get(key)
    if firmware is None:
        system = resolve_ref(spec.system_ref)()
        firmware = generate_firmware(system, spec.plan)
        _base_firmware_cache[key] = firmware
    return firmware


def _sealed_trace_path(spec: JobSpec) -> str:
    """The job's per-job store root — only if a sealed store exists.

    Failure results still point at whatever trace the job recorded
    before dying (the post-mortem artifact); an empty string means the
    job failed before its store was created.
    """
    if not spec.trace_dir:
        return ""
    from repro.tracedb.collect import job_store_root
    root = job_store_root(spec.trace_dir, spec.index)
    if os.path.exists(os.path.join(root, "index.json")):
        return root
    return ""


def run_job(spec: JobSpec) -> JobResult:
    """Execute one experiment; exceptions become structured failures."""
    live = OBS.live
    if live is not None:
        live.job_start(spec.index, spec.job_id)
    try:
        result = _execute(spec)
    except Exception as exc:  # noqa: BLE001 - the whole point is capture
        result = JobResult(
            spec.index, spec.job_id,
            error={
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            worker_pid=os.getpid(),
            trace_path=_sealed_trace_path(spec),
        )
    if OBS.metrics is not None:
        # in-process telemetry (SerialRunner/BatchRunner, or a worker
        # that enabled its own OBS state): one job-status series per
        # fault category
        OBS.metrics.counter("fleet.job", category=spec.category,
                            status=result.status).inc()
    if live is not None:
        # after the metrics counter so the finish delta carries it
        live.job_finish(spec.index, spec.job_id, result.status,
                        error_type=(result.error["type"]
                                    if result.failed else ""))
    return result


def _job_trace_store(spec: JobSpec):
    """The per-job spill store when this job collects traces, else None."""
    if not spec.trace_dir:
        return None
    from repro.tracedb.collect import open_job_store
    return open_job_store(spec.trace_dir, spec.index)


def _execute(spec: JobSpec) -> JobResult:
    system_factory = resolve_ref(spec.system_ref)
    monitor_factory = resolve_ref(spec.monitor_ref)
    watch_specs = resolve_ref(spec.watch_ref)()
    trace_store = _job_trace_store(spec)
    trace_path = trace_store.root if trace_store is not None else ""

    try:
        if spec.category == "control":
            detected, code_detected = run_control_experiment(
                system_factory, monitor_factory, watch_specs,
                spec.duration_us, spec.plan,
                base_firmware=_base_firmware(spec), trace_store=trace_store)
            return JobResult(spec.index, spec.job_id,
                             model=(detected, None, ""),
                             code=(code_detected, None, ""),
                             worker_pid=os.getpid(), trace_path=trace_path)

        base_firmware = (_base_firmware(spec)
                         if spec.category in ("implementation", "comm")
                         else None)
        outcome = run_fault_experiment(
            system_factory, monitor_factory, watch_specs,
            spec.category, spec.kind, spec.seed, spec.duration_us, spec.plan,
            base_firmware=base_firmware, trace_store=trace_store)
        if outcome is None:
            return JobResult(spec.index, spec.job_id, declined=True,
                             worker_pid=os.getpid(), trace_path=trace_path)
        return JobResult(
            spec.index, spec.job_id, fault=outcome.fault,
            model=(outcome.model_detected, outcome.model_latency_us,
                   outcome.model_how),
            code=(outcome.code_detected, outcome.code_latency_us,
                  outcome.code_how),
            classified_as=outcome.classified_as,
            worker_pid=os.getpid(),
            trace_path=trace_path,
        )
    finally:
        # Seal the store whatever happened: a parent only ever opens
        # complete, index-finalized per-job stores.
        if trace_store is not None:
            trace_store.close()


def run_job_batch(specs: Sequence[JobSpec]) -> List[JobResult]:
    """Chunked dispatch unit: run a slice of the corpus, in order."""
    return [run_job(spec) for spec in specs]


def run_unit_stealable(specs: Sequence[JobSpec],
                       emit,
                       should_yield=None,
                       execute=None) -> int:
    """Steal-aware unit entry: stream each result, yield on rebalance.

    Runs *specs* in order, handing every finished result to
    ``emit(offset, result)`` immediately — the scheduler sees partial
    progress, so a later crash loses only the item being executed.
    Between items (never before the first, so a yielded unit always
    made progress) ``should_yield()`` is polled; when it reports a
    steal request, the untouched remainder stays unexecuted and the
    next offset is returned — the partial-batch contract
    :class:`~repro.fleet.sched.ElasticScheduler` re-queues on the idle
    worker that asked. Returns ``len(specs)`` when the unit completed.
    """
    if execute is None:
        execute = run_job
    for offset, spec in enumerate(specs):
        if offset and should_yield is not None and should_yield():
            return offset
        emit(offset, execute(spec))
    return len(specs)
