"""Cohort execution: group identical-firmware jobs, run boards in lockstep.

Two layers live here, one per abstraction level:

* :class:`BoardCohort` — N :class:`~repro.target.board.Board`\\ s flashed
  with **one** :class:`~repro.target.firmware.FirmwareImage` and driven
  by a :class:`~repro.target.batch.BatchCpu` in SoA lockstep. This is
  the raw-speed tier: per-lane data (seeds, inputs) differs, the decoded
  program is shared, and one interpreter dispatch advances every board.
  Per-lane seed data comes from :func:`repro.util.seeds.derive_seed`, so
  a cohort's lane inputs are as deterministic as a campaign's job seeds.

* :class:`BatchRunner` — the campaign-level runner (same
  ``run(specs) -> results`` contract as ``SerialRunner``/``FleetRunner``)
  that groups :func:`~repro.fleet.jobs.enumerate_campaign_jobs` output
  into cohorts by **firmware fingerprint** and executes cohort-by-cohort.
  The fingerprint is declarative — computed from the spec, not from
  generated code: control and comm jobs run the pristine base image and
  share one cohort per ``(system_ref, plan)``, while design and
  implementation jobs each execute a *mutated* firmware (regenerated
  model or patched instruction stream per ``(kind, seed)``) and form
  singleton cohorts. Cohort-mates execute back-to-back, so the worker's
  per-process firmware memo and any warm caches are hit in the best
  possible order; every job still goes through the one true
  :func:`~repro.fleet.worker.run_job` code path, which is what makes
  ``BatchRunner`` == ``SerialRunner`` through the canonical merge an
  identity by construction, not a testing accident.

The two meet in campaigns that sweep *data* rather than firmware (seed
sweeps, differential control-vs-N-faulty-input oracles): there the
cohort is wide and :class:`BoardCohort` turns N interpreter loops into
one. ``benchmarks/perf_batch.py`` scores exactly that workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FleetError
from repro.fleet.jobs import JobResult, JobSpec
from repro.fleet.worker import run_job
from repro.target.batch import BatchCpu, LaneOutcome
from repro.target.board import Board
from repro.target.firmware import FirmwareImage
from repro.util.intmath import wrap32
from repro.util.seeds import derive_seed

__all__ = ["BoardCohort", "BatchRunner", "firmware_fingerprint",
           "cohorts_of"]


def firmware_fingerprint(spec: JobSpec) -> tuple:
    """The cohort key of one job: which decoded program it will execute.

    Declarative on purpose: grouping must not generate firmware. Jobs
    whose executed image is the pristine codegen output (control, comm —
    transport faults never touch the program) share the base key; jobs
    that mutate the model or patch the instruction stream (design,
    implementation) are keyed by their exact fault coordinates.
    """
    plan = spec.plan
    base = (spec.system_ref, plan.state_enter, plan.signal_update,
            plan.transitions, plan.task_markers, plan.self_loops)
    if spec.category in ("control", "comm"):
        return ("base",) + base
    return (spec.category, spec.kind, spec.seed) + base


def cohorts_of(specs: Sequence[JobSpec]
               ) -> List[Tuple[tuple, List[JobSpec]]]:
    """Group *specs* into cohorts, ordered by first canonical appearance."""
    order: Dict[tuple, List[JobSpec]] = {}
    for spec in specs:
        order.setdefault(firmware_fingerprint(spec), []).append(spec)
    return list(order.items())


class BatchRunner:
    """Cohort-grouped campaign runner (``run(specs) -> results``).

    Drop-in beside :class:`~repro.fleet.pool.SerialRunner` and
    :class:`~repro.fleet.pool.FleetRunner` in
    ``run_campaign(runner=...)``. Execution is in-process and
    cohort-ordered; results return in canonical spec order regardless.
    ``last_cohorts`` exposes the most recent grouping (fingerprint ->
    canonical job indices) for tests, benchmarks and scheduling
    forensics.
    """

    workers = 1

    def __init__(self) -> None:
        self.last_cohorts: List[Tuple[tuple, List[int]]] = []

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        specs = list(specs)
        if not specs:
            return []
        cohorts = cohorts_of(specs)
        self.last_cohorts = [(key, [s.index for s in members])
                             for key, members in cohorts]
        # one work unit per cohort, dispatched through the shared
        # scheduler core in first-appearance order (cost_placement off:
        # cohort adjacency, not weight, is this runner's whole policy)
        from repro.fleet.sched import ElasticScheduler, InlineBackend, WorkUnit
        scheduler = ElasticScheduler(InlineBackend(run_job),
                                     cost_placement=False)
        by_index = scheduler.run(
            [WorkUnit(members) for _, members in cohorts])
        missing = [s.job_id for s in specs if s.index not in by_index]
        if missing:  # pragma: no cover - run_job never loses a result
            raise FleetError(f"batch runner lost {len(missing)} "
                             f"job result(s): {missing[:5]}")
        return [by_index[spec.index] for spec in specs]

    def __repr__(self) -> str:
        return f"<BatchRunner cohorts={len(self.last_cohorts) or '?'}>"


class BoardCohort:
    """N boards, one firmware, executed in SoA lockstep.

    Boards are real :class:`~repro.target.board.Board` instances — every
    backdoor (``DebugPort``, ``symbol_value``, pokes) works unchanged,
    and any lane can be run individually between cohort runs because
    lockstep execution writes complete state back after every call.
    RAM defaults to exactly the firmware's data footprint: column
    absorb/write-back cost is proportional to RAM words, and a cohort
    never needs the 4096-word default plane.
    """

    def __init__(self, firmware: FirmwareImage, lanes: int,
                 clock_hz: int = 8_000_000,
                 ram_words: Optional[int] = None,
                 stack_depth: int = 128,
                 reconverge_window: int = 4096,
                 min_lanes: int = 2) -> None:
        if lanes < 1:
            raise FleetError(f"cohort needs at least one lane, got {lanes}")
        if ram_words is None:
            ram_words = max(1, len(firmware.symbols))
        self.firmware = firmware
        self.boards: List[Board] = []
        for _ in range(lanes):
            board = Board(clock_hz=clock_hz, ram_words=ram_words,
                          stack_depth=stack_depth)
            board.load_firmware(firmware)
            self.boards.append(board)
        self.batch = BatchCpu([b.cpu for b in self.boards],
                              reconverge_window=reconverge_window,
                              min_lanes=min_lanes)

    @property
    def lanes(self) -> int:
        return len(self.boards)

    # -- per-lane data -------------------------------------------------------

    def poke_symbol(self, name: str, values: Sequence[int]) -> None:
        """Backdoor-write one value per lane into firmware symbol *name*."""
        if len(values) != len(self.boards):
            raise FleetError(f"{len(values)} values for "
                             f"{len(self.boards)} lanes")
        addr = self.firmware.symbols.addr_of(name)
        for board, value in zip(self.boards, values):
            board.memory.poke(addr, wrap32(value))

    def seed_symbol(self, name: str, master_seed: int,
                    span: Optional[int] = None) -> List[int]:
        """Derive one deterministic value per lane and poke it into *name*.

        Values come from ``derive_seed(master_seed, "cohort", name,
        lane)`` — stable across processes and Python versions, exactly
        like campaign job seeds — optionally reduced modulo *span*.
        Returns the per-lane values for assertions and logs.
        """
        values = [derive_seed(master_seed, "cohort", name, lane)
                  for lane in range(len(self.boards))]
        if span is not None:
            values = [v % span for v in values]
        self.poke_symbol(name, values)
        return values

    # -- lockstep execution --------------------------------------------------

    def run_task(self, task: str, max_instructions: int = 1_000_000,
                 limits: Optional[Sequence[int]] = None
                 ) -> List[LaneOutcome]:
        """Lockstep analogue of ``Board.run_task`` on every lane.

        Faults come back as ``LaneOutcome.fault`` instead of raising —
        one lane's divide-by-zero must not abort its cohort-mates.
        """
        entry = self.firmware.entry_of(task)
        return self.batch.run_task(entry, max_instructions, limits)

    def run_jobs(self, task: str, count: int,
                 max_instructions: int = 1_000_000
                 ) -> List[List[LaneOutcome]]:
        """Run *count* sequential activations of *task* on every lane."""
        entry = self.firmware.entry_of(task)
        return self.batch.run_jobs(entry, count, max_instructions)
