"""Process-pool dispatch: FleetRunner, the serial fallback, seed derivation.

Runner contract — ``run(specs) -> results`` where ``results[i]`` answers
``specs[i]`` (canonical order restored no matter which worker finished
first). Both runners implement it identically, so every call site takes a
``runner`` and stays oblivious to whether experiments fan out or not.

Scheduling policy:

* **workers** — default ``min(4, cpu_count)``; campaign jobs are pure
  CPU, so oversubscribing a small container only adds context switches.
* **chunking** — jobs move to workers in contiguous slices of
  ``chunk_size`` (default: corpus split into ~4 chunks per worker, so
  the tail stays balanced while per-chunk dispatch overhead is paid
  rarely). Chunking is a transport detail: results carry their canonical
  index and are re-ordered on the way back, so any chunk size produces
  the same campaign.
* **crash containment** — a worker that dies outright (segfault,
  ``os._exit``) breaks the pool; every job that was in flight is retried
  in an isolated single-job process, up to ``max_retries`` times with
  exponential backoff, and a job that exhausts its retry budget comes
  back as a structured ``WorkerCrashed`` failure (retry count recorded
  on the :class:`~repro.fleet.jobs.JobResult`) instead of hanging or
  poisoning its chunk mates;
* **hang containment** — with ``job_timeout_s`` set, a job that wedges
  its isolated process is killed and reported as a structured
  ``JobTimeout`` failure; a pool pass that stops completing futures is
  timed out as a whole and its unfinished chunks go through the same
  isolated-retry path.

:func:`derive_seed` / :func:`seed_stream` (canonical home:
:mod:`repro.util.seeds`, re-exported here for compatibility) are the
deterministic seed expanders for growing fault corpora: a stable 63-bit
stream derived from ``(master_seed, *parts)`` via SHA-256 — independent
of process, chunk, hash randomization and Python version, so a campaign
described by one master seed enumerates the same per-job seeds
everywhere.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import List, Optional, Sequence, Tuple

from repro.errors import FleetError
from repro.fleet.jobs import JobResult, JobSpec, default_mp_context
from repro.fleet.worker import run_job, run_job_batch
from repro.obs.runtime import OBS
from repro.util.seeds import derive_seed, seed_stream

__all__ = ["FleetRunner", "SerialRunner", "default_workers",
           "derive_seed", "seed_stream"]


def default_workers() -> int:
    """Worker-count policy: fill the small-machine cores, cap at 4."""
    return max(1, min(4, os.cpu_count() or 1))


def _chunk(specs: Sequence[JobSpec], chunk_size: int) -> List[List[JobSpec]]:
    return [list(specs[i:i + chunk_size])
            for i in range(0, len(specs), chunk_size)]


def _worker_init(extra_paths: List[str], hb_config=None,
                 hb_queue=None) -> None:
    """Spawned workers must see the same import roots as the parent.

    With a heartbeat config + queue (the live-telemetry plane), the
    worker also enables an in-process metrics registry and installs a
    :class:`~repro.obs.live.HeartbeatEmitter` in ``OBS.live`` whose
    sink is the parent's queue — every job this process runs then
    streams windowed registry deltas upward.
    """
    for path in reversed(extra_paths):
        if path not in sys.path:
            sys.path.insert(0, path)
    if hb_config is not None and hb_queue is not None:
        from repro.obs.live import HeartbeatEmitter
        from repro.obs.metrics import MetricsRegistry
        if OBS.metrics is None:
            OBS.metrics = MetricsRegistry()
        OBS.live = HeartbeatEmitter(hb_config, hb_queue.put)


def _crash_result(spec: JobSpec, retries: int = 0) -> JobResult:
    return JobResult(
        spec.index, spec.job_id,
        error={
            "type": "WorkerCrashed",
            "message": ("worker process died while running this job "
                        "(hard exit or signal; no Python traceback)"),
            "traceback": "",
            "retries": retries,
        },
        retries=retries,
    )


def _timeout_result(spec: JobSpec, retries: int, timeout_s: float) -> JobResult:
    return JobResult(
        spec.index, spec.job_id,
        error={
            "type": "JobTimeout",
            "message": (f"job exceeded its {timeout_s}s per-job timeout "
                        f"and its worker was killed"),
            "traceback": "",
            "retries": retries,
        },
        retries=retries,
    )


def _isolated_entry(conn, spec: JobSpec, extra_paths: List[str],
                    hb_config=None, hb_queue=None) -> None:
    """Entry point of an isolated single-job retry process."""
    _worker_init(extra_paths, hb_config, hb_queue)
    try:
        conn.send(run_job(spec))
    finally:
        conn.close()


class SerialRunner:
    """The in-process fallback: identical interface, zero processes.

    Runs every job through the same :func:`~repro.fleet.worker.run_job`
    the pool workers use — it *is* the parity baseline the parallel
    runner is measured against. With ``live=`` (a
    :class:`~repro.obs.live.LiveAggregator`) it installs an in-process
    :class:`~repro.obs.live.HeartbeatEmitter` whose sink is the
    aggregator's ``feed`` directly — same delta protocol, zero queues —
    which is exactly how the serial-vs-fleet transcript identity is
    provable: both paths aggregate the same canonical messages.
    """

    workers = 1

    def __init__(self, live=None) -> None:
        #: optional repro.obs.live.LiveAggregator receiving heartbeats
        self.live = live

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        if self.live is None:
            return [run_job(spec) for spec in specs]
        from repro.obs.live import HeartbeatEmitter
        from repro.obs.metrics import MetricsRegistry
        prior_live = OBS.live
        own_registry = OBS.metrics is None
        if own_registry:
            OBS.metrics = MetricsRegistry()
        emitter = HeartbeatEmitter(self.live.config, self.live.feed,
                                   source="serial")
        OBS.live = emitter
        try:
            return [run_job(spec) for spec in specs]
        finally:
            emitter.close()
            OBS.live = prior_live
            if own_registry:
                OBS.metrics = None

    def __repr__(self) -> str:
        live = " live" if self.live is not None else ""
        return f"<SerialRunner{live}>"


class FleetRunner:
    """Chunked campaign dispatch over a process pool."""

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 max_retries: int = 1,
                 retry_backoff_s: float = 0.0,
                 job_timeout_s: Optional[float] = None,
                 live=None) -> None:
        if workers is not None and workers < 1:
            raise FleetError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise FleetError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_retries < 0:
            raise FleetError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise FleetError(f"retry_backoff_s must be >= 0, "
                             f"got {retry_backoff_s}")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise FleetError(f"job_timeout_s must be positive, "
                             f"got {job_timeout_s}")
        self.workers = workers if workers is not None else default_workers()
        self.chunk_size = chunk_size
        self.mp_context = (mp_context if mp_context is not None
                           else default_mp_context())
        #: isolated-process retry attempts for a job whose worker died
        #: (0 = report the first crash as terminal)
        self.max_retries = max_retries
        #: sleep before retry attempt N: backoff * 2**(N-1) seconds
        self.retry_backoff_s = retry_backoff_s
        #: kill an isolated job after this many wall-clock seconds; also
        #: bounds the pool pass at timeout * len(specs) total
        self.job_timeout_s = job_timeout_s
        #: optional repro.obs.live.LiveAggregator: workers stream
        #: heartbeat deltas to it over a managed queue piggybacked on
        #: the pool's init plumbing (None = live plane off, zero cost)
        self.live = live
        self._hb_queue = None  # managed queue, alive only inside run()

    def _chunk_size_for(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker: coarse enough to amortize dispatch,
        # fine enough that one slow chunk cannot strand the tail.
        return max(1, -(-total // (self.workers * 4)))

    def _executor(self, workers: int) -> ProcessPoolExecutor:
        hb_config = self.live.config if self.live is not None else None
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(self.mp_context),
            initializer=_worker_init,
            initargs=(list(sys.path), hb_config, self._hb_queue),
        )

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Run the corpus; results come back in canonical spec order."""
        specs = list(specs)
        if not specs:
            return []
        manager = None
        if self.live is not None:
            # A managed queue, not a raw mp.Queue: the proxy pickles
            # through initargs under fork *and* spawn, and `put` is a
            # synchronous round-trip to the manager process, so a
            # worker's last heartbeat is never lost in a feeder thread
            # when its process exits.
            manager = multiprocessing.get_context(self.mp_context).Manager()
            self._hb_queue = manager.Queue()
        try:
            return self._run(specs)
        finally:
            if self.live is not None:
                self.live.drain(self._hb_queue)
                self._hb_queue = None
                manager.shutdown()

    def _run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        by_index: dict = {}
        stranded: List[JobSpec] = []

        chunks = _chunk(specs, self._chunk_size_for(len(specs)))
        pass_timeout = (self.job_timeout_s * len(specs)
                        if self.job_timeout_s is not None else None)
        try:
            with self._executor(min(self.workers, len(chunks))) as pool:
                futures = {pool.submit(run_job_batch, chunk): chunk
                           for chunk in chunks}
                try:
                    for future in as_completed(futures,
                                               timeout=pass_timeout):
                        if self.live is not None:
                            # stream whatever the workers buffered so
                            # far: dashboards update mid-campaign, not
                            # at the end
                            self.live.drain(self._hb_queue)
                        try:
                            batch = future.result()
                        except BrokenExecutor:
                            stranded.extend(futures[future])
                            continue
                        for result in batch:
                            by_index[result.index] = result
                except FuturesTimeoutError:
                    # the pool pass stopped making progress: kill the
                    # workers so `with` can shut down, harvest whatever
                    # finished, strand the rest for isolated retry
                    for proc in getattr(pool, "_processes", {}).values():
                        proc.terminate()
                    for future, chunk in futures.items():
                        if future.done() and not future.cancelled():
                            try:
                                for result in future.result():
                                    by_index[result.index] = result
                            except Exception:  # noqa: BLE001 - crashed chunk
                                stranded.extend(chunk)
                        else:
                            future.cancel()
                            stranded.extend(chunk)
        except BrokenExecutor:
            # The pool died during shutdown; anything unaccounted for
            # goes through the isolated retry below.
            pass
        for spec in specs:
            if spec.index not in by_index and spec not in stranded:
                stranded.append(spec)

        # Bounded second chance, one isolated process per attempt: the
        # crasher (or hanger) is contained and identified; its innocent
        # chunk mates complete. Terminal failures are structured, with
        # the burned retry count on the result.
        for spec in stranded:
            by_index[spec.index] = self._run_stranded(spec)

        missing = [spec.job_id for spec in specs if spec.index not in by_index]
        if missing:
            raise FleetError(f"runner lost {len(missing)} job result(s): "
                             f"{missing[:5]}")
        results = [by_index[spec.index] for spec in specs]
        if OBS.metrics is not None:
            # parent-side job lifecycle books (worker processes have
            # their own OBS state; counts, not wall-clock spans, are
            # what is deterministic here)
            metrics = OBS.metrics
            metrics.counter("fleet.jobs_dispatched").inc(len(specs))
            metrics.counter("fleet.chunks").inc(len(chunks))
            metrics.counter("fleet.jobs_stranded").inc(len(stranded))
            for result in results:
                if result.failed:
                    metrics.counter("fleet.jobs_failed",
                                    error=result.error["type"]).inc()
                else:
                    metrics.counter("fleet.jobs_completed").inc()
                if result.retries:
                    metrics.counter("fleet.job_retries").inc(result.retries)
        return results

    def _run_stranded(self, spec: JobSpec) -> JobResult:
        """Retry one stranded job in isolation, bounded with backoff."""
        timed_out = False
        for attempt in range(1, self.max_retries + 1):
            if self.retry_backoff_s:
                time.sleep(self.retry_backoff_s * 2 ** (attempt - 1))
            result, status = self._run_isolated(spec)
            if result is not None:
                result.retries = attempt
                return result
            timed_out = status == "timeout"
        if timed_out:
            return _timeout_result(spec, self.max_retries, self.job_timeout_s)
        return _crash_result(spec, retries=self.max_retries)

    def _run_isolated(self, spec: JobSpec
                      ) -> Tuple[Optional[JobResult], str]:
        """One isolated attempt; returns (result, status).

        ``status`` is ``"ok"``, ``"crashed"`` (the process died without
        sending a result) or ``"timeout"`` (it was still running at the
        per-job deadline and was killed).
        """
        ctx = multiprocessing.get_context(self.mp_context)
        parent, child = ctx.Pipe(duplex=False)
        hb_config = self.live.config if self.live is not None else None
        proc = ctx.Process(target=_isolated_entry,
                           args=(child, spec, list(sys.path),
                                 hb_config, self._hb_queue))
        proc.start()
        child.close()
        try:
            if not parent.poll(self.job_timeout_s):
                return None, "timeout"
            try:
                return parent.recv(), "ok"
            except EOFError:
                return None, "crashed"
        finally:
            parent.close()
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - terminate() refused
                proc.kill()
                proc.join(timeout=5)

    def __repr__(self) -> str:
        timeout = (f" timeout={self.job_timeout_s}s"
                   if self.job_timeout_s is not None else "")
        return (f"<FleetRunner workers={self.workers} "
                f"chunk_size={self.chunk_size or 'auto'} "
                f"ctx={self.mp_context} retries={self.max_retries}"
                f"{timeout}>")
