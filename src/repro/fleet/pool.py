"""Campaign runners: thin policy shells over the elastic scheduler core.

Runner contract — ``run(specs) -> results`` where ``results[i]`` answers
``specs[i]`` (canonical order restored no matter which worker finished
first). Every runner implements it identically, so every call site takes
a ``runner`` and stays oblivious to whether experiments fan out or not.

Since the scheduler refactor, no dispatch/retry/timeout/collection loop
lives here: :class:`SerialRunner` and :class:`FleetRunner` only choose a
*policy* — unit shape, backend, worker count, retry budget — and hand it
to :class:`~repro.fleet.sched.ElasticScheduler`, the one event loop
under every execution layer (see :mod:`repro.fleet.sched`).

* **SerialRunner** — one single-spec unit per job, one in-process slot
  (:class:`~repro.fleet.sched.InlineBackend`), canonical dispatch order.
  It *is* the parity baseline every other schedule is measured against.
* **FleetRunner** — contiguous chunks as work units over persistent
  worker processes (:class:`~repro.fleet.sched.ProcessBackend`):
  cost-hint-weighted placement, idle-worker stealing, per-job deadlines
  (``job_timeout_s`` is per in-flight job, not a whole-pass bound),
  bounded non-blocking retry with exponential backoff, and mid-run
  heartbeat draining for the live telemetry plane. Workers stream one
  result per spec, so a crasher costs exactly its own job: chunk mates
  that finished are already home and the queued rest is re-dispatched
  uncharged.

**crash containment** — a worker that dies outright (segfault,
``os._exit``) is respawned; the job it was executing burns one retry
attempt and is resubmitted after a backoff *deadline* (the event loop
keeps scheduling — no blocking sleeps), and a job that exhausts
``max_retries`` comes back as a structured ``WorkerCrashed`` failure
with the burned count on the :class:`~repro.fleet.jobs.JobResult`.

**hang containment** — with ``job_timeout_s``, the in-flight job of
every worker has its own deadline; a wedged job gets its worker killed
and is reported as a structured ``JobTimeout`` failure after the retry
budget, while its queue mates continue unharmed on other workers.

:func:`derive_seed` / :func:`seed_stream` (canonical home:
:mod:`repro.util.seeds`, re-exported here for compatibility) are the
deterministic seed expanders for growing fault corpora: a stable 63-bit
stream derived from ``(master_seed, *parts)`` via SHA-256 — independent
of process, chunk, hash randomization and Python version, so a campaign
described by one master seed enumerates the same per-job seeds
everywhere.
"""

from __future__ import annotations

import multiprocessing
import sys
from contextlib import contextmanager
from typing import List, Optional, Sequence

from repro.errors import FleetError
from repro.fleet.jobs import JobResult, JobSpec, default_mp_context
from repro.fleet.sched import (
    ElasticScheduler,
    InlineBackend,
    ProcessBackend,
    WorkUnit,
)
from repro.fleet.worker import run_job
from repro.obs.runtime import OBS
from repro.util.seeds import derive_seed, seed_stream

__all__ = ["FleetRunner", "SerialRunner", "default_workers",
           "serial_live_scope", "derive_seed", "seed_stream"]


def default_workers() -> int:
    """Worker-count policy: fill the small-machine cores, cap at 4."""
    import os
    return max(1, min(4, os.cpu_count() or 1))


def _chunk(specs: Sequence[JobSpec], chunk_size: int) -> List[List[JobSpec]]:
    return [list(specs[i:i + chunk_size])
            for i in range(0, len(specs), chunk_size)]


def _crash_result(spec: JobSpec, retries: int = 0) -> JobResult:
    return JobResult(
        spec.index, spec.job_id,
        error={
            "type": "WorkerCrashed",
            "message": ("worker process died while running this job "
                        "(hard exit or signal; no Python traceback)"),
            "traceback": "",
            "retries": retries,
        },
        retries=retries,
    )


def _timeout_result(spec: JobSpec, retries: int, timeout_s: float) -> JobResult:
    return JobResult(
        spec.index, spec.job_id,
        error={
            "type": "JobTimeout",
            "message": (f"job exceeded its {timeout_s}s per-job timeout "
                        f"and its worker was killed"),
            "traceback": "",
            "retries": retries,
        },
        retries=retries,
    )


@contextmanager
def serial_live_scope(live):
    """In-process heartbeat wiring for serial-schedule execution.

    With a :class:`~repro.obs.live.LiveAggregator`, installs a
    :class:`~repro.obs.live.HeartbeatEmitter` in ``OBS.live`` whose sink
    is the aggregator's ``feed`` directly — same delta protocol as the
    fleet's worker queue, zero queues — which is exactly how the
    serial-vs-fleet transcript identity is provable: both paths
    aggregate the same canonical messages. The scheduler-parity tests
    reuse this scope around forced-interleaving schedules, so their
    transcripts are wired identically to :class:`SerialRunner`'s.
    """
    if live is None:
        yield None
        return
    from repro.obs.live import HeartbeatEmitter
    from repro.obs.metrics import MetricsRegistry
    prior_live = OBS.live
    own_registry = OBS.metrics is None
    if own_registry:
        OBS.metrics = MetricsRegistry()
    emitter = HeartbeatEmitter(live.config, live.feed, source="serial")
    OBS.live = emitter
    try:
        yield emitter
    finally:
        emitter.close()
        OBS.live = prior_live
        if own_registry:
            OBS.metrics = None


class SerialRunner:
    """The in-process fallback: identical interface, zero processes.

    A policy shell over :class:`~repro.fleet.sched.ElasticScheduler`:
    one single-spec unit per job on one inline slot, placement in
    canonical order, stealing irrelevant — i.e. the canonical serial
    schedule every elastic schedule must be byte-identical to. Jobs run
    through the same :func:`~repro.fleet.worker.run_job` the pool
    workers use. With ``live=`` (a
    :class:`~repro.obs.live.LiveAggregator`) heartbeats flow through
    :func:`serial_live_scope` straight into the aggregator.
    """

    workers = 1

    def __init__(self, live=None) -> None:
        #: optional repro.obs.live.LiveAggregator receiving heartbeats
        self.live = live

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        specs = list(specs)
        if not specs:
            return []
        with serial_live_scope(self.live):
            scheduler = ElasticScheduler(InlineBackend(run_job),
                                         cost_placement=False)
            by_index = scheduler.run([WorkUnit([spec]) for spec in specs])
        return [by_index[spec.index] for spec in specs]

    def __repr__(self) -> str:
        live = " live" if self.live is not None else ""
        return f"<SerialRunner{live}>"


class FleetRunner:
    """Elastic campaign dispatch over persistent worker processes."""

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 mp_context: Optional[str] = None,
                 max_retries: int = 1,
                 retry_backoff_s: float = 0.0,
                 job_timeout_s: Optional[float] = None,
                 live=None) -> None:
        if workers is not None and workers < 1:
            raise FleetError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise FleetError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_retries < 0:
            raise FleetError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_s < 0:
            raise FleetError(f"retry_backoff_s must be >= 0, "
                             f"got {retry_backoff_s}")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise FleetError(f"job_timeout_s must be positive, "
                             f"got {job_timeout_s}")
        self.workers = workers if workers is not None else default_workers()
        self.chunk_size = chunk_size
        self.mp_context = (mp_context if mp_context is not None
                           else default_mp_context())
        #: resubmission attempts for a job whose worker died or was
        #: deadline-killed (0 = report the first death as terminal)
        self.max_retries = max_retries
        #: retry attempt N is gated on a deadline backoff * 2**(N-1)
        #: seconds after the death — the event loop never sleeps through
        #: it, so N stranded jobs recover in max-of-backoffs wall time
        self.retry_backoff_s = retry_backoff_s
        #: per-job deadline: the in-flight job of each worker is killed
        #: this many wall-clock seconds after dispatch (or its worker's
        #: previous result) — no whole-pass timeout exists anymore
        self.job_timeout_s = job_timeout_s
        #: optional repro.obs.live.LiveAggregator: workers stream
        #: heartbeat deltas to it over a managed queue piggybacked on
        #: the pool's init plumbing (None = live plane off, zero cost)
        self.live = live
        self._hb_queue = None  # managed queue, alive only inside run()

    def _chunk_size_for(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker: coarse enough to amortize dispatch,
        # fine enough that stealing has units left to rebalance.
        return max(1, -(-total // (self.workers * 4)))

    def _terminal_result(self, spec: JobSpec, kind: str,
                         retries: int) -> JobResult:
        if kind == "timeout":
            return _timeout_result(spec, retries, self.job_timeout_s)
        return _crash_result(spec, retries)

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Run the corpus; results come back in canonical spec order."""
        specs = list(specs)
        if not specs:
            return []
        manager = None
        if self.live is not None:
            # A managed queue, not a raw mp.Queue: the proxy pickles
            # through the worker spawn args under fork *and* spawn, and
            # `put` is a synchronous round-trip to the manager process,
            # so a worker's last heartbeat is never lost in a feeder
            # thread when its process exits.
            manager = multiprocessing.get_context(self.mp_context).Manager()
            self._hb_queue = manager.Queue()
        try:
            return self._run(specs)
        finally:
            if self.live is not None:
                self.live.drain(self._hb_queue)
                self._hb_queue = None
                manager.shutdown()

    def _run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        chunks = _chunk(specs, self._chunk_size_for(len(specs)))
        units = [WorkUnit(chunk) for chunk in chunks]
        backend = ProcessBackend(
            slot_count=min(self.workers, len(chunks)),
            mp_context=self.mp_context,
            hb_config=self.live.config if self.live is not None else None,
            hb_queue=self._hb_queue,
            extra_paths=list(sys.path),
        )
        scheduler = ElasticScheduler(
            backend,
            max_retries=self.max_retries,
            retry_backoff_s=self.retry_backoff_s,
            job_timeout_s=self.job_timeout_s,
            live=self.live,
            live_queue=self._hb_queue,
            terminal_result=self._terminal_result,
        )
        try:
            by_index = scheduler.run(units)
        finally:
            backend.close()

        missing = [spec.job_id for spec in specs if spec.index not in by_index]
        if missing:
            raise FleetError(f"runner lost {len(missing)} job result(s): "
                             f"{missing[:5]}")
        results = [by_index[spec.index] for spec in specs]
        if OBS.metrics is not None:
            # parent-side job lifecycle books (worker processes have
            # their own OBS state; counts, not wall-clock spans, are
            # what is deterministic here)
            metrics = OBS.metrics
            metrics.counter("fleet.jobs_dispatched").inc(len(specs))
            metrics.counter("fleet.chunks").inc(len(chunks))
            metrics.counter("fleet.jobs_stranded").inc(
                len(scheduler.stranded_items))
            if scheduler.steals:
                metrics.counter("fleet.unit_steals").inc(scheduler.steals)
            if scheduler.preemptions:
                metrics.counter("fleet.unit_preemptions").inc(
                    scheduler.preemptions)
            for result in results:
                if result.failed:
                    metrics.counter("fleet.jobs_failed",
                                    error=result.error["type"]).inc()
                else:
                    metrics.counter("fleet.jobs_completed").inc()
                if result.retries:
                    metrics.counter("fleet.job_retries").inc(result.retries)
        return results

    def __repr__(self) -> str:
        timeout = (f" timeout={self.job_timeout_s}s"
                   if self.job_timeout_s is not None else "")
        return (f"<FleetRunner workers={self.workers} "
                f"chunk_size={self.chunk_size or 'auto'} "
                f"ctx={self.mp_context} retries={self.max_retries}"
                f"{timeout}>")
