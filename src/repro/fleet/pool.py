"""Process-pool dispatch: FleetRunner, the serial fallback, seed derivation.

Runner contract — ``run(specs) -> results`` where ``results[i]`` answers
``specs[i]`` (canonical order restored no matter which worker finished
first). Both runners implement it identically, so every call site takes a
``runner`` and stays oblivious to whether experiments fan out or not.

Scheduling policy:

* **workers** — default ``min(4, cpu_count)``; campaign jobs are pure
  CPU, so oversubscribing a small container only adds context switches.
* **chunking** — jobs move to workers in contiguous slices of
  ``chunk_size`` (default: corpus split into ~4 chunks per worker, so
  the tail stays balanced while per-chunk dispatch overhead is paid
  rarely). Chunking is a transport detail: results carry their canonical
  index and are re-ordered on the way back, so any chunk size produces
  the same campaign.
* **crash containment** — a worker that dies outright (segfault,
  ``os._exit``) breaks the pool; every job that was in flight is retried
  one-per-fresh-pool, and a job that kills its process twice comes back
  as a structured ``worker-crash`` failure instead of hanging or
  poisoning its chunk mates.

:func:`derive_seed` is the deterministic seed expander for growing fault
corpora: a stable 63-bit stream derived from ``(master_seed, *parts)``
via SHA-256 — independent of process, chunk, hash randomization and
Python version, so a campaign described by one master seed enumerates
the same per-job seeds everywhere.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import sys
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from typing import List, Optional, Sequence, Tuple

from repro.errors import FleetError
from repro.fleet.jobs import JobResult, JobSpec, default_mp_context
from repro.fleet.worker import run_job, run_job_batch


def derive_seed(master_seed: int, *parts: object) -> int:
    """A stable 63-bit seed from a master seed and identity parts."""
    text = repr((int(master_seed),) + tuple(str(p) for p in parts))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def seed_stream(master_seed: int, label: str, count: int) -> Tuple[int, ...]:
    """*count* derived seeds for one fault kind / corpus label."""
    if count < 0:
        raise FleetError(f"seed count must be non-negative, got {count}")
    return tuple(derive_seed(master_seed, label, i) for i in range(count))


def default_workers() -> int:
    """Worker-count policy: fill the small-machine cores, cap at 4."""
    return max(1, min(4, os.cpu_count() or 1))


def _chunk(specs: Sequence[JobSpec], chunk_size: int) -> List[List[JobSpec]]:
    return [list(specs[i:i + chunk_size])
            for i in range(0, len(specs), chunk_size)]


def _worker_init(extra_paths: List[str]) -> None:
    """Spawned workers must see the same import roots as the parent."""
    for path in reversed(extra_paths):
        if path not in sys.path:
            sys.path.insert(0, path)


def _crash_result(spec: JobSpec) -> JobResult:
    return JobResult(
        spec.index, spec.job_id,
        error={
            "type": "WorkerCrashed",
            "message": ("worker process died while running this job "
                        "(hard exit or signal; no Python traceback)"),
            "traceback": "",
        },
    )


class SerialRunner:
    """The in-process fallback: identical interface, zero processes.

    Runs every job through the same :func:`~repro.fleet.worker.run_job`
    the pool workers use — it *is* the parity baseline the parallel
    runner is measured against.
    """

    workers = 1

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        return [run_job(spec) for spec in specs]

    def __repr__(self) -> str:
        return "<SerialRunner>"


class FleetRunner:
    """Chunked campaign dispatch over a process pool."""

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 mp_context: Optional[str] = None) -> None:
        if workers is not None and workers < 1:
            raise FleetError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise FleetError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers if workers is not None else default_workers()
        self.chunk_size = chunk_size
        self.mp_context = (mp_context if mp_context is not None
                           else default_mp_context())

    def _chunk_size_for(self, total: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker: coarse enough to amortize dispatch,
        # fine enough that one slow chunk cannot strand the tail.
        return max(1, -(-total // (self.workers * 4)))

    def _executor(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(self.mp_context),
            initializer=_worker_init,
            initargs=(list(sys.path),),
        )

    def run(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Run the corpus; results come back in canonical spec order."""
        specs = list(specs)
        if not specs:
            return []
        by_index: dict = {}
        stranded: List[JobSpec] = []

        chunks = _chunk(specs, self._chunk_size_for(len(specs)))
        try:
            with self._executor(min(self.workers, len(chunks))) as pool:
                futures = {pool.submit(run_job_batch, chunk): chunk
                           for chunk in chunks}
                for future in as_completed(futures):
                    try:
                        batch = future.result()
                    except BrokenExecutor:
                        stranded.extend(futures[future])
                        continue
                    for result in batch:
                        by_index[result.index] = result
        except BrokenExecutor:
            # The pool died during shutdown; anything unaccounted for
            # goes through the one-job-per-pool retry below.
            pass
        for spec in specs:
            if spec.index not in by_index and spec not in stranded:
                stranded.append(spec)

        # Second chance, one job per fresh single-worker pool: the crasher
        # is isolated and identified; its innocent chunk mates complete.
        for spec in stranded:
            try:
                with self._executor(1) as pool:
                    by_index[spec.index] = pool.submit(run_job, spec).result()
            except BrokenExecutor:
                by_index[spec.index] = _crash_result(spec)

        missing = [spec.job_id for spec in specs if spec.index not in by_index]
        if missing:
            raise FleetError(f"runner lost {len(missing)} job result(s): "
                             f"{missing[:5]}")
        return [by_index[spec.index] for spec in specs]

    def __repr__(self) -> str:
        return (f"<FleetRunner workers={self.workers} "
                f"chunk_size={self.chunk_size or 'auto'} "
                f"ctx={self.mp_context}>")
