"""Regeneration of the paper's six figures as programmatic artifacts.

The paper's figures are diagrams and prototype screenshots, not data plots;
each function rebuilds the corresponding artifact from the live system so
tests can assert on content and the benchmark harness can save them.
"""

from __future__ import annotations

from typing import Tuple

from repro.comdes.examples import traffic_light_system
from repro.engine.session import DebugSession
from repro.gdm.metamodel import gdm_metamodel
from repro.gdm.scenegen import gdm_to_scene
from repro.meta.metamodel import MetaModel
from repro.render.ascii_art import scene_to_ascii
from repro.render.geometry import Point, Rect
from repro.render.layout import grid_layout
from repro.render.scene import Scene, SceneNode
from repro.render.svg import scene_to_svg
from repro.util.textgrid import TextGrid
from repro.util.timeunits import ms


def fig1_mdd_role() -> str:
    """Fig 1: the role of the model debugger in the MDD flow."""
    grid = TextGrid(78, 17)
    grid.text(2, 0, "Fig 1 — Role of the Graphical Model Debugger in MDD")
    grid.box(2, 2, 18, 3, "Requirements")
    grid.box(2, 6, 18, 3, "Modeling tool")
    grid.box(2, 10, 18, 3, "System model")
    grid.box(28, 10, 22, 3, "Model transformation")
    grid.box(56, 10, 18, 3, "Executable code")
    grid.box(28, 14, 22, 3, "MODEL DEBUGGER")
    grid.vline(10, 5, 5)
    grid.vline(10, 9, 9)
    grid.text(21, 11, "------>")
    grid.text(51, 11, "---->")
    grid.put(39, 13, "^")
    grid.vline(39, 13, 13)
    grid.text(52, 15, "<-- commands --")
    return grid.render()


def fig2_structural_view() -> str:
    """Fig 2: GMDF structural view (inputs, GDM server, runtime engine)."""
    grid = TextGrid(78, 19)
    grid.text(2, 0, "Fig 2 — GMDF structural view")
    grid.box(2, 2, 22, 3, "Metamodel(s)")
    grid.box(2, 6, 22, 3, "Input model(s)")
    grid.box(2, 10, 22, 3, "Executable code")
    grid.text(25, 7, "--abstraction-->")
    grid.box(42, 4, 24, 5, "GDM (server)")
    grid.box(42, 11, 24, 3, "Runtime engine")
    grid.text(25, 11, "<=== commands ===>")
    grid.vline(54, 9, 10)
    grid.text(2, 15, "A) user input   B) GDM on-call server   C) animation")
    grid.text(2, 16, "command interface: active (RS-232) or passive (JTAG, IEEE 1149.1)")
    return grid.render()


def _metamodel_scene(metamodel: MetaModel, title: str) -> Scene:
    """Generic metamodel diagram: classes as boxes, references as arrows."""
    scene = Scene(title=title)
    names = [cls.name for cls in metamodel.classes()]
    placement = grid_layout(names, cell_w=22, cell_h=4, gap=5, columns=3)
    for name in names:
        scene.add(SceneNode(name, "rect", placement[name], label=name, z=1))
    edge_id = 0
    for cls in metamodel.classes():
        for ref in cls.own_references.values():
            src = placement[cls.name].center
            dst = placement[ref.target].center
            box = Rect(min(src.x, dst.x), min(src.y, dst.y),
                       abs(src.x - dst.x) + 1, abs(src.y - dst.y) + 1)
            edge_id += 1
            scene.add(SceneNode(
                f"ref{edge_id}", "arrow", box,
                label="", z=0, endpoints=(Point(*src), Point(*dst)),
            ))
    return scene


def fig3_gdm_metamodel() -> Tuple[str, str]:
    """Fig 3: the GDM metamodel; returns (ascii, svg)."""
    scene = _metamodel_scene(gdm_metamodel(),
                             "Fig 3 — GDM metamodel (event-driven FSM)")
    return scene_to_ascii(scene), scene_to_svg(scene)


def fig4_abstraction_guide() -> str:
    """Fig 4: the abstraction-guide dialog over the traffic-light model."""
    session = DebugSession(traffic_light_system())
    session.step1_provide_inputs().step2_select_inputs().step3_abstraction()
    return session.guide.render_dialog()


def fig5_animated_model() -> Tuple[str, str, DebugSession]:
    """Fig 5: the prototype animating the model (active state highlighted).

    Returns (ascii, svg, session) after a short debug run.
    """
    session = DebugSession(traffic_light_system(), channel_kind="active")
    session.setup().run(ms(100) * 12)
    scene = gdm_to_scene(session.gdm,
                         title="Fig 5 — model animation (active state highlighted)")
    return scene_to_ascii(scene), scene_to_svg(scene), session


def fig6_execution_flow() -> str:
    """Fig 6: the prototype workflow log (the five numbered steps)."""
    session = DebugSession(traffic_light_system(), channel_kind="active")
    session.setup().run(ms(100) * 10)
    lines = [
        "Fig 6 — GMDF prototype execution flow",
        session.workflow_text(),
        "",
        f"runtime interaction: {len(session.trace)} commands traced, "
        f"engine {session.engine.state.name}",
    ]
    return "\n".join(lines)
