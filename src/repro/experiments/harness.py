"""Experiment harness: aligned result tables and artifact files."""

from __future__ import annotations

import os
from typing import Any, List, Sequence


class ResultTable:
    """Collects rows and renders an aligned text table.

    The benchmark files print these tables so the harness output mirrors
    how the paper would report each experiment.
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    @staticmethod
    def _format(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.3g}"
        return str(value)

    def add_row(self, *values: Any) -> None:
        """Append a row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._format(v) for v in values])

    def render(self) -> str:
        """The aligned table as text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
        divider = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [f"== {self.title} ==", line(self.columns), divider]
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def print(self) -> None:
        """Print with surrounding blank lines (pytest -s friendly)."""
        print("\n" + self.render() + "\n")


def artifacts_dir() -> str:
    """The artifacts directory (created on demand)."""
    base = os.environ.get("REPRO_ARTIFACTS",
                          os.path.join(os.getcwd(), "artifacts"))
    os.makedirs(base, exist_ok=True)
    return base


def save_artifact(name: str, content: str) -> str:
    """Write a text/SVG artifact; returns its path."""
    path = os.path.join(artifacts_dir(), name)
    with open(path, "w") as handle:
        handle.write(content)
    return path
