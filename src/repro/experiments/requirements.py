"""Requirement suites for the canned example systems.

These encode *requirements* (what the system must do), independent of any
particular model — exactly what a developer would check a design model
against with GMDF. The code-watch lists are the closest equivalents
expressible at the code level (value ranges on variables).
"""

from __future__ import annotations

from typing import List

from repro.comm.protocol import CommandKind
from repro.engine.checks import (
    CrossInvariantMonitor,
    DwellMonitor,
    HeartbeatMonitor,
    InitialStateMonitor,
    MonitorSuite,
    RangeMonitor,
    ResponseMonitor,
    SequenceMonitor,
    StateValueMonitor,
)
from repro.faults.campaign import CodeWatchSpec
from repro.util.timeunits import ms


def traffic_light_monitor_suite() -> MonitorSuite:
    """Requirements of the traffic light (period 100ms, R/G/Y = 4/4/2 steps).

    R1: the lamp cycles strictly RED -> GREEN -> YELLOW -> RED.
    R2: the lamp code stays within {0, 1, 2}.
    R3: every state is left within 1s (no lamp freezes).
    R4: the RED phase lasts 350..450ms (safety-critical clearance time).
    R5: each state drives the corresponding lamp code (RED=0, GREEN=1,
        YELLOW=2) — the state/output correspondence only a model-level
        debugger can express.
    """
    prefix = "state:lights.lamp."
    sequence = SequenceMonitor(
        "R1-order", prefix,
        allowed={
            f"{prefix}RED": {f"{prefix}GREEN"},
            f"{prefix}GREEN": {f"{prefix}YELLOW"},
            f"{prefix}YELLOW": {f"{prefix}RED"},
        },
    )
    lamp_range = RangeMonitor("R2-range", "signal:light", 0, 2)
    liveness = ResponseMonitor(
        "R3-liveness",
        trigger=lambda c: c.kind is CommandKind.STATE_ENTER
        and c.path.startswith(prefix),
        response=lambda c: c.kind is CommandKind.STATE_ENTER
        and c.path.startswith(prefix),
        within_us=ms(1000),
    )
    dwells = [
        # Phase durations: RED 4 steps, GREEN 1..4 (button shortens),
        # YELLOW 2 steps, at 100ms/step. Bounds leave one step of slack.
        DwellMonitor("R4-red-dwell", f"{prefix}RED", prefix,
                     lo_us=ms(350), hi_us=ms(450)),
        DwellMonitor("R4-green-dwell", f"{prefix}GREEN", prefix,
                     lo_us=ms(50), hi_us=ms(450)),
        DwellMonitor("R4-yellow-dwell", f"{prefix}YELLOW", prefix,
                     lo_us=ms(150), hi_us=ms(250)),
    ]
    correspondence = [
        StateValueMonitor(f"R5-{state}", f"{prefix}{state}", "signal:light",
                          expected, within_us=ms(250))
        for state, expected in (("RED", 0), ("GREEN", 1), ("YELLOW", 2))
    ]
    extra = [
        # R6: the lamp never freezes (covers dead machines that emit nothing).
        HeartbeatMonitor(
            "R6-lamp-heartbeat",
            lambda c: c.kind is CommandKind.STATE_ENTER
            and c.path.startswith(prefix),
            every_us=ms(1500),
        ),
        # R7: the pedestrian request keeps arriving (stimulus path alive).
        HeartbeatMonitor(
            "R7-btn-heartbeat",
            lambda c: c.kind is CommandKind.SIG_UPDATE
            and c.path == "signal:btn",
            every_us=ms(1600),
        ),
        # R0: from power-on the first phase change enters GREEN (boot in RED).
        InitialStateMonitor("R0-boot", prefix, f"{prefix}GREEN"),
    ]
    return MonitorSuite([sequence, lamp_range, liveness] + dwells
                        + correspondence + extra)


def traffic_light_code_watches() -> List[CodeWatchSpec]:
    """What a code debugger can watch: raw variable ranges."""
    return [
        ("lights.out.light", lambda v: not (0 <= v <= 2),
         "lamp code outside 0..2"),
        ("lights.lamp.$_state", lambda v: not (0 <= v <= 2),
         "state index outside 0..2"),
        ("lights.lamp.$t", lambda v: v > 50, "phase timer ran away"),
    ]


def cruise_monitor_suite() -> MonitorSuite:
    """Requirements of the cruise control.

    R1: mode logic only toggles between OFF and CRUISE.
    R2: throttle stays within its actuator range [0, 1000].
    R3: speed stays within the physically plausible envelope [0, 4000].
    """
    prefix = "state:controller.mode_logic."
    sequence = SequenceMonitor(
        "R1-mode-order", prefix,
        allowed={
            f"{prefix}OFF": {f"{prefix}CRUISE"},
            f"{prefix}CRUISE": {f"{prefix}OFF"},
        },
    )
    throttle = RangeMonitor("R2-throttle", "signal:throttle", 0, 1000)
    speed = RangeMonitor("R3-speed", "signal:speed", 0, 4000)
    return MonitorSuite([sequence, throttle, speed])


def cruise_code_watches() -> List[CodeWatchSpec]:
    """Code-level equivalents for the cruise control."""
    return [
        ("controller.out.throttle", lambda v: not (0 <= v <= 1000),
         "throttle outside actuator range"),
        ("plant.out.speed", lambda v: not (0 <= v <= 4000),
         "speed outside plausible envelope"),
        ("controller.mode_logic.$_state", lambda v: not (0 <= v <= 1),
         "mode index outside 0..1"),
    ]


def production_cell_monitor_suite() -> MonitorSuite:
    """Requirements of the production cell (feeder -> conveyor -> press).

    S1: SAFETY — the press never closes while the belt is running (the
        cross-actor invariant only a model-level debugger can express).
    S2/S3: conveyor and press cycle through their legal state orders.
    S4: actuator signals are boolean.
    S5: the press keeps cycling (no starved handshake).
    S6: a delivered item is pressed within 400ms.
    """
    conveyor = "state:conveyor.belt_ctl."
    press = "state:press.ram_ctl."
    interlock = CrossInvariantMonitor(
        "S1-interlock", f"{press}PRESSING", press,
        "signal:belt", lambda belt: belt == 0,
    )
    conveyor_order = SequenceMonitor(
        "S2-conveyor-order", conveyor,
        allowed={
            f"{conveyor}IDLE": {f"{conveyor}MOVING"},
            f"{conveyor}MOVING": {f"{conveyor}DELIVER"},
            f"{conveyor}DELIVER": {f"{conveyor}IDLE"},
        },
    )
    press_order = SequenceMonitor(
        "S3-press-order", press,
        allowed={
            f"{press}OPEN": {f"{press}PRESSING"},
            f"{press}PRESSING": {f"{press}OPENING"},
            f"{press}OPENING": {f"{press}OPEN"},
        },
    )
    ranges = [
        RangeMonitor("S4-belt", "signal:belt", 0, 1),
        RangeMonitor("S4-done", "signal:press_done", 0, 1),
    ]
    liveness = HeartbeatMonitor(
        "S5-press-heartbeat",
        lambda c: c.kind is CommandKind.STATE_ENTER
        and c.path.startswith(press),
        every_us=ms(2000),
    )
    response = ResponseMonitor(
        "S6-press-response",
        trigger=lambda c: c.kind is CommandKind.SIG_UPDATE
        and c.path == "signal:at_press" and c.value == 1,
        response=lambda c: c.kind is CommandKind.STATE_ENTER
        and c.path == f"{press}PRESSING",
        within_us=ms(400),
    )
    return MonitorSuite([interlock, conveyor_order, press_order,
                         liveness, response] + ranges)


def production_cell_code_watches() -> List[CodeWatchSpec]:
    """Code-level equivalents: value ranges only (no interlock expressible)."""
    return [
        ("conveyor.out.belt", lambda v: not (0 <= v <= 1),
         "belt command outside 0/1"),
        ("press.out.press_done", lambda v: not (0 <= v <= 1),
         "handshake outside 0/1"),
        ("conveyor.belt_ctl.$_state", lambda v: not (0 <= v <= 2),
         "conveyor state index invalid"),
        ("press.ram_ctl.$_state", lambda v: not (0 <= v <= 2),
         "press state index invalid"),
    ]
