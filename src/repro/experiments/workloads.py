"""Parametric workload generators for the scaling experiments.

``chain_machine(n)`` builds an n-state ring FSM (the E4/E5 size sweeps);
``scaled_dataflow_system`` builds wide dataflow actors (abstraction and
animation cost vs model size); all are deterministic in their parameters.
"""

from __future__ import annotations

from typing import List

from repro.comdes.actor import Actor, TaskSpec
from repro.comdes.blocks import AddFB, ConstantFB, GainFB, StateMachineFB
from repro.comdes.dataflow import ComponentNetwork, Connection, PortRef
from repro.comdes.expr import const, ge, lt, var
from repro.comdes.fsm import Assign as FsmAssign
from repro.comdes.fsm import StateMachine, Transition
from repro.comdes.signals import Signal
from repro.comdes.system import System
from repro.meta.model import Model
from repro.comdes.reflect import system_to_model
from repro.util.timeunits import ms


def chain_machine(n_states: int, dwell: int = 1,
                  name: str = "chain") -> StateMachine:
    """A ring of *n_states* states, each dwelling *dwell* steps.

    Output ``pos`` publishes the current position, so every step changes an
    observable — worst-case command traffic for channel experiments.
    """
    if n_states < 2:
        raise ValueError(f"need at least 2 states, got {n_states}")
    states = [f"S{i}" for i in range(n_states)]
    transitions: List[Transition] = []
    for i, state in enumerate(states):
        nxt = states[(i + 1) % n_states]
        if dwell > 1:
            transitions.append(Transition(
                state, nxt, guard=ge(var("t"), const(dwell - 1)),
                actions=[FsmAssign("t", const(0)),
                         FsmAssign("pos", const((i + 1) % n_states))],
            ))
            transitions.append(Transition(
                state, state, guard=lt(var("t"), const(dwell - 1)),
                actions=[FsmAssign("t", var("t") + const(1))],
            ))
        else:
            transitions.append(Transition(
                state, nxt,
                actions=[FsmAssign("pos", const((i + 1) % n_states))],
            ))
    return StateMachine(
        name=name, states=states, initial=states[0],
        transitions=transitions, inputs=[], outputs=["pos"],
        variables={"t": 0} if dwell > 1 else {},
    )


def chain_system(n_states: int, period_us: int = ms(10),
                 dwell: int = 1) -> System:
    """Single-actor system around :func:`chain_machine`."""
    machine = chain_machine(n_states, dwell=dwell)
    network = ComponentNetwork(
        name="chain_net",
        blocks=[StateMachineFB("fsm", machine)],
        output_ports={"pos": PortRef("fsm", "pos")},
    )
    actor = Actor("walker", network, TaskSpec(period_us=period_us),
                  outputs={"pos": "pos"})
    return System(f"chain{n_states}", signals=[Signal("pos")], actors=[actor])


def scaled_dataflow_system(n_blocks: int,
                           period_us: int = ms(10)) -> System:
    """An adder-tree dataflow actor with ~n_blocks blocks.

    Structure: constants feed a chain of adders with gains interleaved —
    deep enough to exercise topological ordering and abstraction cost.
    """
    if n_blocks < 3:
        raise ValueError(f"need at least 3 blocks, got {n_blocks}")
    blocks = [ConstantFB("c0", 1), ConstantFB("c1", 2)]
    connections: List[Connection] = []
    previous = "c0"
    other = "c1"
    index = 0
    while len(blocks) < n_blocks:
        if index % 2 == 0:
            name = f"add{index}"
            blocks.append(AddFB(name))
            connections.append(Connection.wire(f"{previous}.y", f"{name}.a"))
            connections.append(Connection.wire(f"{other}.y", f"{name}.b"))
        else:
            name = f"gain{index}"
            blocks.append(GainFB(name, num=3, den=2))
            connections.append(Connection.wire(f"{previous}.y", f"{name}.u"))
        previous = name
        index += 1
    network = ComponentNetwork(
        name="tree", blocks=blocks, connections=connections,
        output_ports={"y": PortRef(previous, "y")},
    )
    actor = Actor("pipeline", network, TaskSpec(period_us=period_us),
                  outputs={"y": "y"})
    return System(f"tree{n_blocks}", signals=[Signal("y")], actors=[actor])


def scaled_model(n_states: int) -> Model:
    """Reflective model of a chain system (abstraction-cost sweeps)."""
    return system_to_model(chain_system(n_states))
