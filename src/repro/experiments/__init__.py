"""Experiment support: workload generators, requirement suites, harness.

Shared by the benchmark files under ``benchmarks/`` (one per paper figure /
claim, E1..E10) and by the examples. See DESIGN.md §4 for the experiment
index and EXPERIMENTS.md for paper-vs-measured records.
"""

from repro.experiments.requirements import (
    cruise_monitor_suite,
    cruise_code_watches,
    traffic_light_monitor_suite,
    traffic_light_code_watches,
)
from repro.experiments.workloads import (
    chain_machine,
    chain_system,
    scaled_dataflow_system,
    scaled_model,
)
from repro.experiments.harness import ResultTable, artifacts_dir, save_artifact

__all__ = [
    "traffic_light_monitor_suite", "traffic_light_code_watches",
    "cruise_monitor_suite", "cruise_code_watches",
    "chain_machine", "chain_system", "scaled_dataflow_system", "scaled_model",
    "ResultTable", "artifacts_dir", "save_artifact",
]
