"""The store index: which segment holds which seq/time range, and where
the checkpoints are.

The index is tiny (one row per segment, one per checkpoint) and lives in
``index.json`` at the store root. Every query starts here: seq-range and
time-range lookups scan the in-memory rows (cheap — rows, not files)
and open only the segments that can contain matches; checkpoint lookup
bisects a sorted key list because it sits on the per-seek hot path.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_right
from typing import List, Optional

from repro.errors import TraceStoreError
from repro.tracedb.segment import SegmentInfo

INDEX_NAME = "index.json"
INDEX_VERSION = 1


class CheckpointInfo:
    """Index row for one checkpoint: where seek can restart from."""

    __slots__ = ("seq", "t_host", "file")

    def __init__(self, seq: int, t_host: int, file: str) -> None:
        self.seq = seq
        self.t_host = t_host
        self.file = file

    def to_dict(self) -> dict:
        return {"seq": self.seq, "t_host": self.t_host, "file": self.file}

    @classmethod
    def from_dict(cls, data: dict) -> "CheckpointInfo":
        return cls(data["seq"], data["t_host"], data["file"])

    def __repr__(self) -> str:
        return f"<CheckpointInfo seq={self.seq} t={self.t_host}us {self.file}>"


class StoreIndex:
    """All segment and checkpoint rows of one store, ordered by seq."""

    def __init__(self, codec_name: str, segment_events: int,
                 checkpoint_every: Optional[int] = None) -> None:
        self.codec_name = codec_name
        self.segment_events = segment_events
        #: store config like codec/segment_events: persisted so attaching
        #: to an existing store resumes live checkpointing at the same
        #: interval instead of silently disabling it
        self.checkpoint_every = checkpoint_every
        self.segments: List[SegmentInfo] = []
        self.checkpoints: List[CheckpointInfo] = []
        self._event_count = 0  # running total: append must stay O(1)
        self._ckpt_keys: List[int] = []  # sorted seqs, parallel to checkpoints

    # -- bookkeeping -------------------------------------------------------

    def add_segment(self, info: SegmentInfo) -> None:
        if self.segments and info.first_seq != self.segments[-1].last_seq + 1:
            raise TraceStoreError(
                f"segment {info.name} starts at seq {info.first_seq}, "
                f"expected {self.segments[-1].last_seq + 1} (gap or overlap)")
        self.segments.append(info)
        self._event_count += info.count

    def add_checkpoint(self, info: CheckpointInfo) -> None:
        """Insert a checkpoint row, keeping rows sorted by seq.

        Insertion order is free (an offline :func:`build_checkpoints`
        pass may fill gaps *below* live-recorded checkpoints); only a
        duplicate seq is an error. The parallel sorted key list keeps
        this (and :meth:`nearest_checkpoint`) off the O(n)-rebuild path
        — live checkpointing sits on the engine's per-command loop.
        """
        pos = bisect_right(self._ckpt_keys, info.seq)
        if pos and self._ckpt_keys[pos - 1] == info.seq:
            raise TraceStoreError(
                f"checkpoint at seq {info.seq} already exists")
        self._ckpt_keys.insert(pos, info.seq)
        self.checkpoints.insert(pos, info)

    @property
    def event_count(self) -> int:
        """Total sealed records — O(1): read on every single append."""
        return self._event_count

    # -- queries -----------------------------------------------------------
    # (range pruning itself lives on SegmentInfo.intersects_seq /
    # intersects_time — TraceStore applies it over sealed + live
    # segments, which this index cannot see)

    def nearest_checkpoint(self, seq: int) -> Optional[CheckpointInfo]:
        """The latest checkpoint at or before *seq*, or None."""
        pos = bisect_right(self._ckpt_keys, seq)
        return self.checkpoints[pos - 1] if pos else None

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": INDEX_VERSION,
            "codec": self.codec_name,
            "segment_events": self.segment_events,
            "checkpoint_every": self.checkpoint_every,
            "event_count": self.event_count,
            "segments": [s.to_dict() for s in self.segments],
            "checkpoints": [c.to_dict() for c in self.checkpoints],
        }

    def save(self, root: str) -> None:
        path = os.path.join(root, INDEX_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)  # readers never see a half-written index

    @classmethod
    def load(cls, root: str) -> "StoreIndex":
        path = os.path.join(root, INDEX_NAME)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            raise TraceStoreError(f"no trace store at {root!r} "
                                  f"({INDEX_NAME} missing)") from None
        except ValueError as exc:
            raise TraceStoreError(f"corrupt index at {path}: {exc}") from exc
        if data.get("version") != INDEX_VERSION:
            raise TraceStoreError(
                f"unsupported index version {data.get('version')!r}")
        index = cls(data["codec"], data["segment_events"],
                    data.get("checkpoint_every"))
        for row in data["segments"]:
            index.add_segment(SegmentInfo.from_dict(row))
        for row in data["checkpoints"]:
            index.add_checkpoint(CheckpointInfo.from_dict(row))
        return index
