"""The spill-ring: persist-first / overwrite-at-head, in one place.

Two recorders keep a bounded in-memory window over an optionally
spill-backed history: :class:`~repro.engine.trace.ExecutionTrace`
(debugger events) and :class:`~repro.rtos.kernel.DtmKernel` (job
records). Their semantics are deliberately identical —

1. **Persist first.** With a spill store attached, every item is
   appended to the store *before* it enters the ring, so a later
   eviction only discards the cached in-memory copy; the authoritative
   copy is already on disk and ``dropped`` stays 0.
2. **Overwrite at head.** At capacity the oldest item (at ``head``) is
   overwritten in place and ``head`` advances — the ring is a plain
   list plus an index, so indexed access stays O(1) and sequential
   replay over the window is linear, not quadratic.
3. **Count what was destroyed.** Without a spill store, each eviction
   increments ``dropped`` — sequence numbers keep telling the truth
   about how much history existed.
4. **Continue the store's seq line.** A ring over a resumed
   (reattached) store starts numbering at ``store.next_seq``, not 0.

— and used to be *mirrored by convention* in both call sites. This
class makes the mirror structural: both recorders now hold a
:class:`SpillRing`, so the eviction policy cannot silently drift
(``tests/test_spillring.py`` locks the sharing in).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional


class SpillRing:
    """Bounded newest-N window with persist-first spill semantics.

    ``capacity=None`` keeps everything (plain append-only list);
    ``capacity=N`` keeps the newest N items. ``spill`` is any object
    with ``append(dict)`` and (optionally) ``next_seq`` — in practice a
    :class:`~repro.tracedb.store.TraceStore`.
    """

    __slots__ = ("capacity", "spill", "items", "head", "dropped", "_seq")

    def __init__(self, capacity: Optional[int] = None,
                 spill: Optional[object] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.spill = spill
        #: raw ring storage; oldest item at :attr:`head` once wrapped
        self.items: List[Any] = []
        self.head = 0
        self.dropped = 0
        # a ring over a resumed store continues the store's seq line
        self._seq = getattr(spill, "next_seq", 0) if spill is not None else 0

    # -- recording ---------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The seq the next appended item will carry."""
        return self._seq

    def resume_seq(self, seq: int) -> None:
        """Continue numbering at *seq* (deserialization support)."""
        self._seq = seq

    def append(self, item: Any,
               encode: Optional[Callable[[Any], dict]] = None) -> None:
        """Append *item*: persist first (when spilling), then ring-insert.

        ``encode(item)`` produces the spill record; it is only called
        when a spill store is attached, so recorders pay no
        serialization cost while running purely in memory. The store
        stamps/validates the record's seq against its own contiguous
        line — which this ring's :attr:`next_seq` mirrors.
        """
        if self.spill is not None:
            self.spill.append(encode(item) if encode is not None else item)
        self._seq += 1
        if self.capacity is not None and len(self.items) == self.capacity:
            self.items[self.head] = item
            self.head = (self.head + 1) % self.capacity
            if self.spill is None:
                self.dropped += 1
        else:
            self.items.append(item)

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Any]:
        items = self.items
        if self.head == 0:
            return iter(items)
        return iter(items[self.head:] + items[:self.head])

    def at(self, index: int) -> Any:
        """Item at *index* in oldest-first order — O(1), ring-aware."""
        items = self.items
        if self.head == 0:
            return items[index]
        if index < 0:
            index += len(items)
        if not 0 <= index < len(items):
            raise IndexError(f"ring index {index} out of range")
        return items[(self.head + index) % len(items)]

    def snapshot(self) -> List[Any]:
        """The window as a list, oldest surviving item first."""
        return list(self)

    def __repr__(self) -> str:
        spilling = "spilling" if self.spill is not None else "in-memory"
        return (f"<SpillRing {len(self.items)}/{self.capacity} {spilling}, "
                f"dropped={self.dropped}, next_seq={self._seq}>")
