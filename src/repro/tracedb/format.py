"""Segment record formats: versioned header + two writer-chosen codecs.

Every segment file opens with one UTF-8 JSON header line (readable with
``head -1`` regardless of codec)::

    {"codec": "jsonl", "magic": "repro-tracedb-segment", "version": 1}

followed by the records in the codec named by the header:

* ``jsonl`` — one canonical JSON object per ``\\n``-terminated line.
  Greppable, diffable, the default.
* ``binary`` — length-prefixed records: a 4-byte big-endian payload
  length, then the payload (the same canonical JSON, UTF-8). Cheaper to
  skip through and immune to embedded newlines.

Canonical JSON (sorted keys, no whitespace) makes encoding a pure
function of the record: two stores built from the same events are
byte-identical files, which is what lets the fleet-collection tests
compare serial and parallel campaign stores with ``filecmp``.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Dict, Iterator

from repro.errors import TraceStoreError

MAGIC = "repro-tracedb-segment"
VERSION = 1

_LEN = struct.Struct(">I")


def encode_record(record: dict) -> bytes:
    """Canonical JSON bytes of *record* (sorted keys, no whitespace)."""
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


class JsonlCodec:
    """One canonical-JSON record per line."""

    name = "jsonl"

    @staticmethod
    def write(fh: BinaryIO, record: dict) -> int:
        payload = encode_record(record) + b"\n"
        fh.write(payload)
        return len(payload)

    @staticmethod
    def read(fh: BinaryIO) -> Iterator[dict]:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


class BinaryCodec:
    """Length-prefixed records: 4-byte big-endian length + JSON payload."""

    name = "binary"

    @staticmethod
    def write(fh: BinaryIO, record: dict) -> int:
        payload = encode_record(record)
        fh.write(_LEN.pack(len(payload)))
        fh.write(payload)
        return _LEN.size + len(payload)

    @staticmethod
    def read(fh: BinaryIO) -> Iterator[dict]:
        while True:
            prefix = fh.read(_LEN.size)
            if not prefix:
                return
            if len(prefix) < _LEN.size:
                raise TraceStoreError(
                    f"truncated length prefix ({len(prefix)} bytes) "
                    f"at segment tail")
            (length,) = _LEN.unpack(prefix)
            payload = fh.read(length)
            if len(payload) < length:
                raise TraceStoreError(
                    f"truncated record: expected {length} payload bytes, "
                    f"got {len(payload)}")
            yield json.loads(payload.decode("utf-8"))


CODECS: Dict[str, object] = {JsonlCodec.name: JsonlCodec,
                             BinaryCodec.name: BinaryCodec}


def codec_named(name: str):
    """Look up a codec, loudly."""
    try:
        return CODECS[name]
    except KeyError:
        raise TraceStoreError(f"unknown segment codec {name!r}; "
                              f"options: {sorted(CODECS)}") from None


def write_header(fh: BinaryIO, codec_name: str) -> int:
    """Write the one-line JSON header; returns bytes written."""
    codec_named(codec_name)  # validate before committing bytes
    header = json.dumps({"magic": MAGIC, "version": VERSION,
                         "codec": codec_name},
                        sort_keys=True, separators=(",", ":"))
    payload = header.encode("utf-8") + b"\n"
    fh.write(payload)
    return len(payload)


def read_header(fh: BinaryIO):
    """Validate the header line; returns the codec class to read with."""
    line = fh.readline()
    try:
        header = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceStoreError(f"segment header is not JSON: {exc}") from exc
    if header.get("magic") != MAGIC:
        raise TraceStoreError(
            f"not a tracedb segment (magic {header.get('magic')!r})")
    if header.get("version") != VERSION:
        raise TraceStoreError(
            f"unsupported segment version {header.get('version')!r} "
            f"(this reader speaks version {VERSION})")
    return codec_named(header.get("codec", ""))
