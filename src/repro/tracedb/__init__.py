"""``repro.tracedb`` — the spill-to-disk trace store.

The paper's GDM animation "always make[s] a record of the execution
trace" so behavior can be replayed against a timing diagram (§III). The
in-memory rings (``ExecutionTrace(capacity=N)``, ``DtmKernel
(record_capacity=N)``) keep memory flat by *discarding* history; this
subsystem keeps it flat by **persisting** history instead, so a campaign
of any length replays in full with ``dropped == 0``.

Store layout
============

A store is a directory::

    root/
      index.json             StoreIndex: segment + checkpoint rows
      seg-000000000000.trc   segment: header line + records
      seg-000000001024.trc
      ckpt/ckpt-...json      model-state checkpoints

Segment format (``format.py``)
------------------------------

Every segment opens with one UTF-8 JSON header line naming the magic,
the format version and the record codec — ``jsonl`` (one canonical JSON
object per line) or ``binary`` (4-byte big-endian length prefix + the
same canonical JSON payload). The writer chooses the codec; readers
trust only the header. Canonical encoding (sorted keys, no whitespace)
makes segment bytes a pure function of the records, which is what lets
fleet-vs-serial parity be checked with a file compare.

Invariants
----------

* **Contiguous 0-based seq.** ``record["seq"]`` equals the record's
  ordinal position in the store; appends are rejected out of order.
  Consequence: ``StoredTrace[i].seq == i``, and the per-segment index
  rows ``(first_seq, last_seq, first_t_target, last_t_target, offset)``
  support exact bisect pruning for seq- and time-range queries.
* **Append-only.** Segments are sealed at ``segment_events`` records and
  never rewritten; ``index.json`` is replaced atomically.
* **Checkpoint semantics.** A checkpoint at seq ``k`` is the model's
  complete dynamic state (element + link styles) captured *after
  applying* event ``k``. Therefore ``seek(p)`` = restore the nearest
  checkpoint with ``seq <= p - 1``, then step events ``seq+1 .. p-1`` —
  identical to replay-from-zero at every event boundary, in
  O(checkpoint interval) instead of O(p). Live checkpoints (written by
  the engine while spilling) and offline ones
  (:func:`~repro.tracedb.checkpoint.build_checkpoints`) coincide because
  live animation and replay apply the same reactions.
* **Flat memory.** Queries stream; replay decodes at most two segments
  at a time. Peak memory is independent of event count
  (``benchmarks/perf_trace.py`` enforces this).

Fleet collection (``collect.py``)
---------------------------------

Workers spill per-job stores and hand back paths; the parent merges them
in canonical job order into one campaign store (original seqs preserved
as ``job_seq``). Serial and parallel campaigns produce byte-identical
campaign stores.
"""

from repro.tracedb.checkpoint import Checkpoint, build_checkpoints
from repro.tracedb.collect import (
    campaign_store_root,
    collect_campaign_store,
    ensure_fresh_trace_dir,
    job_store_root,
    merge_job_stores,
    open_job_store,
)
from repro.tracedb.format import CODECS, encode_record
from repro.tracedb.index import CheckpointInfo, StoreIndex
from repro.tracedb.segment import SegmentInfo, read_segment
from repro.tracedb.spillring import SpillRing
from repro.tracedb.store import (
    DEFAULT_SEGMENT_EVENTS,
    DEFAULT_SPILL_CACHE_EVENTS,
    StoredTrace,
    TraceStore,
)

__all__ = [
    "CODECS",
    "Checkpoint",
    "CheckpointInfo",
    "DEFAULT_SEGMENT_EVENTS",
    "DEFAULT_SPILL_CACHE_EVENTS",
    "SegmentInfo",
    "SpillRing",
    "StoreIndex",
    "StoredTrace",
    "TraceStore",
    "build_checkpoints",
    "campaign_store_root",
    "collect_campaign_store",
    "encode_record",
    "ensure_fresh_trace_dir",
    "job_store_root",
    "merge_job_stores",
    "open_job_store",
    "read_segment",
]
