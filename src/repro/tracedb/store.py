"""The spill-to-disk trace store and its trace-shaped read adapter.

:class:`TraceStore` is an append-only, segmented record store rooted at
one directory::

    root/
      index.json             segment + checkpoint index (atomic rewrite)
      seg-000000000000.trc   records [0, segment_events)
      seg-000000001024.trc   records [1024, ...)
      ckpt/ckpt-...json      model-state checkpoints (seek restart points)

Records are dicts with a mandatory contiguous 0-based ``seq`` (stamped if
absent) and an optional ``t_target`` used for time-range pruning. The
query API — :meth:`events`, :meth:`events_between`, :meth:`by_element`,
:meth:`by_kind` — streams records segment by segment; no call ever
materializes the whole history, so memory stays bounded by one segment
no matter how long the run was.

:class:`StoredTrace` wraps a store in the read API of
:class:`~repro.engine.trace.ExecutionTrace` (len / index / iterate), so
:class:`~repro.engine.replay.ReplayPlayer` and
:class:`~repro.engine.timing_diagram.TimingDiagram` replay and plot
straight from disk, bit-identically to an in-memory trace.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import TraceStoreError
from repro.obs.runtime import OBS
from repro.tracedb.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from repro.tracedb.format import codec_named, read_header
from repro.tracedb.index import CheckpointInfo, StoreIndex
from repro.tracedb.segment import (
    SegmentInfo,
    SegmentWriter,
    read_segment,
    salvage_segment,
)

DEFAULT_SEGMENT_EVENTS = 1024
DEFAULT_CODEC = "jsonl"
#: the hot-cache ring size every spilling layer defaults to
#: (DebugSession, DtmKernel, campaign workers) — one constant, so their
#: documented "mirrors each other" behavior cannot silently drift
DEFAULT_SPILL_CACHE_EVENTS = 256
CKPT_DIR = "ckpt"


class TraceStore:
    """Append-only segmented record store with checkpointed seek support."""

    def __init__(self, root: str, segment_events: int = DEFAULT_SEGMENT_EVENTS,
                 codec: str = DEFAULT_CODEC,
                 checkpoint_every: Optional[int] = None) -> None:
        """Create a store at *root*, or attach to the one already there.

        Attaching resumes appending after the last stored record.
        ``segment_events`` and ``codec`` are then ignored in favor of
        the existing index (a store has one format), and the stored
        ``checkpoint_every`` is resumed unless explicitly overridden
        here — so a reattached recorder keeps checkpointing at the same
        interval and seeks stay O(interval) across the resumed region.
        """
        if segment_events <= 0:
            raise TraceStoreError(
                f"segment_events must be positive, got {segment_events}")
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise TraceStoreError(
                f"checkpoint_every must be positive, got {checkpoint_every}")
        self.root = root
        os.makedirs(os.path.join(root, CKPT_DIR), exist_ok=True)
        index_path = os.path.join(root, "index.json")
        if os.path.exists(index_path):
            self._index = StoreIndex.load(root)
            if checkpoint_every is not None:
                self._index.checkpoint_every = checkpoint_every
        else:
            self._index = StoreIndex(codec_named(codec).name, segment_events,
                                     checkpoint_every)
            self._index.save(root)
        self.checkpoint_every = self._index.checkpoint_every
        self.codec = codec_named(self._index.codec_name)
        self.segment_events = self._index.segment_events
        self._writer: Optional[SegmentWriter] = None
        self._closed = False
        # I/O books: plain int adds (noise next to the codec/file work
        # they count), surfaced as tracedb.* registry series via
        # io_stats() when telemetry is on
        self.appends = 0
        self.segments_sealed = 0
        self.checkpoints_written = 0
        self.segments_read = 0
        if OBS.metrics is not None:
            OBS.metrics.bind_stats("tracedb", self.io_stats, owner=self)
        self._recover_after_crash()

    def _recover_after_crash(self) -> None:
        """Adopt on-disk state a dead recorder left unindexed.

        A recorder that flushed but never closed leaves (a) an active
        segment file with no index row — silently opening a new writer
        over that filename would zero its records — and (b) checkpoint
        files whose index rows were never published. Both are recovered:
        the orphan segment's intact records are rewritten as a sealed
        segment (a torn tail record from a crash mid-append is dropped),
        and orphan checkpoint files are re-indexed.
        """
        recovered = False
        while True:  # a dead recorder may have rotated unindexed segments
            expected = (self._index.segments[-1].last_seq + 1
                        if self._index.segments else 0)
            name = f"seg-{expected:012d}.trc"
            path = os.path.join(self.root, name)
            if not os.path.exists(path):
                break
            if os.path.getsize(path) == 0:
                # a recorder killed before its first flush leaves the
                # buffered header unwritten: provably no records, safe
                # to drop (refusing would brick every future attach)
                os.unlink(path)
                break
            records = salvage_segment(path)
            if not records:
                # distinguish "recorder died before its first append"
                # (valid header, nothing else — safe to drop) from a
                # corrupted header hiding recoverable records: deleting
                # the latter would destroy the history this recovery
                # exists to save
                with open(path, "rb") as fh:
                    try:
                        read_header(fh)
                    except TraceStoreError as exc:
                        raise TraceStoreError(
                            f"orphan segment {name} has an unreadable "
                            f"header ({exc}); refusing to attach — "
                            f"recover or remove it manually") from exc
                os.unlink(path)
                break
            if [r["seq"] for r in records] != list(
                    range(expected, expected + len(records))):
                raise TraceStoreError(
                    f"orphan segment {name} holds non-contiguous seqs; "
                    f"refusing to adopt it")
            writer = SegmentWriter(self.root, name + ".recover",
                                   self.codec, expected)
            for record in records:
                writer.append(record)
            info = writer.close()
            os.replace(writer.path, path)
            info.name = name
            self._index.add_segment(info)
            recovered = True
        indexed_segments = {s.name for s in self._index.segments}
        leftovers = sorted(
            f for f in os.listdir(self.root)
            if f.startswith("seg-") and f.endswith(".trc")
            and f not in indexed_segments)
        if leftovers:
            raise TraceStoreError(
                f"segment file(s) {leftovers} are unreachable from the "
                f"recovered index (a gap precedes them); refusing to "
                f"attach and overwrite them")
        indexed = {c.file for c in self._index.checkpoints}
        known_seqs = {c.seq for c in self._index.checkpoints}
        for filename in sorted(os.listdir(os.path.join(self.root, CKPT_DIR))):
            file = os.path.join(CKPT_DIR, filename)
            if not filename.endswith(".json") or file in indexed:
                continue
            checkpoint = load_checkpoint(os.path.join(self.root, file))
            if checkpoint.seq in known_seqs:
                continue  # index row already exists; the file is fine
            if checkpoint.seq >= self.next_seq:
                # Its event died with the crash. Deleting now matters:
                # left behind, a future recovery (after new events reuse
                # that seq) would adopt this stale payload and seek would
                # restore a dead run's model state.
                os.unlink(os.path.join(self.root, file))
                continue
            self._index.add_checkpoint(
                CheckpointInfo(checkpoint.seq, checkpoint.t_host, file))
            recovered = True
        if recovered:
            self._index.save(self.root)

    @classmethod
    def open(cls, root: str) -> "TraceStore":
        """Attach to an existing store (raises if *root* has none)."""
        if not os.path.exists(os.path.join(root, "index.json")):
            raise TraceStoreError(f"no trace store at {root!r}")
        return cls(root)

    # -- write path --------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The seq the next appended record will carry."""
        live = self._writer.count if self._writer is not None else 0
        return self._index.event_count + live

    @property
    def event_count(self) -> int:
        """Total records stored (closed segments + the active one)."""
        return self.next_seq

    def append(self, record: dict) -> int:
        """Append one record; returns its seq.

        ``record["seq"]`` must equal the store's next seq when present
        (stores are contiguous and 0-based — that is what makes
        ``seq == index`` hold for :class:`StoredTrace`); it is stamped
        when absent. The record is shallow-copied before stamping.
        """
        if self._closed:
            raise TraceStoreError(f"store at {self.root} is closed")
        expected = self.next_seq
        seq = record.get("seq")
        if seq is None:
            record = dict(record)
            record["seq"] = seq = expected
        elif seq != expected:
            raise TraceStoreError(
                f"out-of-order append: record seq {seq}, store expects "
                f"{expected} (stores are contiguous and 0-based)")
        if self._writer is None:
            self._writer = SegmentWriter(
                self.root, f"seg-{expected:012d}.trc", self.codec, expected)
        self._writer.append(record)
        self.appends += 1
        if self._writer.count >= self.segment_events:
            self._rotate()
        return seq

    def _rotate(self) -> None:
        # In-memory index only: rewriting index.json here would put an
        # O(segments) file rewrite on the append hot path. The on-disk
        # index is published at flush()/close() — in-process queries
        # always read the live in-memory index.
        self._index.add_segment(self._writer.close())
        self._writer = None
        self.segments_sealed += 1

    def _flush_bytes(self) -> None:
        """Push buffered segment bytes to the OS (the read-path flush:
        queries must never *write* — a store opened read-only from an
        unwritable location stays queryable)."""
        if self._writer is not None:
            self._writer.flush()

    def flush(self) -> None:
        """Publish appended bytes to the OS and sealed-segment/checkpoint
        index rows to ``index.json``.

        In-process readers (every query method, :class:`StoredTrace`)
        always see the complete live state; the on-disk index gains the
        active segment's row only when it seals — cross-process readers
        open stores after :meth:`close`, which completes the index.
        """
        self._flush_bytes()
        self._index.save(self.root)

    def close(self) -> None:
        """Seal the active segment and persist the final index."""
        if self._closed:
            return
        if self._writer is not None:
            # a writer only exists once it has held >= 1 record
            self._rotate()
        self._index.save(self.root)
        self._closed = True

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- checkpoints -------------------------------------------------------

    def wants_checkpoint(self, seq: int) -> bool:
        """Whether the recording side should checkpoint after event *seq*."""
        return (self.checkpoint_every is not None
                and (seq + 1) % self.checkpoint_every == 0)

    def add_checkpoint(self, seq: int, t_host: int, payload: dict) -> None:
        """Persist a model-state checkpoint taken *after applying* event
        *seq* (the invariant every seek relies on)."""
        if seq >= self.next_seq:
            raise TraceStoreError(
                f"checkpoint at seq {seq} is ahead of the store "
                f"(next seq {self.next_seq})")
        filename = os.path.join(CKPT_DIR, f"ckpt-{seq:012d}.json")
        save_checkpoint(os.path.join(self.root, filename),
                        Checkpoint(seq, t_host, payload))
        # index row stays in memory until the next flush()/close() —
        # checkpointing sits on the engine's per-command hot path
        self._index.add_checkpoint(CheckpointInfo(seq, t_host, filename))
        self.checkpoints_written += 1

    def checkpoints(self) -> List[CheckpointInfo]:
        """Index rows of every stored checkpoint, oldest first."""
        return list(self._index.checkpoints)

    def nearest_checkpoint(self, seq: int) -> Optional[Checkpoint]:
        """Latest checkpoint at or before *seq*, payload loaded; or None."""
        info = self._index.nearest_checkpoint(seq)
        if info is None:
            return None
        return load_checkpoint(os.path.join(self.root, info.file))

    # -- read path ---------------------------------------------------------

    def _all_segments(self) -> List[SegmentInfo]:
        self._flush_bytes()
        segments = list(self._index.segments)
        if self._writer is not None and self._writer.count:
            segments.append(self._writer.info())
        return segments

    def _segments_for_seq(self, lo: int, hi: int) -> List[SegmentInfo]:
        return [s for s in self._all_segments() if s.intersects_seq(lo, hi)]

    def read_segment_records(self, info: SegmentInfo) -> List[dict]:
        """Decode one whole segment (bounded by ``segment_events``)."""
        self._flush_bytes()
        self.segments_read += 1
        return list(read_segment(os.path.join(self.root, info.name)))

    def events(self, seq_range: Optional[Tuple[int, int]] = None
               ) -> Iterator[dict]:
        """Stream records, optionally only seqs in [lo, hi] inclusive."""
        if seq_range is None:
            for info in self._all_segments():
                yield from self.read_segment_records(info)
            return
        lo, hi = seq_range
        for info in self._segments_for_seq(lo, hi):
            for record in self.read_segment_records(info):
                if lo <= record["seq"] <= hi:
                    yield record

    def events_between(self, t0: int, t1: int) -> Iterator[dict]:
        """Stream records with ``t_target`` in [t0, t1] inclusive."""
        for info in self._all_segments():
            if not info.intersects_time(t0, t1):
                continue  # index pruning: segment cannot intersect
            for record in self.read_segment_records(info):
                if t0 <= record.get("t_target", 0) <= t1:
                    yield record

    def by_element(self, element_id: str) -> Iterator[dict]:
        """Stream records whose reactions touched *element_id* (by GDM
        element id or by source path)."""
        for record in self.events():
            for reaction in record.get("reactions", ()):
                if element_id in (reaction.get("element"),
                                  reaction.get("path")):
                    yield record
                    break

    def by_kind(self, kind) -> Iterator[dict]:
        """Stream records of one command kind (enum or name string)."""
        name = getattr(kind, "name", kind)
        for record in self.events():
            if record.get("kind") == name:
                yield record

    def io_stats(self) -> Dict[str, int]:
        """Store I/O books: appends, segment seal/read counts, checkpoints.

        Counted since *this* handle opened (not recovered from disk) —
        they measure I/O work done, not store contents.
        """
        return {
            "appends": self.appends,
            "segments_sealed": self.segments_sealed,
            "checkpoints_written": self.checkpoints_written,
            "segments_read": self.segments_read,
        }

    def __len__(self) -> int:
        return self.event_count

    def __repr__(self) -> str:
        return (f"<TraceStore {self.root} {self.event_count} events, "
                f"{len(self._index.segments)} sealed segment(s), "
                f"{len(self._index.checkpoints)} checkpoint(s)>")


class StoredTrace:
    """Read-only, trace-shaped view over a :class:`TraceStore`.

    Implements the slice of the :class:`~repro.engine.trace.ExecutionTrace`
    API that replay and the timing diagram consume — ``len()``, indexing,
    iteration, ``dropped`` — decoding at most two segments at a time
    (current + previous), so replaying an arbitrarily long history runs
    at flat memory. ``seq == index`` holds because stores are contiguous
    and 0-based.
    """

    _CACHE_SEGMENTS = 2

    def __init__(self, store: TraceStore) -> None:
        from repro.engine.trace import TraceEvent  # one-way dependency
        self._event_cls = TraceEvent
        self.store = store
        self.dropped = 0  # a store never evicts: full history by design
        self.first_seq = 0  # contiguous 0-based by construction (O(1) guard)
        self._cache: Dict[int, List[dict]] = {}  # segment first_seq -> records

    def __len__(self) -> int:
        return self.store.event_count

    def __iter__(self):
        for record in self.store.events():
            yield self._event_cls.from_dict(record)

    def __getitem__(self, index: int):
        count = len(self)
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(f"trace index {index} out of range")
        return self._event_cls.from_dict(self._record_at(index))

    def _record_at(self, seq: int) -> dict:
        for first_seq, records in self._cache.items():
            if first_seq <= seq < first_seq + len(records):
                return records[seq - first_seq]
        infos = self.store._segments_for_seq(seq, seq)
        if not infos:
            raise TraceStoreError(f"no segment holds seq {seq}")
        info = infos[0]
        records = self.store.read_segment_records(info)
        if len(self._cache) >= self._CACHE_SEGMENTS:
            self._cache.pop(next(iter(self._cache)))
        self._cache[info.first_seq] = records
        return records[seq - info.first_seq]

    # -- checkpoint passthrough (what makes seek(t) fast) ------------------

    def nearest_checkpoint(self, seq: int) -> Optional[Checkpoint]:
        """Latest checkpoint at or before *seq* (see :class:`TraceStore`)."""
        return self.store.nearest_checkpoint(seq)

    def __repr__(self) -> str:
        return f"<StoredTrace over {self.store!r}>"
