"""Model-state checkpoints: the restart points that make seek cheap.

A checkpoint is the debug model's complete dynamic state
(:meth:`~repro.gdm.model.GdmModel.dynamic_state` — element *and* link
styles) captured **after applying the event with seq** ``seq``. The
invariant every seek relies on:

    restore(checkpoint at seq k)  ==  replay events [0, k] from reset

so ``seek(position)`` becomes "restore the nearest checkpoint at
``seq <= position - 1``, then step the tail" — O(checkpoint interval)
instead of O(position).

Checkpoints are written two ways:

* **live** — :class:`~repro.engine.engine.DebuggerEngine` captures one
  every ``checkpoint_every`` events while spilling (zero extra replay);
* **offline** — :func:`build_checkpoints` replays a finished store once
  and persists the same snapshots (for stores recorded without them).

Both produce identical checkpoints, because live animation and replay
apply the same reactions to the same model (the E10 fidelity property).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.errors import TraceStoreError


class Checkpoint:
    """One restart point: seq, host time, and the model-state payload."""

    __slots__ = ("seq", "t_host", "payload")

    def __init__(self, seq: int, t_host: int, payload: dict) -> None:
        self.seq = seq
        self.t_host = t_host
        self.payload = payload

    def to_dict(self) -> dict:
        return {"seq": self.seq, "t_host": self.t_host,
                "payload": self.payload}

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        return cls(data["seq"], data["t_host"], data["payload"])

    def __repr__(self) -> str:
        return f"<Checkpoint seq={self.seq} t={self.t_host}us>"


def save_checkpoint(path: str, checkpoint: Checkpoint) -> None:
    """Write one checkpoint file (canonical JSON, atomic rename)."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(checkpoint.to_dict(), fh, sort_keys=True,
                  separators=(",", ":"))
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Checkpoint:
    """Read one checkpoint file."""
    try:
        with open(path, encoding="utf-8") as fh:
            return Checkpoint.from_dict(json.load(fh))
    except FileNotFoundError:
        raise TraceStoreError(f"checkpoint file missing: {path}") from None
    except ValueError as exc:
        raise TraceStoreError(f"corrupt checkpoint {path}: {exc}") from exc


def build_checkpoints(store, gdm, every: int,
                      limit: Optional[int] = None) -> int:
    """Replay *store* onto *gdm* once, persisting a checkpoint every
    *every* events; returns how many were written.

    For stores recorded without live checkpointing. Skips seqs that
    already have one (idempotent), so re-running after appending more
    events only fills in the new tail.
    """
    if every <= 0:
        raise TraceStoreError(f"checkpoint interval must be positive, "
                              f"got {every}")
    from repro.engine.replay import ReplayPlayer  # avoid import cycle
    from repro.tracedb.store import StoredTrace
    existing = {info.seq for info in store.checkpoints()}
    # state-only pass: capturing frames would hold one snapshot per
    # event, breaking flat memory on exactly the long histories this
    # offline build exists for
    player = ReplayPlayer(StoredTrace(store), gdm, capture_frames=False)
    player.start()
    written = 0
    while True:
        event = player.step()
        if event is None:
            break
        if (event.seq + 1) % every == 0 and event.seq not in existing:
            store.add_checkpoint(event.seq, event.command.t_host,
                                 gdm.dynamic_state())
            written += 1
            if limit is not None and written >= limit:
                break
    store.flush()  # publish the new index rows to index.json
    return written
