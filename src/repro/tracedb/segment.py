"""One segment: an append-only run of consecutive records in one file.

A :class:`SegmentWriter` owns the open file of the store's *active*
segment; when the store rotates, the writer closes and its
:class:`SegmentInfo` (the index row) is frozen. Reading never needs the
writer — :func:`read_segment` streams any segment file, live or closed,
decoding with whatever codec its header names.
"""

from __future__ import annotations

import os
from typing import Iterator, Optional

from repro.errors import TraceStoreError
from repro.tracedb.format import read_header, write_header


class SegmentInfo:
    """The per-segment index row: seq/time extents and placement.

    ``first_t_target``/``last_t_target`` are the **min/max** ``t_target``
    over the segment's records, not the first/last record's values —
    time-range pruning must stay correct for non-monotonic streams
    (merged campaign stores interleave per-job clocks; job-record spills
    complete out of release order).
    """

    __slots__ = ("name", "first_seq", "last_seq", "first_t_target",
                 "last_t_target", "count", "byte_size")

    def __init__(self, name: str, first_seq: int, last_seq: int,
                 first_t_target: int, last_t_target: int,
                 count: int, byte_size: int) -> None:
        self.name = name
        self.first_seq = first_seq
        self.last_seq = last_seq
        self.first_t_target = first_t_target
        self.last_t_target = last_t_target
        self.count = count
        self.byte_size = byte_size

    def intersects_seq(self, lo: int, hi: int) -> bool:
        """Whether this segment can hold seqs in [lo, hi] (inclusive)."""
        return bool(self.count) and self.last_seq >= lo and self.first_seq <= hi

    def intersects_time(self, t0: int, t1: int) -> bool:
        """Whether this segment's ``t_target`` extent meets [t0, t1]."""
        return (bool(self.count) and self.last_t_target >= t0
                and self.first_t_target <= t1)

    def to_dict(self) -> dict:
        return {"name": self.name, "first_seq": self.first_seq,
                "last_seq": self.last_seq,
                "first_t_target": self.first_t_target,
                "last_t_target": self.last_t_target,
                "count": self.count, "byte_size": self.byte_size}

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentInfo":
        return cls(data["name"], data["first_seq"], data["last_seq"],
                   data["first_t_target"], data["last_t_target"],
                   data["count"], data["byte_size"])

    def __repr__(self) -> str:
        return (f"<SegmentInfo {self.name} seq {self.first_seq}.."
                f"{self.last_seq} ({self.count} records)>")


class SegmentWriter:
    """Appends records to one segment file, tracking its index extents."""

    def __init__(self, root: str, name: str, codec, first_seq: int) -> None:
        self.name = name
        self.path = os.path.join(root, name)
        self.codec = codec
        self.first_seq = first_seq
        self.last_seq = first_seq - 1
        self.first_t_target: Optional[int] = None
        self.last_t_target = 0
        self.count = 0
        self._fh = open(self.path, "wb")
        self.byte_size = write_header(self._fh, codec.name)

    def append(self, record: dict) -> None:
        """Write one record (caller guarantees seq order)."""
        if self._fh is None:
            raise TraceStoreError(f"segment {self.name} is closed")
        t_target = record.get("t_target", 0)
        if self.first_t_target is None:
            self.first_t_target = self.last_t_target = t_target
        else:
            self.first_t_target = min(self.first_t_target, t_target)
            self.last_t_target = max(self.last_t_target, t_target)
        self.last_seq = record["seq"]
        self.count += 1
        self.byte_size += self.codec.write(self._fh, record)

    def flush(self) -> None:
        """Push buffered bytes to the OS so readers see every record."""
        if self._fh is not None:
            self._fh.flush()

    def info(self) -> SegmentInfo:
        """The current index row (valid for live and closed segments)."""
        return SegmentInfo(self.name, self.first_seq, self.last_seq,
                           self.first_t_target or 0, self.last_t_target,
                           self.count, self.byte_size)

    def close(self) -> SegmentInfo:
        """Close the file; returns the frozen index row."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return self.info()


def read_segment(path: str) -> Iterator[dict]:
    """Stream every record of the segment file at *path*."""
    with open(path, "rb") as fh:
        codec = read_header(fh)
        yield from codec.read(fh)


def salvage_segment(path: str) -> list:
    """Every record decodable from a possibly crash-truncated segment.

    Used by attach-time recovery: a recorder that died mid-append may
    have left a partial record at the tail — everything before it is
    intact and comes back; the torn tail is dropped silently.
    """
    records = []
    try:
        for record in read_segment(path):
            records.append(record)
    except (TraceStoreError, ValueError):
        pass  # torn tail record: keep what decoded cleanly
    return records
