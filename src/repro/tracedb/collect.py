"""Fleet trace collection: per-job stores merged into one campaign store.

Workers never pickle traces across the process boundary — each job spills
its model-debugger trace into its own store under the campaign's
``trace_dir`` and hands back only the **path**
(:attr:`~repro.fleet.jobs.JobResult.trace_path`). The parent merges the
per-job stores into one campaign store in *canonical job order* (the
corpus enumeration order, never execution order): records are
re-sequenced 0.., their original per-job seq preserved as ``job_seq``
and stamped with ``job_id``/``job_index``. Because record encoding is
canonical and merge order is canonical, a fleet-collected campaign store
is byte-identical to the serial runner's — the same parity the result
merge already guarantees for detection tables.
"""

from __future__ import annotations

import os
import shutil
from typing import Optional, Sequence

from repro.errors import TraceStoreError
from repro.tracedb.store import DEFAULT_CODEC, DEFAULT_SEGMENT_EVENTS, TraceStore


def job_store_root(trace_dir: str, index: int) -> str:
    """Where job *index* spills its trace (shared by worker and merge)."""
    return os.path.join(trace_dir, f"job-{index:05d}")


def open_job_store(trace_dir: str, index: int,
                   segment_events: int = DEFAULT_SEGMENT_EVENTS,
                   codec: str = DEFAULT_CODEC) -> TraceStore:
    """Create the per-job spill store a worker records into.

    A per-job store is a *product* of running the job, so an existing
    store at this root is replaced, not resumed: the pool's
    crash-containment retry legitimately re-runs a job whose first
    attempt already sealed segments, and attaching would collide the
    retry's seq-0 appends with the stale tail. (Re-running a whole
    campaign over an old ``trace_dir`` is caught at the merge root,
    which refuses to overwrite a finished campaign store.)
    """
    root = job_store_root(trace_dir, index)
    if os.path.isdir(root):
        shutil.rmtree(root)
    return TraceStore(root, segment_events=segment_events, codec=codec)


def merge_job_stores(results: Sequence[object], dest_root: str,
                     segment_events: int = DEFAULT_SEGMENT_EVENTS,
                     codec: str = DEFAULT_CODEC) -> TraceStore:
    """Fold every job's store into one canonically-ordered campaign store.

    *results* are :class:`~repro.fleet.jobs.JobResult`-shaped objects;
    they are processed sorted by canonical ``index``. Skipped: results
    without a ``trace_path`` (no collection, or failed before the store
    existed) and **failed** results — a half-recorded trace folded into
    the campaign store would be indistinguishable from a complete one
    and would break serial/parallel byte parity; the failure result
    still carries its sealed ``trace_path`` for post-mortems. Streams
    segment by segment — the merge never holds more than one source
    segment in memory.
    """
    dest = TraceStore(dest_root, segment_events=segment_events, codec=codec)
    if dest.event_count:
        raise TraceStoreError(
            f"campaign store at {dest_root} already holds "
            f"{dest.event_count} event(s) — the trace_dir looks reused; "
            f"give every campaign run a fresh trace_dir")
    for result in sorted(results, key=lambda r: r.index):
        path = getattr(result, "trace_path", "")
        if not path or getattr(result, "failed", False):
            continue
        source = TraceStore.open(path)
        for record in source.events():
            merged = dict(record)
            merged["job_seq"] = merged.pop("seq")
            merged["job_id"] = result.job_id
            merged["job_index"] = result.index
            dest.append(merged)
    dest.close()
    return dest


def campaign_store_root(trace_dir: str) -> str:
    """Where the merged campaign store lives under a ``trace_dir``."""
    return os.path.join(trace_dir, "campaign")


def ensure_fresh_trace_dir(trace_dir: str) -> None:
    """Refuse a ``trace_dir`` that already holds campaign artifacts.

    Called *before* any job is dispatched: catching the reuse only at
    merge time would first spend the whole campaign's compute and
    replace every old per-job store. Both reuse shapes are refused — a
    finished run (merged campaign store present) and a run that died
    before its merge (stray per-job stores, which a smaller re-run would
    otherwise leave interleaved with its own, indistinguishably).
    """
    root = campaign_store_root(trace_dir)
    if os.path.exists(os.path.join(root, "index.json")):
        raise TraceStoreError(
            f"trace_dir {trace_dir!r} already holds a merged campaign "
            f"store at {root}; give every campaign run a fresh trace_dir")
    if os.path.isdir(trace_dir):
        stale = sorted(e for e in os.listdir(trace_dir)
                       if e.startswith("job-"))
        if stale:
            raise TraceStoreError(
                f"trace_dir {trace_dir!r} already contains per-job "
                f"store(s) from a previous (unmerged) run "
                f"({stale[0]}..{stale[-1]}, {len(stale)} total); give "
                f"every campaign run a fresh trace_dir")


def collect_campaign_store(results: Sequence[object],
                           trace_dir: str,
                           segment_events: int = DEFAULT_SEGMENT_EVENTS,
                           codec: str = DEFAULT_CODEC) -> Optional[TraceStore]:
    """Merge all collected per-job stores under *trace_dir*.

    Returns None when no result carried a trace (collection was off).
    """
    if not any(getattr(r, "trace_path", "") for r in results):
        return None
    return merge_job_stores(results, campaign_store_root(trace_dir),
                            segment_events=segment_events, codec=codec)
