"""The abstraction engine: user model + mapping table -> debug model.

This is the paper's "automatic model abstraction and generation": once the
user finishes the pairing dialog (``ABSTRACTION FINISHED``), the GDM is
obtained automatically. The engine walks the reflective model, creates an
element for every node-mapped object, a link for every edge-mapped object
whose endpoints resolved, lays the result out, and installs the default
command bindings (state -> highlight, signal -> annotate, ...).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.comm.protocol import CommandKind
from repro.errors import AbstractionError
from repro.gdm.mapping import MappingTable
from repro.gdm.model import CommandBinding, GdmElement, GdmModel
from repro.gdm.reactions import ReactionKind
from repro.meta.model import Model, ModelObject
from repro.render.geometry import Rect
from repro.render.layout import circular_layout, grid_layout


class AbstractionEngine:
    """Builds GDMs from reflective models via a mapping table."""

    def __init__(self, table: MappingTable) -> None:
        self.table = table

    def build(self, model: Model, name: str = "",
              default_bindings: bool = True,
              layout: bool = True) -> GdmModel:
        """Run the abstraction and return the generated debug model."""
        if model.metamodel is not self.table.metamodel:
            if model.metamodel.name != self.table.metamodel.name:
                raise AbstractionError(
                    f"mapping table is for metamodel "
                    f"{self.table.metamodel.name!r}, model conforms to "
                    f"{model.metamodel.name!r}"
                )
        gdm = GdmModel(name or f"{model.name}_gdm", source_model=model.name)

        object_to_element: Dict[str, GdmElement] = {}
        edge_objects: List[Tuple[ModelObject, object]] = []

        for obj in model.all_objects():
            rule = self.table.rule_for(obj.metaclass.name)
            if rule is None or rule.render_as == "skip":
                continue
            if rule.render_as == "edge":
                edge_objects.append((obj, rule))
                continue
            group = ""
            if rule.group_by_container and obj.container is not None:
                group = self._path_of(obj.container)
            element = gdm.add_element(
                label=self._label_of(obj, rule.label_attr),
                pattern=rule.pattern,
                source_path=self._path_of(obj),
                group=group,
            )
            object_to_element[obj.id] = element

        for obj, rule in edge_objects:
            endpoints = rule.edge_resolver(obj, model)
            if endpoints is None:
                continue
            src_obj, dst_obj = endpoints
            src = object_to_element.get(src_obj.id)
            dst = object_to_element.get(dst_obj.id)
            if src is None or dst is None:
                continue  # endpoint class not mapped as node: drop the edge
            gdm.add_link(src, dst, rule.pattern,
                         source_path=self._path_of(obj),
                         label=self._label_of(obj, rule.label_attr))

        if not gdm.elements:
            raise AbstractionError(
                "abstraction produced an empty debug model — no metaclass in "
                "the model is paired as a node"
            )
        if layout:
            self.assign_layout(gdm)
        if default_bindings:
            self.install_default_bindings(gdm)
        return gdm

    @staticmethod
    def _label_of(obj: ModelObject, label_attr: str) -> str:
        attrs = obj.metaclass.all_attributes()
        if label_attr in attrs and obj.get(label_attr):
            return str(obj.get(label_attr))
        return obj.label

    @staticmethod
    def _path_of(obj: ModelObject) -> str:
        attrs = obj.metaclass.all_attributes()
        if "path" in attrs and obj.get("path"):
            return str(obj.get("path"))
        return obj.id

    # -- layout --------------------------------------------------------------

    def assign_layout(self, gdm: GdmModel) -> None:
        """Position elements: state groups on circles, the rest on a grid."""
        groups: Dict[str, List[GdmElement]] = {}
        loose: List[GdmElement] = []
        for element in gdm.elements.values():
            if element.group:
                groups.setdefault(element.group, []).append(element)
            else:
                loose.append(element)

        offset_y = 0
        for group_name in sorted(groups):
            members = groups[group_name]
            placement = circular_layout([e.id for e in members])
            max_bottom = 0
            for element in members:
                rect = placement[element.id]
                element.rect = Rect(rect.x, rect.y + offset_y,
                                    element.pattern.width,
                                    element.pattern.height)
                max_bottom = max(max_bottom, element.rect.bottom)
            offset_y = max_bottom + 6

        if loose:
            placement = grid_layout(
                [e.id for e in loose],
                cell_w=max(e.pattern.width for e in loose),
                cell_h=max(e.pattern.height for e in loose),
            )
            for element in loose:
                rect = placement[element.id]
                element.rect = Rect(rect.x, rect.y + offset_y,
                                    element.pattern.width,
                                    element.pattern.height)

    # -- default command setup ----------------------------------------------

    def install_default_bindings(self, gdm: GdmModel) -> None:
        """Install the standard command -> reaction associations.

        * ``STATE_ENTER`` on a state element -> exclusive HIGHLIGHT
        * ``SIG_UPDATE`` on a signal element -> ANNOTATE with the value
        * ``TRANS_FIRED`` on a transition link path -> PULSE
        * ``TASK_START`` on an actor element -> PULSE
        """
        for element in gdm.elements.values():
            path = element.source_path
            if path.startswith("state:"):
                gdm.add_binding(CommandBinding(
                    CommandKind.STATE_ENTER, path, ReactionKind.HIGHLIGHT.name))
            elif path.startswith("signal:"):
                gdm.add_binding(CommandBinding(
                    CommandKind.SIG_UPDATE, path, ReactionKind.ANNOTATE.name))
            elif path.startswith("actor:"):
                gdm.add_binding(CommandBinding(
                    CommandKind.TASK_START, path, ReactionKind.PULSE.name))
        for link in gdm.links.values():
            if link.source_path.startswith("trans:"):
                gdm.add_binding(CommandBinding(
                    CommandKind.TRANS_FIRED, link.source_path,
                    ReactionKind.PULSE.name))
