"""The GDM metamodel (paper Fig 3), defined reflectively.

The debug model itself conforms to a metamodel — GMDF dogfoods its own
metamodeling layer. A DebugModel contains graphical elements, links between
them, and command bindings; the engine animates it as an event-driven state
machine whose engine states are enumerated on the model for introspection.
"""

from __future__ import annotations

from repro.gdm.patterns import PatternKind
from repro.meta.metamodel import AttributeKind, MetaModel

GDM_METAMODEL_NAME = "gdm"

_PATTERN_NAMES = tuple(kind.value for kind in PatternKind)

#: engine states of the event-driven FSM (Fig 3: "normally in a waiting
#: state, listening for commands and performing the corresponding reactions")
ENGINE_STATES = ("WAITING", "REACTING", "PAUSED", "REPLAYING", "DISCONNECTED")


def gdm_metamodel() -> MetaModel:
    """Build (and check) the GDM metamodel."""
    mm = MetaModel(GDM_METAMODEL_NAME)

    debug_model = mm.define("DebugModel")
    debug_model.attribute("name", AttributeKind.STR, required=True)
    debug_model.attribute("sourceModel", AttributeKind.STR, default="")
    debug_model.attribute("engineState", AttributeKind.ENUM,
                          enum_values=ENGINE_STATES, default="WAITING")
    debug_model.reference("elements", "GraphicalElement",
                          containment=True, many=True)
    debug_model.reference("links", "Link", containment=True, many=True)
    debug_model.reference("bindings", "CommandBinding",
                          containment=True, many=True)

    element = mm.define("GraphicalElement")
    element.attribute("name", AttributeKind.STR, required=True)
    element.attribute("sourcePath", AttributeKind.STR, required=True)
    element.attribute("pattern", AttributeKind.ENUM,
                      enum_values=_PATTERN_NAMES, required=True)
    element.attribute("x", AttributeKind.INT, default=0)
    element.attribute("y", AttributeKind.INT, default=0)
    element.attribute("w", AttributeKind.INT, default=14)
    element.attribute("h", AttributeKind.INT, default=5)
    element.attribute("highlighted", AttributeKind.BOOL, default=False)

    link = mm.define("Link")
    link.attribute("name", AttributeKind.STR, default="")
    link.attribute("sourcePath", AttributeKind.STR, default="")
    link.attribute("pattern", AttributeKind.ENUM,
                   enum_values=_PATTERN_NAMES, required=True)
    link.reference("source", "GraphicalElement", required=True)
    link.reference("target", "GraphicalElement", required=True)

    binding = mm.define("CommandBinding")
    binding.attribute("commandKind", AttributeKind.STR, required=True)
    binding.attribute("pathSelector", AttributeKind.STR, required=True)
    binding.attribute("reaction", AttributeKind.STR, required=True)

    mm.check()
    return mm
