"""The command-setting dialog (Fig 6, step 4).

"Command reaction information is subsequently added (i.e. which command
triggers which type of reaction) using the command setting interface ...
similar to the one shown in Fig 4."

Like the abstraction guide, this is the programmatic counterpart of that
dialog: the left list shows command sources present in the debug model, the
right list the available reaction types; the middle list holds the current
bindings, with add/delete.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.comm.protocol import CommandKind
from repro.errors import DebuggerError
from repro.gdm.model import CommandBinding, GdmModel
from repro.gdm.reactions import ReactionKind
from repro.util.textgrid import TextGrid


class CommandSetupDialog:
    """Interactive editing of a debug model's command bindings."""

    def __init__(self, gdm: GdmModel) -> None:
        self.gdm = gdm
        self._finished = False

    # -- the dialog's lists ---------------------------------------------------

    def command_sources(self) -> List[Tuple[str, str]]:
        """(path, suggested command kind) for every animatable element."""
        sources: List[Tuple[str, str]] = []
        for element in self.gdm.elements.values():
            path = element.source_path
            if path.startswith("state:"):
                sources.append((path, CommandKind.STATE_ENTER.name))
            elif path.startswith("signal:"):
                sources.append((path, CommandKind.SIG_UPDATE.name))
            elif path.startswith("actor:"):
                sources.append((path, CommandKind.TASK_START.name))
        for link in self.gdm.links.values():
            if link.source_path.startswith("trans:"):
                sources.append((link.source_path,
                                CommandKind.TRANS_FIRED.name))
        return sources

    def reaction_options(self) -> List[str]:
        """Available reaction type names."""
        return [kind.name for kind in ReactionKind]

    def bindings(self) -> List[CommandBinding]:
        """The current binding list."""
        return list(self.gdm.bindings)

    # -- editing ------------------------------------------------------------

    def add(self, command_kind: CommandKind, path_selector: str,
            reaction: str) -> CommandBinding:
        """Add a binding (reaction name validated)."""
        self._check_open()
        if reaction not in self.reaction_options():
            raise DebuggerError(
                f"unknown reaction {reaction!r}; "
                f"options: {self.reaction_options()}"
            )
        return self.gdm.add_binding(
            CommandBinding(command_kind, path_selector, reaction))

    def delete(self, index: int) -> CommandBinding:
        """Delete the binding at *index* in the list."""
        self._check_open()
        if not (0 <= index < len(self.gdm.bindings)):
            raise DebuggerError(
                f"binding index {index} outside 0..{len(self.gdm.bindings) - 1}"
            )
        return self.gdm.bindings.pop(index)

    def finish(self) -> GdmModel:
        """Close the dialog; at least one binding must remain."""
        self._check_open()
        if not self.gdm.bindings:
            raise DebuggerError("cannot finish command setup with no bindings")
        self._finished = True
        return self.gdm

    def _check_open(self) -> None:
        if self._finished:
            raise DebuggerError("command setup already finished")

    @property
    def finished(self) -> bool:
        """Whether the dialog was closed."""
        return self._finished

    # -- the "screenshot" ------------------------------------------------------

    def render_dialog(self) -> str:
        """ASCII rendering of the command-setting dialog."""
        sources = self.command_sources()
        bindings = self.bindings()
        reactions = self.reaction_options()
        rows = max(len(sources), len(bindings), len(reactions)) + 2
        rows = min(rows, 18)
        grid = TextGrid(108, rows + 7)

        grid.text(2, 0, "COMMAND SETTING — which command triggers which reaction")
        grid.box(1, 1, 38, rows + 2)
        grid.text(3, 2, "Command sources")
        for i, (path, kind) in enumerate(sources[: rows - 2]):
            grid.text(3, 3 + i, f"{kind[:11]} {path}"[:34])

        grid.box(40, 1, 44, rows + 2)
        grid.text(42, 2, "Existing bindings")
        for i, binding in enumerate(bindings[: rows - 2]):
            grid.text(42, 3 + i,
                      (f"{binding.command_kind.name[:10]} "
                       f"{binding.path_selector} -> "
                       f"{binding.reaction}   [del]")[:40])

        grid.box(85, 1, 21, rows + 2)
        grid.text(87, 2, "Reaction types")
        for i, reaction in enumerate(reactions):
            grid.text(87, 3 + i, f"( ) {reaction}"[:17])

        grid.text(2, rows + 4,
                  "[ FINISHED ]" if self._finished else "[ COMMAND SETUP DONE ]")
        return grid.render()
