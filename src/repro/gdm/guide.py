"""The abstraction guide — a programmatic version of the Fig 4 dialog.

The paper's screenshot shows: a metamodel-element list on the left, the
pattern options on the right (Rectangle, Triangle, Circle, Arrow), and a
pairing list with delete. ``render_dialog`` reproduces that screenshot as
ASCII; ``finish`` presses "ABSTRACTION FINISHED" and yields the GDM.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from repro.errors import AbstractionError
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.mapping import MappingRule, MappingTable
from repro.gdm.model import GdmModel
from repro.gdm.patterns import PatternKind, PatternSpec
from repro.meta.model import Model
from repro.util.textgrid import TextGrid


class AbstractionGuide:
    """Interactive pairing of metamodel elements with graphical patterns."""

    def __init__(self, model: Model) -> None:
        self.model = model
        self.metamodel = model.metamodel
        self.table = MappingTable(self.metamodel)
        self._finished = False
        self._counts = Counter(obj.metaclass.name for obj in model.all_objects())

    # -- the two lists of the dialog ------------------------------------------

    def element_list(self) -> List[Tuple[str, int]]:
        """Left-hand list: concrete metaclass names with instance counts."""
        return [
            (cls.name, self._counts.get(cls.name, 0))
            for cls in self.metamodel.concrete_classes()
        ]

    def pattern_options(self) -> List[str]:
        """Right-hand list: available pattern names."""
        return [kind.value for kind in PatternKind]

    # -- pairing operations --------------------------------------------------

    def pair(self, metaclass_name: str, pattern_name: str,
             render_as: Optional[str] = None,
             fill: Optional[str] = None, stroke: Optional[str] = None,
             width: Optional[int] = None, height: Optional[int] = None,
             **rule_kwargs) -> MappingRule:
        """Pair an element with a pattern (render mode inferred from the
        pattern). ``fill``/``stroke``/``width``/``height`` customize the
        graphical template — the paper's "customized graphical model
        templates" feature."""
        self._check_open()
        kind = PatternKind.from_name(pattern_name)
        mode = render_as if render_as is not None else (
            "edge" if kind.is_edge else "node"
        )
        spec_kwargs = {}
        if fill is not None:
            spec_kwargs["fill"] = fill
        if stroke is not None:
            spec_kwargs["stroke"] = stroke
        if width is not None:
            spec_kwargs["width"] = width
        if height is not None:
            spec_kwargs["height"] = height
        rule = MappingRule(metaclass_name, PatternSpec(kind, **spec_kwargs),
                           render_as=mode, **rule_kwargs)
        return self.table.pair(rule)

    def delete_pairing(self, metaclass_name: str) -> None:
        """Remove a pairing from the list."""
        self._check_open()
        self.table.unpair(metaclass_name)

    def pairings(self) -> List[Tuple[str, str]]:
        """The existing pairing list (metaclass, pattern)."""
        return [(r.metaclass_name, r.pattern.kind.value)
                for r in self.table.pairings()]

    def use_table(self, table: MappingTable) -> None:
        """Adopt a prepared table (e.g. the COMDES defaults) wholesale."""
        self._check_open()
        if table.metamodel.name != self.metamodel.name:
            raise AbstractionError(
                f"table is for {table.metamodel.name!r}, guide is for "
                f"{self.metamodel.name!r}"
            )
        self.table = table

    def _check_open(self) -> None:
        if self._finished:
            raise AbstractionError("abstraction already finished")

    # -- completion ---------------------------------------------------------

    def finish(self, name: str = "") -> GdmModel:
        """Press ABSTRACTION FINISHED: build and return the GDM."""
        self._check_open()
        if not self.table.node_rules():
            raise AbstractionError(
                "cannot finish: no element is paired with a node pattern"
            )
        self._finished = True
        engine = AbstractionEngine(self.table)
        return engine.build(self.model, name=name)

    @property
    def finished(self) -> bool:
        """Whether ABSTRACTION FINISHED was pressed."""
        return self._finished

    # -- the Fig 4 "screenshot" -------------------------------------------------

    def render_dialog(self) -> str:
        """ASCII rendering of the abstraction-guide dialog."""
        elements = self.element_list()
        pairings = self.pairings()
        patterns = self.pattern_options()
        rows = max(len(elements), len(pairings), len(patterns)) + 2
        grid = TextGrid(96, rows + 7)

        grid.text(2, 0, "ABSTRACTION GUIDE — set up the model mapping")
        grid.box(1, 1, 30, rows + 2)
        grid.text(3, 2, "Meta-model elements")
        for i, (cls_name, count) in enumerate(elements):
            grid.text(3, 3 + i, f"{cls_name} ({count})"[:26])

        grid.box(32, 1, 34, rows + 2)
        grid.text(34, 2, "Existing pairing list")
        for i, (cls_name, pattern) in enumerate(pairings):
            grid.text(34, 3 + i, f"{cls_name} -> {pattern}   [del]"[:30])

        grid.box(67, 1, 27, rows + 2)
        grid.text(69, 2, "GDM pattern options")
        for i, pattern in enumerate(patterns):
            grid.text(69, 3 + i, f"( ) {pattern}")

        grid.text(2, rows + 4, "[ ABSTRACTION FINISHED ]"
                  if not self._finished else "[ FINISHED ✓ ]")
        return grid.render()
