"""GDM -> scene conversion for the render backends."""

from __future__ import annotations

from repro.errors import RenderError
from repro.gdm.model import GdmModel
from repro.render.geometry import Point, Rect
from repro.render.scene import Scene, SceneNode


def gdm_to_scene(gdm: GdmModel, title: str = "") -> Scene:
    """Build a drawable scene from the debug model's current state.

    Elements must have geometry (run the abstraction engine's layout first).
    Links are drawn center-to-center underneath the shapes.
    """
    scene = Scene(title=title or gdm.name)
    for element in gdm.elements.values():
        if element.rect is None:
            raise RenderError(
                f"element {element.id} has no geometry; run assign_layout()"
            )
        style = dict(element.pattern.style())
        style.update(element.style)
        scene.add(SceneNode(
            element.id, element.pattern.kind.shape(), element.rect,
            label=element.label, style=style, z=1,
        ))
    for link in gdm.links.values():
        src = gdm.elements[link.src_id]
        dst = gdm.elements[link.dst_id]
        p1, p2 = src.rect.center, dst.rect.center
        box = Rect(min(p1.x, p2.x), min(p1.y, p2.y),
                   abs(p1.x - p2.x) + 1, abs(p1.y - p2.y) + 1)
        style = dict(link.pattern.style())
        style.update(link.style)
        scene.add(SceneNode(
            link.id, link.pattern.kind.shape(), box, label=link.label,
            style=style, z=0, endpoints=(Point(*p1), Point(*p2)),
        ))
    return scene
