"""Reactions: what a command does to the debug model.

The paper: the GDM "provides appropriate reactions when receiving commands
(events) from the code being executed ... e.g. highlighting a GDM element".
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.comm.protocol import Command
from repro.errors import DebuggerError
from repro.gdm.model import CommandBinding, GdmModel


class ReactionKind(enum.Enum):
    """Implemented reaction types (the command-setup options)."""

    HIGHLIGHT = "highlight"        # exclusive highlight within the group
    UNHIGHLIGHT = "unhighlight"
    ANNOTATE = "annotate"          # show the command's value on the element
    PULSE = "pulse"                # transient flash (recorded, then decays)
    MARK_ERROR = "mark-error"      # paint the element as faulty


class ReactionRecord:
    """One applied reaction, as stored in the execution trace."""

    __slots__ = ("kind", "element_id", "source_path", "detail", "t_us")

    def __init__(self, kind: ReactionKind, element_id: str, source_path: str,
                 detail: str, t_us: int) -> None:
        self.kind = kind
        self.element_id = element_id
        self.source_path = source_path
        self.detail = detail
        self.t_us = t_us

    def to_dict(self) -> dict:
        """Serializable form (trace files)."""
        return {"kind": self.kind.name, "element": self.element_id,
                "path": self.source_path, "detail": self.detail,
                "t_us": self.t_us}

    @classmethod
    def from_dict(cls, data: dict) -> "ReactionRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(ReactionKind[data["kind"]], data["element"], data["path"],
                   data["detail"], data["t_us"])

    def __repr__(self) -> str:
        return (f"<ReactionRecord {self.kind.name} on {self.element_id} "
                f"({self.detail}) @ {self.t_us}us>")


def apply_reaction(gdm: GdmModel, binding: CommandBinding,
                   command: Command) -> Optional[ReactionRecord]:
    """Apply *binding*'s reaction for *command*; returns the record.

    Returns None when the command's path has no element (e.g. a binding with
    a wildcard selector receiving a path that was never abstracted).
    """
    try:
        kind = ReactionKind[binding.reaction]
    except KeyError:
        raise DebuggerError(f"unknown reaction {binding.reaction!r}") from None

    element = gdm.element_by_path(command.path)
    if element is None:
        # Link reactions: pulse the link itself.
        for link in gdm.links.values():
            if link.source_path == command.path:
                link.style["pulse"] = "true"
                return ReactionRecord(kind, link.id, command.path,
                                      f"value={command.value}", command.t_host)
        return None

    if kind is ReactionKind.HIGHLIGHT:
        if element.group:
            for sibling in gdm.elements_in_group(element.group):
                sibling.style.pop("highlighted", None)
        element.style["highlighted"] = "true"
        detail = "highlight"
    elif kind is ReactionKind.UNHIGHLIGHT:
        element.style.pop("highlighted", None)
        detail = "unhighlight"
    elif kind is ReactionKind.ANNOTATE:
        element.style["value"] = str(command.value)
        detail = f"value={command.value}"
    elif kind is ReactionKind.PULSE:
        element.style["pulse"] = "true"
        detail = "pulse"
    elif kind is ReactionKind.MARK_ERROR:
        element.style["error"] = "true"
        detail = "error"
    else:  # pragma: no cover - enum is closed
        raise DebuggerError(f"unhandled reaction {kind}")
    return ReactionRecord(kind, element.id, command.path, detail,
                          command.t_host)


def decay_pulses(gdm: GdmModel) -> List[str]:
    """Clear transient pulse styling; returns affected ids (engine tick)."""
    affected: List[str] = []
    for element in gdm.elements.values():
        if element.style.pop("pulse", None) is not None:
            affected.append(element.id)
    for link in gdm.links.values():
        if link.style.pop("pulse", None) is not None:
            affected.append(link.id)
    return affected
