"""Graphical patterns — the display vocabulary of the abstraction guide.

Fig 4 of the paper offers Rectangle, Triangle, Circle and Arrow as "GDM
pattern options"; Line and Label round out what the prototype's GEF canvas
drew. A :class:`PatternSpec` is a pattern plus display styling.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.errors import AbstractionError


class PatternKind(enum.Enum):
    """The graphical pattern vocabulary (paper Fig 4 options + line/label)."""

    RECTANGLE = "Rectangle"
    TRIANGLE = "Triangle"
    CIRCLE = "Circle"
    ARROW = "Arrow"
    LINE = "Line"
    LABEL = "Label"

    @property
    def is_edge(self) -> bool:
        """Whether this pattern connects two elements."""
        return self in (PatternKind.ARROW, PatternKind.LINE)

    @classmethod
    def from_name(cls, name: str) -> "PatternKind":
        """Parse a user-facing pattern name (case-insensitive)."""
        for kind in cls:
            if kind.value.lower() == name.lower():
                return kind
        raise AbstractionError(
            f"unknown pattern {name!r}; options: {[k.value for k in cls]}"
        )

    #: scene-graph shape name for each pattern
    def shape(self) -> str:
        return {
            PatternKind.RECTANGLE: "rect",
            PatternKind.TRIANGLE: "triangle",
            PatternKind.CIRCLE: "circle",
            PatternKind.ARROW: "arrow",
            PatternKind.LINE: "line",
            PatternKind.LABEL: "label",
        }[self]


class PatternSpec:
    """A pattern with sizing and styling choices."""

    def __init__(self, kind: PatternKind, fill: Optional[str] = None,
                 stroke: Optional[str] = None, width: int = 14,
                 height: int = 5) -> None:
        if width <= 0 or height <= 0:
            raise AbstractionError("pattern size must be positive")
        self.kind = kind
        self.fill = fill
        self.stroke = stroke
        self.width = width
        self.height = height

    def style(self) -> Dict[str, str]:
        """Static style dict for scene nodes."""
        style: Dict[str, str] = {}
        if self.fill:
            style["fill"] = self.fill
        if self.stroke:
            style["stroke"] = self.stroke
        return style

    def __repr__(self) -> str:
        return f"<PatternSpec {self.kind.value} {self.width}x{self.height}>"
