"""The Graphical Debugger Model (GDM) — GMDF's core.

From the paper: the GDM is built from the user's input (meta)model through
an **abstraction** step (a user-specified mapping from metamodel elements to
graphical patterns, Fig 4), carries **command bindings** (which command
triggers which reaction, Fig 6 step 4), and is animated by the runtime
engine as an event-driven state machine (Fig 3).
"""

from repro.gdm.patterns import PatternKind, PatternSpec
from repro.gdm.metamodel import gdm_metamodel
from repro.gdm.model import CommandBinding, GdmElement, GdmLink, GdmModel
from repro.gdm.mapping import MappingRule, MappingTable, default_comdes_table
from repro.gdm.abstraction import AbstractionEngine
from repro.gdm.reactions import ReactionKind, ReactionRecord, apply_reaction
from repro.gdm.guide import AbstractionGuide
from repro.gdm.command_setup import CommandSetupDialog
from repro.gdm.scenegen import gdm_to_scene
from repro.gdm.store import gdm_from_json, gdm_to_json, load_gdm, save_gdm

__all__ = [
    "PatternKind", "PatternSpec",
    "gdm_metamodel",
    "GdmElement", "GdmLink", "CommandBinding", "GdmModel",
    "MappingRule", "MappingTable", "default_comdes_table",
    "AbstractionEngine",
    "ReactionKind", "ReactionRecord", "apply_reaction",
    "AbstractionGuide",
    "CommandSetupDialog",
    "gdm_to_scene",
    "gdm_to_json", "gdm_from_json", "save_gdm", "load_gdm",
]
