"""GDM persistence: the "initial GDM file" of the prototype (Fig 6, step 3).

Round-trips a runtime :class:`~repro.gdm.model.GdmModel` through its
reflective form (conforming to the GDM metamodel) serialized as JSON — the
same shape the Eclipse prototype would write to disk between the
abstraction and debugging phases.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.comm.protocol import CommandKind
from repro.errors import AbstractionError
from repro.gdm.metamodel import gdm_metamodel
from repro.gdm.model import CommandBinding, GdmModel
from repro.gdm.patterns import PatternKind, PatternSpec
from repro.meta.model import Model
from repro.meta.serialize import model_from_dict, model_to_dict
from repro.render.geometry import Rect


def gdm_to_json(gdm: GdmModel) -> str:
    """Serialize a debug model to a JSON document."""
    return json.dumps(model_to_dict(gdm.to_meta_model()), indent=2)


def gdm_from_meta_model(model: Model) -> GdmModel:
    """Rebuild a runtime GdmModel from its reflective form."""
    roots = model.roots
    if len(roots) != 1 or roots[0].metaclass.name != "DebugModel":
        raise AbstractionError("document is not a DebugModel")
    root = roots[0]
    gdm = GdmModel(root.get("name"), source_model=root.get("sourceModel"))

    by_object_id: Dict[str, object] = {}
    for obj in root.refs("elements"):
        pattern = PatternSpec(PatternKind.from_name(obj.get("pattern")),
                              width=obj.get("w"), height=obj.get("h"))
        element = gdm.add_element(obj.get("name"), pattern,
                                  obj.get("sourcePath"))
        element.rect = Rect(obj.get("x"), obj.get("y"),
                            obj.get("w"), obj.get("h"))
        if obj.get("highlighted"):
            element.style["highlighted"] = "true"
        by_object_id[obj.id] = element
    for obj in root.refs("links"):
        pattern = PatternSpec(PatternKind.from_name(obj.get("pattern")))
        gdm.add_link(by_object_id[obj.ref("source").id],
                     by_object_id[obj.ref("target").id],
                     pattern, source_path=obj.get("sourcePath"),
                     label=obj.get("name"))
    for obj in root.refs("bindings"):
        gdm.add_binding(CommandBinding(
            CommandKind[obj.get("commandKind")],
            obj.get("pathSelector"),
            obj.get("reaction"),
        ))
    return gdm


def gdm_from_json(document: str) -> GdmModel:
    """Inverse of :func:`gdm_to_json`."""
    data = json.loads(document)
    model = model_from_dict(data, gdm_metamodel())
    return gdm_from_meta_model(model)


def save_gdm(gdm: GdmModel, path: str) -> None:
    """Write the GDM file."""
    with open(path, "w") as handle:
        handle.write(gdm_to_json(gdm))


def load_gdm(path: str) -> GdmModel:
    """Read a GDM file."""
    with open(path) as handle:
        return gdm_from_json(handle.read())
