"""Runtime debug-model classes: elements, links, bindings.

:class:`GdmModel` is the object the engine animates. It can round-trip into
the reflective form conforming to :func:`~repro.gdm.metamodel.gdm_metamodel`
(the file the prototype writes as "an initial GDM file", Fig 6 step 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.comm.protocol import Command, CommandKind
from repro.errors import AbstractionError
from repro.gdm.patterns import PatternSpec
from repro.meta.model import Model
from repro.gdm.metamodel import gdm_metamodel
from repro.render.geometry import Rect
from repro.util.ids import IdGenerator


class GdmElement:
    """A graphical element animated at runtime."""

    def __init__(self, element_id: str, label: str, pattern: PatternSpec,
                 source_path: str, group: str = "") -> None:
        self.id = element_id
        self.label = label
        self.pattern = pattern
        self.source_path = source_path
        #: exclusive-highlight group (e.g. all states of one machine)
        self.group = group
        self.rect: Optional[Rect] = None
        #: dynamic display state mutated by reactions
        self.style: Dict[str, str] = {}

    @property
    def highlighted(self) -> bool:
        """Whether the element is currently highlighted."""
        return self.style.get("highlighted") == "true"

    def reset_style(self) -> None:
        """Clear all dynamic styling (used by replay and engine reset)."""
        self.style.clear()

    def __repr__(self) -> str:
        return f"<GdmElement {self.id} {self.pattern.kind.value} <- {self.source_path}>"


class GdmLink:
    """A connection (arrow/line) between two elements."""

    def __init__(self, link_id: str, src_id: str, dst_id: str,
                 pattern: PatternSpec, source_path: str = "",
                 label: str = "") -> None:
        if not pattern.kind.is_edge:
            raise AbstractionError(
                f"link {link_id} needs an edge pattern, got {pattern.kind.value}"
            )
        self.id = link_id
        self.src_id = src_id
        self.dst_id = dst_id
        self.pattern = pattern
        self.source_path = source_path
        self.label = label
        self.style: Dict[str, str] = {}

    def __repr__(self) -> str:
        return f"<GdmLink {self.src_id} -> {self.dst_id}>"


class CommandBinding:
    """Command setup entry: which command triggers which reaction.

    ``path_selector`` is an exact source path or a prefix ending in ``*``
    (e.g. ``state:lights.lamp.*``).
    """

    def __init__(self, command_kind: CommandKind, path_selector: str,
                 reaction: str) -> None:
        self.command_kind = CommandKind(command_kind)
        self.path_selector = path_selector
        self.reaction = reaction

    def matches(self, command: Command) -> bool:
        """Whether *command* triggers this binding."""
        if command.kind is not self.command_kind:
            return False
        if self.path_selector.endswith("*"):
            return command.path.startswith(self.path_selector[:-1])
        return command.path == self.path_selector

    def __repr__(self) -> str:
        return (f"<CommandBinding {self.command_kind.name} "
                f"{self.path_selector} -> {self.reaction}>")


class GdmModel:
    """The complete debug model: elements + links + command bindings."""

    def __init__(self, name: str, source_model: str = "") -> None:
        self.name = name
        self.source_model = source_model
        self._ids = IdGenerator()
        self.elements: Dict[str, GdmElement] = {}
        self.links: Dict[str, GdmLink] = {}
        self.bindings: List[CommandBinding] = []
        self._by_path: Dict[str, GdmElement] = {}

    # -- construction ----------------------------------------------------

    def add_element(self, label: str, pattern: PatternSpec, source_path: str,
                    group: str = "") -> GdmElement:
        """Create and register an element."""
        if source_path in self._by_path:
            raise AbstractionError(
                f"element for source path {source_path!r} already exists"
            )
        element = GdmElement(self._ids.next("el"), label, pattern,
                             source_path, group)
        self.elements[element.id] = element
        self._by_path[source_path] = element
        return element

    def add_link(self, src: GdmElement, dst: GdmElement, pattern: PatternSpec,
                 source_path: str = "", label: str = "") -> GdmLink:
        """Create and register a link between two existing elements."""
        for endpoint in (src, dst):
            if endpoint.id not in self.elements:
                raise AbstractionError(f"link endpoint {endpoint.id} not in model")
        link = GdmLink(self._ids.next("ln"), src.id, dst.id, pattern,
                       source_path, label)
        self.links[link.id] = link
        return link

    def add_binding(self, binding: CommandBinding) -> CommandBinding:
        """Register a command binding (order matters: first match wins set)."""
        self.bindings.append(binding)
        return binding

    # -- lookup -----------------------------------------------------------

    def element_by_path(self, source_path: str) -> Optional[GdmElement]:
        """Element created from *source_path*, or None."""
        return self._by_path.get(source_path)

    def elements_in_group(self, group: str) -> List[GdmElement]:
        """All elements sharing an exclusive-highlight group."""
        return [e for e in self.elements.values() if e.group == group]

    def bindings_for(self, command: Command) -> List[CommandBinding]:
        """All bindings triggered by *command* (in registration order)."""
        return [b for b in self.bindings if b.matches(command)]

    def styles_snapshot(self) -> Dict[str, Dict[str, str]]:
        """Copy of every element's dynamic style (animation frames)."""
        return {eid: dict(e.style) for eid, e in self.elements.items()}

    def dynamic_state(self) -> Dict[str, Dict[str, Dict[str, str]]]:
        """The complete mutable display state: element *and* link styles.

        This is the replay checkpoint payload — restoring it via
        :meth:`restore_dynamic_state` puts the model back into exactly
        this animation instant.
        """
        return {
            "elements": {eid: dict(e.style)
                         for eid, e in self.elements.items() if e.style},
            "links": {lid: dict(l.style)
                      for lid, l in self.links.items() if l.style},
        }

    def restore_dynamic_state(
            self, state: Dict[str, Dict[str, Dict[str, str]]]) -> None:
        """Inverse of :meth:`dynamic_state` (clears everything else)."""
        self.reset_styles()
        for eid, style in state.get("elements", {}).items():
            element = self.elements.get(eid)
            if element is not None:
                element.style.update(style)
        for lid, style in state.get("links", {}).items():
            link = self.links.get(lid)
            if link is not None:
                link.style.update(style)

    def reset_styles(self) -> None:
        """Clear all dynamic styling."""
        for element in self.elements.values():
            element.reset_style()
        for link in self.links.values():
            link.style.clear()

    # -- reflective form -------------------------------------------------------

    def to_meta_model(self) -> Model:
        """Serialize into a model conforming to the GDM metamodel."""
        mm = gdm_metamodel()
        model = Model(mm, name=self.name)
        root = model.create("DebugModel", name=self.name,
                            sourceModel=self.source_model)
        model.add_root(root)
        objects: Dict[str, object] = {}
        for element in self.elements.values():
            obj = model.create(
                "GraphicalElement",
                name=element.label,
                sourcePath=element.source_path,
                pattern=element.pattern.kind.value,
                highlighted=element.highlighted,
            )
            if element.rect is not None:
                obj.set("x", element.rect.x).set("y", element.rect.y)
                obj.set("w", element.rect.w).set("h", element.rect.h)
            root.add_ref("elements", obj)
            objects[element.id] = obj
        for link in self.links.values():
            obj = model.create(
                "Link", name=link.label, sourcePath=link.source_path,
                pattern=link.pattern.kind.value,
            )
            obj.set_ref("source", objects[link.src_id])
            obj.set_ref("target", objects[link.dst_id])
            root.add_ref("links", obj)
        for binding in self.bindings:
            obj = model.create(
                "CommandBinding",
                commandKind=binding.command_kind.name,
                pathSelector=binding.path_selector,
                reaction=binding.reaction,
            )
            root.add_ref("bindings", obj)
        return model

    def __repr__(self) -> str:
        return (f"<GdmModel {self.name!r}: {len(self.elements)} elements, "
                f"{len(self.links)} links, {len(self.bindings)} bindings>")
