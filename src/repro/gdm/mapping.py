"""Abstraction mapping: metamodel element -> GDM pattern (paper Fig 4).

A :class:`MappingTable` is the data behind the abstraction guide's pairing
list: for each metaclass, which pattern to use and whether the class renders
as a node, as an edge between two resolved endpoints, or not at all.
Because the table is pure data keyed by metaclass names, the same
abstraction engine serves *any* metamodel registered with the framework —
the paper's "accept all types of system model that follow MOF" claim.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import AbstractionError
from repro.gdm.patterns import PatternKind, PatternSpec
from repro.meta.metamodel import MetaModel
from repro.meta.model import Model, ModelObject

#: resolves an edge-mapped object to its (source, target) node objects
EdgeResolver = Callable[[ModelObject, Model], Optional[Tuple[ModelObject, ModelObject]]]


def default_edge_resolver(obj: ModelObject,
                          model: Model) -> Optional[Tuple[ModelObject, ModelObject]]:
    """Resolve endpoints via single-valued references.

    Prefers references literally named ``source``/``target``; otherwise the
    first two single-valued references that are set.
    """
    refs = obj.metaclass.all_references()
    if "source" in refs and "target" in refs:
        src, dst = obj.ref("source"), obj.ref("target")
        if src is not None and dst is not None:
            return src, dst
        return None
    singles = [name for name, spec in refs.items()
               if not spec.many and not spec.containment]
    endpoints = [obj.ref(name) for name in singles if obj.ref(name) is not None]
    if len(endpoints) >= 2:
        return endpoints[0], endpoints[1]
    return None


class MappingRule:
    """How one metaclass maps to the GDM."""

    RENDER_MODES = ("node", "edge", "skip")

    def __init__(self, metaclass_name: str, pattern: PatternSpec,
                 render_as: str = "node", label_attr: str = "name",
                 group_by_container: bool = False,
                 edge_resolver: Optional[EdgeResolver] = None) -> None:
        if render_as not in self.RENDER_MODES:
            raise AbstractionError(
                f"render_as must be one of {self.RENDER_MODES}, got {render_as!r}"
            )
        if render_as == "edge" and not pattern.kind.is_edge:
            raise AbstractionError(
                f"{metaclass_name}: edge mapping needs Arrow or Line, "
                f"got {pattern.kind.value}"
            )
        if render_as == "node" and pattern.kind.is_edge:
            raise AbstractionError(
                f"{metaclass_name}: node mapping cannot use {pattern.kind.value}"
            )
        self.metaclass_name = metaclass_name
        self.pattern = pattern
        self.render_as = render_as
        self.label_attr = label_attr
        #: nodes whose container defines their exclusive-highlight group
        self.group_by_container = group_by_container
        self.edge_resolver = edge_resolver or default_edge_resolver

    def __repr__(self) -> str:
        return (f"<MappingRule {self.metaclass_name} -> "
                f"{self.pattern.kind.value} ({self.render_as})>")


class MappingTable:
    """The pairing list of the abstraction guide."""

    def __init__(self, metamodel: MetaModel) -> None:
        self.metamodel = metamodel
        self._rules: Dict[str, MappingRule] = {}

    def pair(self, rule: MappingRule) -> MappingRule:
        """Add or replace a pairing (the guide allows re-pairing)."""
        if not self.metamodel.has_class(rule.metaclass_name):
            raise AbstractionError(
                f"metamodel {self.metamodel.name!r} has no class "
                f"{rule.metaclass_name!r}"
            )
        self._rules[rule.metaclass_name] = rule
        return rule

    def unpair(self, metaclass_name: str) -> None:
        """Delete a pairing (the guide's delete button)."""
        if metaclass_name not in self._rules:
            raise AbstractionError(f"no pairing for {metaclass_name!r}")
        del self._rules[metaclass_name]

    def rule_for(self, metaclass_name: str) -> Optional[MappingRule]:
        """Best rule for a metaclass: exact name, then nearest supertype."""
        if metaclass_name in self._rules:
            return self._rules[metaclass_name]
        cls = self.metamodel.metaclass(metaclass_name)
        for supertype in cls.all_supertypes():
            if supertype.name in self._rules:
                return self._rules[supertype.name]
        return None

    def pairings(self) -> List[MappingRule]:
        """All rules in insertion order (the guide's pairing list)."""
        return list(self._rules.values())

    def node_rules(self) -> List[MappingRule]:
        """Rules that produce elements."""
        return [r for r in self._rules.values() if r.render_as == "node"]

    def __len__(self) -> int:
        return len(self._rules)


def _comdes_connection_resolver(obj: ModelObject,
                                model: Model) -> Optional[Tuple[ModelObject, ModelObject]]:
    """Resolve a COMDES Connection's endpoints to sibling block objects."""
    network = obj.container
    if network is None:
        return None
    src_block_name = obj.get("src").split(".")[0]
    dst_block_name = obj.get("dst").split(".")[0]
    blocks = {b.get("name"): b for b in network.refs("blocks")}
    src = blocks.get(src_block_name)
    dst = blocks.get(dst_block_name)
    if src is None or dst is None:
        return None
    return src, dst


def default_comdes_table(metamodel: MetaModel) -> MappingTable:
    """The mapping a COMDES user would click together in the guide.

    States become circles (highlighted when active), transitions arrows,
    function blocks rectangles, connections lines, signals triangles,
    actors rectangles.
    """
    table = MappingTable(metamodel)
    table.pair(MappingRule("Actor",
                           PatternSpec(PatternKind.RECTANGLE, width=18, height=5)))
    table.pair(MappingRule("Signal",
                           PatternSpec(PatternKind.TRIANGLE, width=12, height=4)))
    table.pair(MappingRule("FunctionBlock",
                           PatternSpec(PatternKind.RECTANGLE, width=16, height=4)))
    table.pair(MappingRule("State",
                           PatternSpec(PatternKind.CIRCLE, width=12, height=5),
                           group_by_container=True))
    table.pair(MappingRule("Transition",
                           PatternSpec(PatternKind.ARROW), render_as="edge"))
    table.pair(MappingRule("Connection",
                           PatternSpec(PatternKind.LINE), render_as="edge",
                           edge_resolver=_comdes_connection_resolver))
    return table
