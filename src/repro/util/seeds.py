"""Deterministic seed derivation shared by every stochastic subsystem.

:func:`derive_seed` is the one seed expander in the codebase: a stable
63-bit value derived from ``(master_seed, *parts)`` via SHA-256 —
independent of process, chunk, hash randomization and Python version.
Fault campaigns (:mod:`repro.fleet`) and transport chaos injection
(:mod:`repro.comm.chaos`) both consume it, which is what makes "one
master seed describes the whole experiment" true across layers: the
fleet derives per-job seeds, each job derives per-link chaos seeds, and
every derived stream is reproducible from the coordinates alone.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from repro.errors import ReproError


def derive_seed(master_seed: int, *parts: object) -> int:
    """A stable 63-bit seed from a master seed and identity parts."""
    text = repr((int(master_seed),) + tuple(str(p) for p in parts))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def seed_stream(master_seed: int, label: str, count: int) -> Tuple[int, ...]:
    """*count* derived seeds for one fault kind / corpus label."""
    if count < 0:
        raise ReproError(f"seed count must be non-negative, got {count}")
    return tuple(derive_seed(master_seed, label, i) for i in range(count))
