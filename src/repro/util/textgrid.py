"""A character-cell canvas for headless "screenshots".

The paper's prototype renders models on an Eclipse/GEF canvas; the ASCII
backend draws the same scenes into a character grid so figures can be
regenerated in a terminal and asserted on in tests.
"""

from __future__ import annotations

from typing import List


class TextGrid:
    """A fixed-size grid of characters with simple drawing primitives."""

    def __init__(self, width: int, height: int, fill: str = " ") -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"grid must be positive-sized, got {width}x{height}")
        self.width = width
        self.height = height
        self._cells: List[List[str]] = [[fill] * width for _ in range(height)]

    def put(self, x: int, y: int, ch: str) -> None:
        """Set a single cell; out-of-bounds writes are clipped silently."""
        if 0 <= x < self.width and 0 <= y < self.height:
            self._cells[y][x] = ch[0]

    def get(self, x: int, y: int) -> str:
        """Read a single cell (raises IndexError when out of bounds)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise IndexError(f"({x},{y}) outside {self.width}x{self.height} grid")
        return self._cells[y][x]

    def text(self, x: int, y: int, s: str) -> None:
        """Write a horizontal string starting at (x, y), clipping at edges."""
        for i, ch in enumerate(s):
            self.put(x + i, y, ch)

    def hline(self, x0: int, x1: int, y: int, ch: str = "-") -> None:
        """Horizontal line from x0 to x1 inclusive."""
        for x in range(min(x0, x1), max(x0, x1) + 1):
            self.put(x, y, ch)

    def vline(self, x: int, y0: int, y1: int, ch: str = "|") -> None:
        """Vertical line from y0 to y1 inclusive."""
        for y in range(min(y0, y1), max(y0, y1) + 1):
            self.put(x, y, ch)

    def box(self, x: int, y: int, w: int, h: int, label: str = "") -> None:
        """Draw a box with ``+`` corners; optional centered label inside."""
        if w < 2 or h < 2:
            raise ValueError(f"box must be at least 2x2, got {w}x{h}")
        self.hline(x, x + w - 1, y)
        self.hline(x, x + w - 1, y + h - 1)
        self.vline(x, y, y + h - 1)
        self.vline(x + w - 1, y, y + h - 1)
        for cx, cy in ((x, y), (x + w - 1, y), (x, y + h - 1), (x + w - 1, y + h - 1)):
            self.put(cx, cy, "+")
        if label:
            clipped = label[: max(0, w - 2)]
            lx = x + 1 + max(0, (w - 2 - len(clipped)) // 2)
            ly = y + h // 2
            self.text(lx, ly, clipped)

    def render(self) -> str:
        """Return the grid as a newline-joined string, trailing spaces stripped."""
        return "\n".join("".join(row).rstrip() for row in self._cells)
