"""Deterministic identifier generation.

Models, debug-model elements and trace events all need stable ids. Random
UUIDs would make test output and serialized artifacts non-reproducible, so
ids are sequential per prefix: ``state#1``, ``state#2``, ...
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class IdGenerator:
    """Hands out ids of the form ``<prefix>#<n>`` with a per-prefix counter."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def next(self, prefix: str) -> str:
        """Return the next id for *prefix* (counters start at 1)."""
        self._counters[prefix] += 1
        return f"{prefix}#{self._counters[prefix]}"

    def peek(self, prefix: str) -> int:
        """Return how many ids have been issued for *prefix*."""
        return self._counters[prefix]

    def reset(self) -> None:
        """Forget all counters (used between independent builds)."""
        self._counters.clear()
