"""A minimal synchronous publish/subscribe event bus.

Used to decouple the debugger engine from observers (trace recorder,
animation capture, requirement monitors) without threading.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List

Handler = Callable[..., None]


class EventBus:
    """Synchronous topic-based pub/sub.

    Handlers are invoked in subscription order, on the publisher's stack.
    A handler raising propagates to the publisher — errors should never pass
    silently in a debugger framework.
    """

    def __init__(self) -> None:
        self._handlers: Dict[str, List[Handler]] = defaultdict(list)
        self._published: int = 0

    def subscribe(self, topic: str, handler: Handler) -> None:
        """Register *handler* for *topic*."""
        self._handlers[topic].append(handler)

    def unsubscribe(self, topic: str, handler: Handler) -> None:
        """Remove *handler* from *topic*; raises ValueError if absent."""
        self._handlers[topic].remove(handler)

    def publish(self, topic: str, **payload: Any) -> int:
        """Invoke every handler subscribed to *topic*; return handler count."""
        self._published += 1
        handlers = list(self._handlers.get(topic, ()))
        for handler in handlers:
            handler(**payload)
        return len(handlers)

    def subscriber_count(self, topic: str) -> int:
        """Number of handlers currently subscribed to *topic*."""
        return len(self._handlers.get(topic, ()))

    @property
    def published_count(self) -> int:
        """Total number of publish calls (all topics)."""
        return self._published
