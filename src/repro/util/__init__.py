"""Small shared utilities: id generation, time units, event bus, text canvas."""

from repro.util.ids import IdGenerator
from repro.util.timeunits import (
    MS,
    SEC,
    US,
    format_us,
    ms,
    sec,
    us,
)
from repro.util.events import EventBus
from repro.util.textgrid import TextGrid

__all__ = [
    "IdGenerator",
    "US",
    "MS",
    "SEC",
    "us",
    "ms",
    "sec",
    "format_us",
    "EventBus",
    "TextGrid",
]
