"""32-bit integer semantics shared by the model interpreter and the CPU.

COMDES guards/actions are evaluated twice in this reproduction: once by the
reference model interpreter and once as compiled bytecode on the virtual
target. Both must agree bit-for-bit, so the wrap/divide rules live here and
nowhere else.
"""

from __future__ import annotations

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1
INT_MIN = -(1 << (WORD_BITS - 1))
INT_MAX = (1 << (WORD_BITS - 1)) - 1


def wrap32(value: int) -> int:
    """Wrap an arbitrary int to signed 32-bit two's complement."""
    value &= WORD_MASK
    if value > INT_MAX:
        value -= 1 << WORD_BITS
    return value


def sdiv(a: int, b: int) -> int:
    """C-style signed division: truncates toward zero (Python '//' floors)."""
    if b == 0:
        raise ZeroDivisionError("signed division by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return wrap32(q)


def smod(a: int, b: int) -> int:
    """C-style signed remainder: sign follows the dividend."""
    if b == 0:
        raise ZeroDivisionError("signed modulo by zero")
    return wrap32(a - sdiv(a, b) * b)
