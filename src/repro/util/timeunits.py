"""Time units.

All simulated time in this library is expressed as **integer microseconds**.
Integers keep the discrete-event kernel exactly ordered (no float drift) and
make traces byte-for-byte reproducible. These helpers convert human-friendly
values into microseconds and back.
"""

from __future__ import annotations

US = 1
MS = 1_000
SEC = 1_000_000


def us(value: float) -> int:
    """Microseconds, rounded to the integer time base."""
    return round(value * US)


def ms(value: float) -> int:
    """Milliseconds -> microseconds."""
    return round(value * MS)


def sec(value: float) -> int:
    """Seconds -> microseconds."""
    return round(value * SEC)


def format_us(t: int) -> str:
    """Render a microsecond timestamp using the largest unit that stays exact.

    >>> format_us(2_500_000)
    '2.5s'
    >>> format_us(1500)
    '1.5ms'
    >>> format_us(42)
    '42us'
    """
    if t % SEC == 0:
        return f"{t // SEC}s"
    if t >= SEC:
        return f"{t / SEC:g}s"
    if t % MS == 0:
        return f"{t // MS}ms"
    if t >= MS:
        return f"{t / MS:g}ms"
    return f"{t}us"
